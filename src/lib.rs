//! # itne — global robustness certification via interleaving twin-network encoding
//!
//! A Rust reproduction of *"Efficient Global Robustness Certification of
//! Neural Networks via Interleaving Twin-Network Encoding"* (Wang, Huang, Zhu —
//! DATE 2022). This umbrella crate re-exports the workspace:
//!
//! * [`milp`] — pure-Rust LP/MILP solver (the Gurobi substitute),
//! * [`nn`] — networks, training, and the sparse affine IR,
//! * [`data`] — synthetic datasets (Auto-MPG-like, digits, camera),
//! * [`cert`] — the paper's contribution: ITNE/BTNE encodings, network
//!   decomposition, LP relaxation, selective refinement, Algorithm 1, and
//!   exact baselines,
//! * [`attack`] — FGSM/PGD and the dataset-wise under-approximation,
//! * [`control`] — the closed-loop ACC safety-verification case study.
//!
//! ## Quickstart
//!
//! ```
//! use itne::cert::{certify_global, CertifyOptions};
//! use itne::nn::NetworkBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 1 illustrating network: 2 inputs, 2 hidden, 1 output.
//! let net = NetworkBuilder::input(2)
//!     .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)?
//!     .dense(&[&[1.0, -1.0]], &[0.0], true)?
//!     .build();
//!
//! // Certify (δ, ε)-global robustness over X = [-1, 1]² with δ = 0.1.
//! let report = certify_global(
//!     &net,
//!     &[(-1.0, 1.0), (-1.0, 1.0)],
//!     0.1,
//!     &CertifyOptions::default(),
//! )?;
//! assert!(report.epsilon(0) >= 0.2); // sound: ≥ the true worst case 0.2
//! assert!(report.epsilon(0) <= 0.3); // tight: the paper's ITNE-ND/LPR band
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use itne_attack as attack;
pub use itne_control as control;
pub use itne_core as cert;
pub use itne_data as data;
pub use itne_milp as milp;
pub use itne_nn as nn;
