//! Vendored minimal stand-in for `proptest`.
//!
//! The container this workspace builds in has no network access, so the slice
//! of proptest the workspace's test suites use is implemented here:
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! range and tuple strategies, [`collection::vec`], [`strategy::Just`],
//! `any::<bool>()`, `prop_oneof!`, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Two deliberate simplifications relative to real proptest:
//!
//! * **Determinism.** Each test's RNG is seeded from
//!   [`test_runner::Config::rng_seed`] XOR a hash of the test name; the same
//!   binary always explores the same cases (no OS entropy, no persistence
//!   files). CI failures therefore reproduce locally by default.
//! * **No shrinking.** A failing case panics with its inputs via
//!   `prop_assert!`'s message instead of being minimized first.

#![forbid(unsafe_code)]

/// Test configuration and the deterministic RNG.
pub mod test_runner {
    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run per test.
        pub cases: u32,
        /// Base RNG seed; each test XORs in a hash of its own name.
        pub rng_seed: u64,
        /// Give up after this many `prop_assume!` rejections per accepted
        /// case (on average).
        pub max_global_rejects: u32,
    }

    impl Config {
        /// The default configuration with `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                rng_seed: 0x17de_cafc_0ffe,
                max_global_rejects: 10,
            }
        }
    }

    /// Why a single case did not count toward `cases`.
    #[derive(Clone, Copy, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; draw a fresh case.
        Reject,
    }

    /// FNV-1a, used to derive per-test seeds from test names.
    pub const fn fnv1a(name: &str) -> u64 {
        let bytes = name.as_bytes();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        hash
    }

    /// xoshiro256++ seeded via splitmix64 — deterministic and dependency-free.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }
    }
}

/// Strategies: value generators composed the proptest way.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given non-empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! of zero strategies");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + r) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + r) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit() * (self.end - self.start);
            // FP rounding can land exactly on `end`; keep the range half-open.
            if v >= self.end {
                self.end.next_down().max(self.start)
            } else {
                v
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are drawn
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one canonical value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite, moderately sized values: property tests over certified
            // bounds want well-scaled inputs, not FP edge-case hunting.
            (rng.unit() * 2.0 - 1.0) * 1e3
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests. Mirrors real proptest's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in collection::vec(0i32..5, 3)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            // The body runs inside an immediately-called closure so that
            // `prop_assume!` can early-return a rejection.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __seed =
                    __config.rng_seed ^ $crate::test_runner::fnv1a(stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts =
                    __config.cases.saturating_mul(__config.max_global_rejects.max(1));
                while __accepted < __config.cases {
                    assert!(
                        __attempts < __max_attempts,
                        "proptest: too many prop_assume! rejections \
                         ({__attempts} attempts for {__accepted} accepted cases)"
                    );
                    __attempts += 1;
                    $(
                        let $pat =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => continue,
                    }
                }
            }
        )*
    };
}

/// Asserts inside a [`proptest!`] body; panics with the formatted message
/// (this vendored implementation does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
}

/// Discards the current case (does not count toward `cases`) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_deterministic() {
        let mut a = crate::test_runner::TestRng::from_seed(42);
        let mut b = crate::test_runner::TestRng::from_seed(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs_obey_bounds(
            n in 1usize..=4,
            xs in collection::vec((-5i32..=5).prop_map(|v| v * 2), 2..=6),
            f in 0.0f64..1.0,
        ) {
            prop_assert!((1..=4).contains(&n));
            prop_assert!(xs.len() >= 2 && xs.len() <= 6);
            for x in &xs {
                prop_assert!(*x >= -10 && *x <= 10 && x % 2 == 0);
            }
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn oneof_flat_map_and_assume_work(
            pick in prop_oneof![Just(1u32), Just(2), Just(3)],
            (len, v) in (1usize..=3).prop_flat_map(|n| {
                (Just(n), collection::vec(0i32..10, n))
            }),
            b in any::<bool>(),
        ) {
            prop_assume!(pick != 3);
            prop_assert!(pick == 1 || pick == 2);
            prop_assert_eq!(len, v.len());
            let _ = b;
        }
    }
}
