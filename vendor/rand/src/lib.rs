//! Vendored minimal stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access, so the small
//! slice of the `rand` API the workspace actually uses is implemented here:
//!
//! * [`rngs::StdRng`] — xoshiro256++ seeded through splitmix64,
//! * [`SeedableRng::seed_from_u64`],
//! * [`RngExt::random_range`] over half-open and inclusive ranges of the
//!   primitive integer types and `f64`,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Determinism is a feature: every generator in the workspace is seeded
//! explicitly, and this implementation has no global state or OS entropy.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Constructing a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start + unit * (self.end - self.start);
        // FP rounding of `start + unit·span` can land exactly on `end`;
        // keep the half-open contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform sample in `[0, 1)`.
    fn random_unit(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform boolean.
    fn random_bool(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-3i32..=4);
            assert!((-3..=4).contains(&v));
            let f = rng.random_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u = rng.random_range(1usize..=3);
            assert!((1..=3).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
