//! Vendored minimal stand-in for `criterion`.
//!
//! The container this workspace builds in has no network access, so the slice
//! of the criterion API the bench harnesses use is implemented here: groups,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a plain wall-clock loop (no
//! statistics, outlier rejection, or HTML reports); timings print as
//! `<group>/<id>  time: <mean> per iter  (<n> iters)`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: a function name, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just `<parameter>` (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (warm, measure, samples) = (self.warm_up_time, self.measurement_time, self.sample_size);
        run_one(&id.into().text, warm, measure, samples, |b| f(b));
        self
    }
}

/// A set of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().text);
        run_one(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b),
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.text);
        run_one(
            &label,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op marker).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the payload.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    label: &str,
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // estimate the per-iteration cost as we go.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1000 {
            break;
        }
    }
    let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

    // Size each sample so the whole measurement fits the time budget.
    let budget_per_sample = measurement / samples.max(1) as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
    };

    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iterations: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters_per_sample;
    }

    let mean = if total_iters == 0 {
        Duration::ZERO
    } else {
        total / total_iters as u32
    };
    println!("{label:<48} time: {mean:>12?} per iter  ({total_iters} iters)");
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // wall-clock harness has no options to honor, so ignore them.
            $($group();)+
        }
    };
}
