//! Vendored minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! `syn`/`quote` are unavailable offline, so the derive input is parsed
//! directly from the `proc_macro` token stream. Supported shapes — exactly
//! the ones this workspace uses:
//!
//! * structs with named fields (any visibility),
//! * tuple structs (newtype structs serialize transparently),
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, as in real serde).
//!
//! Generics and `#[serde(...)]` attributes are not supported and produce a
//! `compile_error!` rather than wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
enum Shape {
    /// Named-field struct and its field names.
    Struct(Vec<String>),
    /// Tuple struct and its arity.
    TupleStruct(usize),
    /// Enum and its variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with the given arity (arity 1 is a newtype).
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => gen_serialize(&p).parse().expect("generated impl parses"),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(p) => gen_deserialize(&p).parse().expect("generated impl parses"),
        Err(e) => compile_error(&e),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Rejects `#[serde(...)]` at a skipped attribute position (`tokens[i]` is
/// the `#`); every other attribute is ignored.
fn check_skipped_attr(tokens: &[TokenTree], i: usize) -> Result<(), String> {
    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
        if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
            if id.to_string() == "serde" {
                return Err(
                    "serde derive: #[serde(...)] attributes are not supported by the \
                     vendored derive — restructure the type instead"
                        .into(),
                );
            }
        }
    }
    Ok(())
}

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility ahead of `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                check_skipped_attr(&tokens, i)?;
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                return Err(format!("serde derive: unexpected `{s}`"));
            }
            other => return Err(format!("serde derive: unexpected token {other:?}")),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected type name, got {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive: generic type `{name}` is not supported"
            ));
        }
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::Struct(parse_named_fields(g.stream())?)
            } else {
                Shape::Enum(parse_variants(g.stream())?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("serde derive: malformed enum".into());
            }
            Shape::TupleStruct(count_top_level_fields(g.stream()))
        }
        other => {
            return Err(format!(
                "serde derive: unsupported shape for `{name}` (unit struct or {other:?})"
            ))
        }
    };

    Ok(Parsed { name, shape })
}

/// Field names of a named-field body: `pub a: T, b: U, ...`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes.
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            check_skipped_attr(&tokens, i)?;
            i += 2;
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => return Err(format!("serde derive: expected field name, got {other:?}")),
        }
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("serde derive: expected `:`, got {other:?}")),
        }
        // Skip the type: everything until a comma outside `<...>`. The `>`
        // of a `->` return arrow is not an angle-bracket close.
        let mut angle = 0i32;
        let mut prev_dash = false;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            prev_dash = matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '-');
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of comma-separated fields at the top level of a tuple body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut prev_dash = false;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            // The `>` of a `->` return arrow is not an angle-bracket close.
            TokenTree::Punct(p) if p.as_char() == '>' && !prev_dash => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                prev_dash = false;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        prev_dash = matches!(t, TokenTree::Punct(p) if p.as_char() == '-');
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            check_skipped_attr(&tokens, i)?;
            i += 2;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("serde derive: explicit discriminants are not supported".into());
        }
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => return Err(format!("serde derive: expected `,`, got {other:?}")),
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let mut out = String::new();
    out.push_str(&format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    \
         fn to_value(&self) -> ::serde::Value {{\n"
    ));
    match &p.shape {
        Shape::Struct(fields) => {
            out.push_str("        ::serde::Value::Object(vec![\n");
            for f in fields {
                out.push_str(&format!(
                    "            ({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})),\n"
                ));
            }
            out.push_str("        ])\n");
        }
        Shape::TupleStruct(1) => {
            out.push_str("        ::serde::Serialize::to_value(&self.0)\n");
        }
        Shape::TupleStruct(n) => {
            out.push_str("        ::serde::Value::Array(vec![\n");
            for idx in 0..*n {
                out.push_str(&format!(
                    "            ::serde::Serialize::to_value(&self.{idx}),\n"
                ));
            }
            out.push_str("        ])\n");
        }
        Shape::Enum(variants) => {
            out.push_str("        match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "            {name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "            {name}::{vname}(__f0) => ::serde::Value::Object(vec![\n                \
                         ({vname:?}.to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vname}({}) => ::serde::Value::Object(vec![\n                \
                             ({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        out.push_str(&format!(
                            "            {name}::{vname} {{ {} }} => ::serde::Value::Object(vec![\n                \
                             ({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            fields.join(", "),
                            entries.join(", ")
                        ));
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let mut out = String::new();
    out.push_str(&format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n"
    ));
    match &p.shape {
        Shape::Struct(fields) => {
            out.push_str(&format!(
                "        let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(format!(\"expected object for struct {name}, got {{}}\", __v.kind())))?;\n"
            ));
            out.push_str(&format!("        ::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                out.push_str(&format!(
                    "            {f}: ::serde::from_field(__obj, {f:?})?,\n"
                ));
            }
            out.push_str("        })\n");
        }
        Shape::TupleStruct(1) => {
            out.push_str(&format!(
                "        ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n"
            ));
        }
        Shape::TupleStruct(n) => {
            out.push_str(&format!(
                "        let __items = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::custom(format!(\"expected array for tuple struct {name}, got {{}}\", __v.kind())))?;\n        \
                 if __items.len() != {n} {{\n            \
                 return ::std::result::Result::Err(::serde::DeError::custom(format!(\n                \
                 \"tuple struct {name} expects {n} elements, got {{}}\", __items.len())));\n        }}\n"
            ));
            let elems: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            out.push_str(&format!(
                "        ::std::result::Result::Ok({name}({}))\n",
                elems.join(", ")
            ));
        }
        Shape::Enum(variants) => {
            out.push_str("        match __v {\n");
            let units: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .collect();
            out.push_str("            ::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in &units {
                let vname = &v.name;
                out.push_str(&format!(
                    "                {vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            out.push_str(&format!(
                "                __other => ::std::result::Result::Err(::serde::DeError::custom(\n                    \
                 format!(\"unknown unit variant `{{__other}}` for enum {name}\"))),\n            }},\n"
            ));
            out.push_str(
                "            ::serde::Value::Object(__entries) if __entries.len() == 1 => {\n                \
                 let (__tag, __inner) = &__entries[0];\n                match __tag.as_str() {\n",
            );
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "                    {vname:?} => ::std::result::Result::Ok(\n                        \
                         {name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                            .collect();
                        out.push_str(&format!(
                            "                    {vname:?} => {{\n                        \
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected array payload\"))?;\n                        \
                             if __items.len() != {n} {{\n                            \
                             return ::std::result::Result::Err(::serde::DeError::custom(\n                                \
                             \"wrong payload arity for variant {vname}\"));\n                        }}\n                        \
                             ::std::result::Result::Ok({name}::{vname}({}))\n                    }},\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::from_field(__obj, {f:?})?"))
                            .collect();
                        out.push_str(&format!(
                            "                    {vname:?} => {{\n                        \
                             let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected object payload\"))?;\n                        \
                             ::std::result::Result::Ok({name}::{vname} {{ {} }})\n                    }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            out.push_str(&format!(
                "                    __other => ::std::result::Result::Err(::serde::DeError::custom(\n                        \
                 format!(\"unknown variant `{{__other}}` for enum {name}\"))),\n                }}\n            }},\n"
            ));
            out.push_str(&format!(
                "            __other => ::std::result::Result::Err(::serde::DeError::custom(\n                \
                 format!(\"expected variant of enum {name}, got {{}}\", __other.kind()))),\n        }}\n"
            ));
        }
    }
    out.push_str("    }\n}\n");
    out
}
