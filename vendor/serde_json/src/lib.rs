//! Vendored minimal stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] data model to JSON text (compact and
//! pretty) and parses JSON text back. Mirrors real `serde_json` behavior
//! where it matters to this workspace: floats print in shortest round-trip
//! form, non-finite floats serialize as `null`, and parse errors report
//! line/column.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's `Display` for f64 is shortest-round-trip; force a
                // fractional part so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        Error(format!("{msg} at line {line} column {col}"))
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.error("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.error("expected object key"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            (
                "xs".into(),
                Value::Array(vec![Value::F64(0.1), Value::I64(-3)]),
            ),
            ("name".into(), Value::Str("a\n\"b\"".into())),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let mut compact = String::new();
        write_value(&v, &mut compact, None, 0);
        let back = Parser::new(&compact).parse_document().unwrap();
        assert_eq!(v, back);

        let mut pretty = String::new();
        write_value(&v, &mut pretty, Some(2), 0);
        let back = Parser::new(&pretty).parse_document().unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1.0, -2.5e-7, 1234567.875, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_value(&Value::F64(f), &mut s, None, 0);
            match Parser::new(&s).parse_document().unwrap() {
                Value::F64(back) => assert_eq!(f, back, "via {s}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = Parser::new("{\"a\": }").parse_document().unwrap_err();
        assert!(err.to_string().contains("column"), "{err}");
    }
}
