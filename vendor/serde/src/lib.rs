//! Vendored minimal stand-in for `serde`.
//!
//! The container this workspace builds in has no network access, so the slice
//! of serde the workspace uses is implemented here: a JSON-shaped [`Value`]
//! data model, [`Serialize`]/[`Deserialize`] traits over it, impls for the
//! primitives and collections the workspace serializes, and `#[derive]`
//! macros (re-exported from the companion `serde_derive` proc-macro crate)
//! that mirror serde's externally-tagged representation:
//!
//! * named structs → objects keyed by field name,
//! * newtype structs → the inner value (transparent),
//! * tuple structs → arrays,
//! * unit enum variants → the variant name as a string,
//! * payload enum variants → a single-entry object `{"Variant": payload}`.
//!
//! `serde_json` (also vendored) renders [`Value`] to JSON text and back.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the intermediate data model between Rust types and
/// serialized text.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Clone, Debug)]
pub struct DeError(String);

impl DeError {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// This value in the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, or explains why the value has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up `key` in a struct object and deserializes it (derive-macro
/// support; missing keys are an error, as with serde's default behavior for
/// non-`Option` fields).
pub fn from_field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => Err(DeError::custom(format!("missing field `{key}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let err = || DeError::custom(format!(
                    "number out of range for {}", stringify!($t)));
                match v {
                    Value::I64(i) => <$t>::try_from(*i).map_err(|_| err()),
                    Value::U64(u) => <$t>::try_from(*u).map_err(|_| err()),
                    // Integral floats go through the checked integer paths
                    // (an `as` cast would silently saturate out-of-range
                    // values).
                    Value::F64(f) if f.fract() == 0.0 && f.is_finite() => {
                        if *f >= 0.0 && *f < u64::MAX as f64 {
                            <$t>::try_from(*f as u64).map_err(|_| err())
                        } else if *f < 0.0 && *f >= i64::MIN as f64 {
                            <$t>::try_from(*f as i64).map_err(|_| err())
                        } else {
                            Err(err())
                        }
                    }
                    other => Err(DeError::custom(format!(
                        "expected integer, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    // serde_json writes non-finite floats as `null`.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::custom(format!(
                        "expected number, got {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected array of {}, got {}", LEN, other.kind()))),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}
