//! End-to-end pipeline test: synthesize data → train → certify → attack →
//! cross-check all bounds, across all workspace crates.

use itne::attack::{dataset_under_approximation, PgdOptions};
use itne::cert::{certify_global, exact_global, CertifyOptions};
use itne::data::{auto_mpg, split};
use itne::milp::SolveOptions;
use itne::nn::train::{evaluate_mse, train, Adam, Loss, TrainConfig};
use itne::nn::{initialize, NetworkBuilder};

#[test]
fn train_certify_attack_sandwich() {
    // --- Data + training (tiny but real). ---
    let data = auto_mpg(240, 5);
    let (train_set, test_set) = split(&data, 0.8);
    let mut net = NetworkBuilder::input(7)
        .dense_zeros(5, true)
        .expect("shape")
        .dense_zeros(5, true)
        .expect("shape")
        .dense_zeros(1, false)
        .expect("shape")
        .build();
    initialize(&mut net, 13);
    let mut opt = Adam::new(5e-3);
    train(
        &mut net,
        &train_set,
        &mut opt,
        &TrainConfig {
            epochs: 80,
            batch_size: 16,
            loss: Loss::Mse,
            seed: 2,
            verbose: false,
        },
    );
    assert!(
        evaluate_mse(&net, &test_set) < 0.03,
        "model failed to generalize"
    );

    let domain = vec![(0.0, 1.0); 7];
    let delta = 0.004;

    // --- The three-way bracket of Table I. ---
    let under = dataset_under_approximation(
        &net,
        &test_set.inputs,
        delta,
        Some(&domain),
        &PgdOptions::default(),
    );
    let exact = exact_global(&net, &domain, delta, SolveOptions::default()).expect("solves");
    let certified = certify_global(
        &net,
        &domain,
        delta,
        &CertifyOptions {
            window: 2,
            refine: 5,
            ..Default::default()
        },
    )
    .expect("certifies");

    let (lo, ex, hi) = (under.epsilon(0), exact.epsilon(0), certified.epsilon(0));
    assert!(lo <= ex + 1e-7, "PGD {lo} above exact {ex}");
    assert!(ex <= hi + 1e-7, "certified {hi} below exact {ex}");
    assert!(
        hi <= 4.0 * ex.max(1e-9),
        "certified bound uselessly loose: {hi} vs exact {ex}"
    );

    // --- Certified ε̄ must also hold empirically on random twin pairs. ---
    let mut seed = 99u64;
    let mut unit = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..2000 {
        let x: Vec<f64> = (0..7).map(|_| unit()).collect();
        let xh: Vec<f64> = x
            .iter()
            .map(|&v| (v + (unit() * 2.0 - 1.0) * delta).clamp(0.0, 1.0))
            .collect();
        let d = (net.forward(&xh)[0] - net.forward(&x)[0]).abs();
        assert!(
            d <= hi + 1e-7,
            "sampled variation {d} exceeds certified {hi}"
        );
    }
}

#[test]
fn parallel_certification_agrees_with_serial() {
    let data = auto_mpg(150, 8);
    let mut net = NetworkBuilder::input(7)
        .dense_zeros(6, true)
        .expect("shape")
        .dense_zeros(1, false)
        .expect("shape")
        .build();
    initialize(&mut net, 21);
    let mut opt = Adam::new(5e-3);
    train(
        &mut net,
        &data,
        &mut opt,
        &TrainConfig {
            epochs: 40,
            batch_size: 16,
            loss: Loss::Mse,
            seed: 2,
            verbose: false,
        },
    );
    let domain = vec![(0.0, 1.0); 7];
    let serial = certify_global(&net, &domain, 0.002, &CertifyOptions::default()).expect("ok");
    let parallel = certify_global(
        &net,
        &domain,
        0.002,
        &CertifyOptions {
            threads: 2,
            ..Default::default()
        },
    )
    .expect("ok");
    assert_eq!(serial.epsilons, parallel.epsilons);
}
