//! Integration smoke test of the full ACC case-study pipeline at reduced
//! scale: train → model error → certify → invariant set → closed-loop
//! simulation, asserting the paper's qualitative structure.

use itne::cert::{certify_global, CertifyOptions};
use itne::control::{
    analyze, max_tolerable_estimation_error, simulate, PerceptionConfig, PerceptionModel, SafeSet,
    SimConfig,
};
use itne::data::CameraSpec;

#[test]
fn acc_pipeline_end_to_end() {
    // Small camera and model keep this a smoke test.
    let spec = CameraSpec {
        height: 8,
        width: 16,
        focal: 2.4,
        ..CameraSpec::default()
    };
    let cfg = PerceptionConfig {
        spec,
        conv_channels: (3, 3),
        fc_width: 8,
        train_samples: 500,
        epochs: 40,
        // The tiny 8×16 camera cannot afford the full config's pooling
        // front-end or heavy decay — this is a smoke-scale model.
        pool_first: false,
        weight_decay: 0.005,
        ..Default::default()
    };
    let (model, data, _) = PerceptionModel::train_new(&cfg);
    let dd1 = model.model_error(&data);
    assert!(dd1 < 0.5, "tiny perception net unusable: Δd₁ = {dd1}");

    // Certification over the profiled domain must return a finite sound
    // bound and never fall back at this size.
    let delta = 2.0 / 255.0;
    let domain = model.input_domain(&data, delta);
    let report = certify_global(
        &model.net,
        &domain,
        delta,
        &CertifyOptions {
            window: 2,
            threads: 2,
            ..Default::default()
        },
    )
    .expect("certification runs");
    let dd2 = report.epsilon(0);
    assert!(dd2.is_finite() && dd2 > 0.0);

    // Invariant-set tolerance: the paper's setup computes β ≈ 0.14.
    let safe = SafeSet::default();
    let beta = max_tolerable_estimation_error(&safe, 1e-4);
    assert!((0.10..=0.16).contains(&beta), "β = {beta}");
    assert!(analyze(beta * 0.95, &safe).safe);

    // Closed loop without attack stays safe and within the RPI-backed bound
    // whenever the combined estimation error is certified below β.
    let sim = simulate(
        &model,
        beta,
        &safe,
        &SimConfig {
            episodes: 4,
            steps: 150,
            delta: 0.0,
            seed: 3,
        },
    );
    assert_eq!(sim.unsafe_episodes, 0, "clean closed loop went unsafe");

    // Attack escalation: stronger perturbations can only worsen (or match)
    // the worst estimation error.
    let weak = simulate(
        &model,
        beta,
        &safe,
        &SimConfig {
            episodes: 3,
            steps: 100,
            delta: 2.0 / 255.0,
            seed: 9,
        },
    );
    let strong = simulate(
        &model,
        beta,
        &safe,
        &SimConfig {
            episodes: 3,
            steps: 100,
            delta: 12.0 / 255.0,
            seed: 9,
        },
    );
    assert!(
        strong.max_abs_dd + 1e-9 >= weak.max_abs_dd,
        "stronger attack produced smaller max error: {} vs {}",
        strong.max_abs_dd,
        weak.max_abs_dd
    );
}
