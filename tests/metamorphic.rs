//! Metamorphic properties of the certification engine: relations that must
//! hold between runs whose configurations are ordered, without knowing any
//! ground-truth value.
//!
//! * `ε̄` is monotonically non-increasing in the selective-refinement count
//!   (every refined neuron replaces a relaxation by an exact encoding);
//! * `ε̄` is monotonically non-increasing in the window size `W` (a deeper
//!   sub-network loses less information at decomposition joints);
//! * ITNE is never looser than BTNE under identical settings (the
//!   interleaved distance variables only *add* coupling information);
//! * every relation is checked with `threads: 1` and `threads: 4`, and the
//!   two thread counts must agree exactly — the per-neuron parallelism (and
//!   the per-worker warm-start batching underneath it) is deterministic.

use itne::cert::{certify_global, CertifyOptions, EncodingKind};
use itne::nn::train::{train, Adam, Loss, TrainConfig};
use itne::nn::{initialize, Network, NetworkBuilder};

const FIG1_DOM: [(f64, f64); 2] = [(-1.0, 1.0), (-1.0, 1.0)];
const MPG_DOM: [(f64, f64); 7] = [(0.0, 1.0); 7];
const TOL: f64 = 1e-9;

fn fig1() -> Network {
    NetworkBuilder::input(2)
        .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)
        .expect("static shapes")
        .dense(&[&[1.0, -1.0]], &[0.0], true)
        .expect("static shapes")
        .build()
}

/// A small trained two-hidden-layer regressor (Table I row-1 scale).
fn mpg_net() -> Network {
    let data = itne::data::auto_mpg(150, 7);
    let mut net = NetworkBuilder::input(7)
        .dense_zeros(4, true)
        .expect("shape")
        .dense_zeros(4, true)
        .expect("shape")
        .dense_zeros(1, false)
        .expect("shape")
        .build();
    initialize(&mut net, 31);
    let mut opt = Adam::new(5e-3);
    train(
        &mut net,
        &data,
        &mut opt,
        &TrainConfig {
            epochs: 35,
            batch_size: 32,
            loss: Loss::Mse,
            seed: 6,
            verbose: false,
        },
    );
    net
}

fn eps(net: &Network, domain: &[(f64, f64)], delta: f64, opts: &CertifyOptions) -> f64 {
    certify_global(net, domain, delta, opts)
        .expect("certification runs")
        .max_epsilon()
}

/// Runs `make_opts` under both thread counts, asserts they agree exactly,
/// and returns the (shared) certified bound.
fn eps_both_thread_counts(
    net: &Network,
    domain: &[(f64, f64)],
    delta: f64,
    make_opts: impl Fn() -> CertifyOptions,
    what: &str,
) -> f64 {
    let serial = eps(
        net,
        domain,
        delta,
        &CertifyOptions {
            threads: 1,
            ..make_opts()
        },
    );
    let parallel = eps(
        net,
        domain,
        delta,
        &CertifyOptions {
            threads: 4,
            ..make_opts()
        },
    );
    assert_eq!(
        serial.to_bits(),
        parallel.to_bits(),
        "{what}: threads=1 gave {serial}, threads=4 gave {parallel}"
    );
    serial
}

#[test]
fn epsilon_non_increasing_in_refine() {
    for (name, net, domain, delta) in [
        ("fig1", fig1(), &FIG1_DOM[..], 0.1),
        ("mpg", mpg_net(), &MPG_DOM[..], 0.004),
    ] {
        let mut last = f64::INFINITY;
        for refine in [0usize, 1, 2, 4] {
            let e = eps_both_thread_counts(
                &net,
                domain,
                delta,
                || CertifyOptions {
                    refine,
                    ..Default::default()
                },
                &format!("{name} refine={refine}"),
            );
            assert!(
                e <= last + TOL,
                "{name}: ε̄ rose from {last} to {e} when refine increased to {refine}"
            );
            last = e;
        }
    }
}

#[test]
fn epsilon_non_increasing_in_window() {
    for (name, net, domain, delta) in [
        ("fig1", fig1(), &FIG1_DOM[..], 0.1),
        ("mpg", mpg_net(), &MPG_DOM[..], 0.004),
    ] {
        let mut last = f64::INFINITY;
        for window in [1usize, 2, 3] {
            let e = eps_both_thread_counts(
                &net,
                domain,
                delta,
                || CertifyOptions {
                    window,
                    ..Default::default()
                },
                &format!("{name} window={window}"),
            );
            assert!(
                e <= last + TOL,
                "{name}: ε̄ rose from {last} to {e} when window increased to {window}"
            );
            last = e;
        }
    }
}

#[test]
fn itne_never_looser_than_btne() {
    for (name, net, domain, delta) in [
        ("fig1", fig1(), &FIG1_DOM[..], 0.1),
        ("mpg", mpg_net(), &MPG_DOM[..], 0.004),
    ] {
        for window in [1usize, 2] {
            let mk = |encoding| {
                move || CertifyOptions {
                    window,
                    encoding,
                    ..Default::default()
                }
            };
            let itne = eps_both_thread_counts(
                &net,
                domain,
                delta,
                mk(EncodingKind::Itne),
                &format!("{name} itne W={window}"),
            );
            let btne = eps_both_thread_counts(
                &net,
                domain,
                delta,
                mk(EncodingKind::Btne),
                &format!("{name} btne W={window}"),
            );
            assert!(
                itne <= btne + TOL,
                "{name} W={window}: ITNE ε̄ {itne} looser than BTNE ε̄ {btne}"
            );
        }
    }
}
