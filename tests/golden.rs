//! Golden regression locks for the certified epsilons.
//!
//! The values below were recorded from the cold per-objective solve path
//! (`SolveOptions::warm_start = false` behaves identically), and the suite
//! asserts the warm-started batched path reproduces them **bit for bit**:
//! batching is required to be a pure optimization, never a semantic change.
//! The query layer makes this well-defined by snapping every padded LP bound
//! outward onto a fixed dyadic grid, so a certified range depends on the
//! mathematical optimum — not on which pivot path (cold two-phase,
//! warm-started reoptimization, or a future backend) computed it — except
//! in the deterministic corner case where two paths straddle a grid line,
//! which would show up here as a stable diff to investigate. The
//! pre-rewrite cold path produced the same values up to that ≤ 2⁻³⁰ outward
//! snap, far inside the 1e-7 soundness slack each bound already carries.
//! A second test re-runs every case with warm starts disabled and
//! cross-checks the two paths against each other, so a future regression
//! shows up as a path divergence even if both drift from the recorded bits.
//!
//! To re-record after an *intentional* semantic change, run
//!
//! ```text
//! ITNE_GOLDEN_RECORD=1 cargo test --test golden -- --nocapture
//! ```
//!
//! and paste the printed table over `GOLDEN`.

use itne::cert::encode::{EncodingKind, Relaxation};
use itne::cert::{certify_global, CertifyOptions};
use itne::nn::train::{train, Adam, Loss, TrainConfig};
use itne::nn::{initialize, Network, NetworkBuilder};

const FIG1_DOM: [(f64, f64); 2] = [(-1.0, 1.0), (-1.0, 1.0)];

/// The paper's Fig. 1 network (also the README quickstart network).
fn fig1() -> Network {
    NetworkBuilder::input(2)
        .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)
        .expect("static shapes")
        .dense(&[&[1.0, -1.0]], &[0.0], true)
        .expect("static shapes")
        .build()
}

/// A small trained Auto-MPG regressor in the style of Table I rows 1-2:
/// two ReLU hidden layers of width `w`, trained deterministically.
fn mpg_net(w: usize) -> Network {
    let data = itne::data::auto_mpg(160, 11);
    let mut net = NetworkBuilder::input(7)
        .dense_zeros(w, true)
        .expect("shape")
        .dense_zeros(w, true)
        .expect("shape")
        .dense_zeros(1, false)
        .expect("shape")
        .build();
    initialize(&mut net, 70 + w as u64);
    let mut opt = Adam::new(5e-3);
    train(
        &mut net,
        &data,
        &mut opt,
        &TrainConfig {
            epochs: 40,
            batch_size: 32,
            loss: Loss::Mse,
            seed: 4,
            verbose: false,
        },
    );
    net
}

struct Case {
    name: &'static str,
    net: Network,
    domain: Vec<(f64, f64)>,
    delta: f64,
    opts: CertifyOptions,
}

/// Every configuration the golden table locks. Covers the quickstart/Fig. 1
/// net under the Algorithm 1 default, the exact-ND window, selective
/// refinement, the BTNE baseline, the no-closed-form LpRelaxX path, and two
/// Table I-style trained networks.
fn cases() -> Vec<Case> {
    let mpg_opts = |refine| CertifyOptions {
        window: 2,
        refine,
        ..Default::default()
    };
    vec![
        Case {
            name: "fig1/default",
            net: fig1(),
            domain: FIG1_DOM.to_vec(),
            delta: 0.1,
            opts: CertifyOptions::default(),
        },
        Case {
            name: "fig1/nd-w1",
            net: fig1(),
            domain: FIG1_DOM.to_vec(),
            delta: 0.1,
            opts: CertifyOptions {
                window: 1,
                relaxation: Relaxation::Exact,
                ..Default::default()
            },
        },
        Case {
            name: "fig1/refine2",
            net: fig1(),
            domain: FIG1_DOM.to_vec(),
            delta: 0.1,
            opts: CertifyOptions {
                refine: 2,
                ..Default::default()
            },
        },
        Case {
            name: "fig1/btne",
            net: fig1(),
            domain: FIG1_DOM.to_vec(),
            delta: 0.1,
            opts: CertifyOptions {
                encoding: EncodingKind::Btne,
                ..Default::default()
            },
        },
        Case {
            name: "fig1/no-closed-form",
            net: fig1(),
            domain: FIG1_DOM.to_vec(),
            delta: 0.1,
            opts: CertifyOptions {
                closed_form_x: false,
                ..Default::default()
            },
        },
        Case {
            name: "mpg-w4",
            net: mpg_net(4),
            domain: vec![(0.0, 1.0); 7],
            delta: 0.004,
            opts: mpg_opts(4),
        },
        Case {
            name: "mpg-w6",
            net: mpg_net(6),
            domain: vec![(0.0, 1.0); 7],
            delta: 0.004,
            opts: mpg_opts(0),
        },
    ]
}

/// `(case name, epsilon bit patterns per output)` recorded from the cold
/// solve path.
const GOLDEN: &[(&str, &[u64])] = &[
    ("fig1/default", &[0x3fd000006d000000]), // [0.25000010151416063]
    ("fig1/nd-w1", &[0x3fd3333333333330]),   // [0.2999999999999998]
    ("fig1/refine2", &[0x3fc9999a76000000]), // [0.20000010263174772]
    ("fig1/btne", &[0x3ff490b23f000000]),    // [1.2853262387216091]
    ("fig1/no-closed-form", &[0x3fd000006d000000]), // [0.25000010151416063]
    ("mpg-w4", &[0x3f8be37dc0000000]),       // [0.0136174988001585]
    ("mpg-w6", &[0x3fada1a1a8000000]),       // [0.057873775251209736]
];

fn run(case: &Case) -> Vec<f64> {
    certify_global(&case.net, &case.domain, case.delta, &case.opts)
        .expect("certification runs")
        .epsilons
}

/// The warm-started batched path must agree with the all-cold path exactly,
/// case by case — independent of whether either matches the recorded table.
/// This is the direct statement of "batching is a pure optimization".
#[test]
fn warm_started_path_equals_cold_path_bit_for_bit() {
    for case in cases() {
        let warm_report = certify_global(&case.net, &case.domain, case.delta, &case.opts)
            .expect("warm path runs");
        let mut cold_opts = case.opts.clone();
        cold_opts.solver.warm_start = false;
        let cold_report = certify_global(&case.net, &case.domain, case.delta, &cold_opts)
            .expect("cold path runs");
        assert_eq!(
            warm_report.epsilons, cold_report.epsilons,
            "{}: warm-started epsilons diverged from cold-path epsilons",
            case.name
        );
        let (w, c) = (warm_report.stats.query, cold_report.stats.query);
        assert_eq!(w.solves, c.solves, "{}: solve count changed", case.name);
        assert_eq!(c.warm_hits, 0, "{}: cold path warm-started", case.name);
        assert!(
            w.warm_hits > 0,
            "{}: warm path never hit a warm start ({w:?})",
            case.name
        );
        assert!(
            w.pivots <= c.pivots,
            "{}: warm path spent more pivots ({} > {})",
            case.name,
            w.pivots,
            c.pivots
        );
    }
}

/// Exact-rational certificate checking is observe-only on healthy nets:
/// forced on, every certified LP bound validates against its dual
/// certificate (zero failures) and the reported epsilons stay bit-identical
/// to the recorded cold-path table. CI re-runs the whole suite with
/// `ITNE_CHECK_CERTS=1`, which turns checking on inside every other test as
/// well; this test asserts the property even in a default run.
#[test]
fn certificate_checking_validates_every_golden_bound() {
    for case in cases() {
        let mut opts = case.opts.clone();
        opts.check_certificates = true;
        let report =
            certify_global(&case.net, &case.domain, case.delta, &opts).expect("checked path runs");
        let q = report.stats.query;
        assert!(
            q.certs_checked > 0,
            "{}: no LP bound was certificate-checked ({q:?})",
            case.name
        );
        assert_eq!(
            q.cert_failures, 0,
            "{}: a dual certificate failed exact validation ({q:?})",
            case.name
        );
        let want = GOLDEN
            .iter()
            .find(|(n, _)| *n == case.name)
            .unwrap_or_else(|| panic!("no golden entry for {}", case.name))
            .1;
        let bits: Vec<u64> = report.epsilons.iter().map(|e| e.to_bits()).collect();
        assert_eq!(
            bits, want,
            "{}: enabling certificate checking changed the certified bits",
            case.name
        );
    }
}

#[test]
fn golden_epsilons_bit_for_bit() {
    let record = std::env::var("ITNE_GOLDEN_RECORD").is_ok();
    if record {
        println!("const GOLDEN: &[(&str, &[u64])] = &[");
    }
    for case in cases() {
        let eps = run(&case);
        if record {
            let bits: Vec<String> = eps
                .iter()
                .map(|e| format!("{:#018x}", e.to_bits()))
                .collect();
            println!(
                "    (\"{}\", &[{}]), // {:?}",
                case.name,
                bits.join(", "),
                eps
            );
            continue;
        }
        let want = GOLDEN
            .iter()
            .find(|(n, _)| *n == case.name)
            .unwrap_or_else(|| panic!("no golden entry for {}", case.name))
            .1;
        assert_eq!(eps.len(), want.len(), "{}: output arity changed", case.name);
        for (j, (&e, &w)) in eps.iter().zip(want).enumerate() {
            assert_eq!(
                e.to_bits(),
                w,
                "{} output {j}: ε̄ = {e:.17} (bits {:#018x}) differs from the \
                 recorded cold-path value {:.17} (bits {w:#018x})",
                case.name,
                e.to_bits(),
                f64::from_bits(w),
            );
        }
    }
    if record {
        println!("];");
        panic!("recording mode: table printed above, assertions skipped");
    }
}
