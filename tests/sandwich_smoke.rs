//! Integration smoke test: the sound-and-tight sandwich on the paper's
//! Fig. 1 network.
//!
//! With δ = 0.1 over X = [-1, 1]², the true worst-case output deviation is
//! ε = 0.2. Any sampled pair of δ-close inputs gives a lower bound on ε, the
//! exact MILP computes ε itself, and `certify_global` (Algorithm 1) returns a
//! sound over-approximation ε̄. So the three must order as
//!
//! ```text
//! sampled_lower_bound  ≤  exact_global  ≤  certify_global  ≤  0.3
//! ```
//!
//! with the final 0.3 being the paper's ITNE-ND/LPR tightness band for this
//! network (IBP alone would report 0.3; the certified bound must not be
//! looser than that).

use itne::cert::example::fig1_network;
use itne::cert::{certify_global, exact_global, sampled_lower_bound, CertifyOptions};
use itne::milp::SolveOptions;

#[test]
fn fig1_sound_and_tight_sandwich() {
    let net = fig1_network();
    let domain = [(-1.0, 1.0), (-1.0, 1.0)];
    let delta = 0.1;

    let sampled = sampled_lower_bound(&net, &domain, delta, 21, 40);
    let exact = exact_global(&net, &domain, delta, SolveOptions::default())
        .expect("exact MILP solves the Fig. 1 network");
    let certified = certify_global(&net, &domain, delta, &CertifyOptions::default())
        .expect("Algorithm 1 certifies the Fig. 1 network");

    assert_eq!(net.output_dim(), 1);
    for (j, &lower) in sampled.iter().enumerate() {
        assert!(
            lower <= exact.epsilon(j) + 1e-9,
            "sampled lower bound {} exceeds exact {} on output {j}",
            lower,
            exact.epsilon(j)
        );
        assert!(
            exact.epsilon(j) <= certified.epsilon(j) + 1e-9,
            "certified bound {} is unsound: exact is {} on output {j}",
            certified.epsilon(j),
            exact.epsilon(j)
        );
    }

    // The known Fig. 1 values: exact ε = 0.2, certified ε̄ within [0.2, 0.3].
    assert!(
        (exact.epsilon(0) - 0.2).abs() < 1e-6,
        "exact ε should be 0.2, got {}",
        exact.epsilon(0)
    );
    assert!(
        certified.epsilon(0) >= 0.2 - 1e-9 && certified.epsilon(0) <= 0.3,
        "certified ε̄ {} outside the paper's [0.2, 0.3] band",
        certified.epsilon(0)
    );
    // And the sampled bound is genuinely informative (not degenerate zero).
    assert!(
        sampled[0] > 0.15,
        "sampled lower bound {} is too loose to be a meaningful check",
        sampled[0]
    );
}
