//! Cross-crate reproduction of the paper's Fig. 4 ground truth through the
//! umbrella crate's public API. These are the strongest correctness anchors
//! in the repository: the paper prints the exact interval for every method
//! on the illustrating example.

use itne::cert::encode::Relaxation;
use itne::cert::oneshot::{oneshot_global, oneshot_local};
use itne::cert::split::{split_global, SplitOptions};
use itne::cert::{certify_global, exact_global, CertifyOptions, EncodingKind};
use itne::milp::SolveOptions;
use itne::nn::{AffineNetwork, NetworkBuilder};

const DOM: [(f64, f64); 2] = [(-1.0, 1.0), (-1.0, 1.0)];
const DELTA: f64 = 0.1;

fn fig1() -> itne::nn::Network {
    NetworkBuilder::input(2)
        .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)
        .expect("static shapes")
        .dense(&[&[1.0, -1.0]], &[0.0], true)
        .expect("static shapes")
        .build()
}

#[test]
fn exact_global_is_plus_minus_0_2() {
    let r = exact_global(&fig1(), &DOM, DELTA, SolveOptions::default()).expect("solves");
    assert!((r.epsilon(0) - 0.2).abs() < 1e-5);
}

#[test]
fn split_solver_agrees_with_milp() {
    let r = split_global(&fig1(), &DOM, DELTA, &SplitOptions::default()).expect("solves");
    assert!(r.exact);
    assert!((r.epsilons[0] - 0.2).abs() < 1e-5);
}

#[test]
fn itne_nd_gives_1_5x() {
    let r = certify_global(
        &fig1(),
        &DOM,
        DELTA,
        &CertifyOptions {
            window: 1,
            relaxation: Relaxation::Exact,
            ..Default::default()
        },
    )
    .expect("certifies");
    assert!((r.epsilon(0) - 0.3).abs() < 1e-5, "ε = {}", r.epsilon(0));
}

#[test]
fn btne_nd_gives_7_5x() {
    let r = certify_global(
        &fig1(),
        &DOM,
        DELTA,
        &CertifyOptions {
            window: 1,
            encoding: EncodingKind::Btne,
            relaxation: Relaxation::Exact,
            ..Default::default()
        },
    )
    .expect("certifies");
    assert!((r.epsilon(0) - 1.5).abs() < 1e-5, "ε = {}", r.epsilon(0));
}

#[test]
fn itne_lpr_gives_1_38x() {
    let aff = AffineNetwork::from_network(&fig1()).expect("lowers");
    let r = oneshot_global(
        &aff,
        &DOM,
        DELTA,
        EncodingKind::Itne,
        Relaxation::Lpr,
        0,
        &SolveOptions::default(),
    )
    .expect("solves");
    assert!((r.dx[0].hi - 0.275).abs() < 1e-6 && (r.dx[0].lo + 0.275).abs() < 1e-6);
}

#[test]
fn local_rows_match_paper() {
    let aff = AffineNetwork::from_network(&fig1()).expect("lowers");
    // Exact local: [0, 0.125].
    let exact = itne::cert::local::certify_local(
        &fig1(),
        &[0.0, 0.0],
        DELTA,
        None,
        &CertifyOptions {
            relaxation: Relaxation::Exact,
            window: 2,
            ..Default::default()
        },
    )
    .expect("certifies");
    assert!((exact.output_ranges[0].hi - 0.125).abs() < 1e-6);
    // One-shot LPR: [0, 0.14375] (the paper rounds to 0.144).
    let lpr = oneshot_local(
        &aff,
        &[0.0, 0.0],
        DELTA,
        None,
        Relaxation::Lpr,
        0,
        &SolveOptions::default(),
    )
    .expect("solves");
    assert!((lpr.x[0].hi - 0.14375).abs() < 1e-6);
}

#[test]
fn full_method_ordering_on_the_example() {
    // exact ≤ Algorithm 1 ≤ ITNE-ND ≤ BTNE-ND, as Fig. 4 lays out.
    let net = fig1();
    let exact = exact_global(&net, &DOM, DELTA, SolveOptions::default()).expect("solves");
    let alg1 = certify_global(&net, &DOM, DELTA, &CertifyOptions::default()).expect("certifies");
    let itne_nd = certify_global(
        &net,
        &DOM,
        DELTA,
        &CertifyOptions {
            window: 1,
            relaxation: Relaxation::Exact,
            ..Default::default()
        },
    )
    .expect("certifies");
    let btne_nd = certify_global(
        &net,
        &DOM,
        DELTA,
        &CertifyOptions {
            window: 1,
            encoding: EncodingKind::Btne,
            relaxation: Relaxation::Exact,
            ..Default::default()
        },
    )
    .expect("certifies");
    assert!(exact.epsilon(0) <= alg1.epsilon(0) + 1e-9);
    assert!(alg1.epsilon(0) <= itne_nd.epsilon(0) + 1e-9);
    assert!(itne_nd.epsilon(0) <= btne_nd.epsilon(0) + 1e-9);
}
