//! CLI driver: `itne-lint [PATH ...]` (default `crates`).
//!
//! Prints `path:line: [rule] message` for every violation and exits 1 if
//! any were found. CI runs this alongside clippy; the two overlap on the
//! clippy-expressible subset (see `clippy.toml`) but only this pass knows
//! about test regions, the `snap_outward` audit, and reasoned allows.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut roots: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if roots.is_empty() {
        roots.push(PathBuf::from("crates"));
    }
    let diags = match itne_lint::lint_paths(&roots) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("itne-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("itne-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("itne-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}
