//! `itne-lint` — determinism and soundness static analysis for the ITNE
//! workspace.
//!
//! The certified ε̄ bounds this repo produces are only trustworthy if they
//! are *bit-identical* across pivot paths, engines, and thread counts. That
//! property is easy to lose to innocuous-looking Rust: iterating a
//! `HashMap`, a `partial_cmp` sort, a stray `Instant::now()` steering a
//! branch-and-bound. Rustc and clippy cannot see those invariants, so this
//! crate enforces them with a hand-rolled, token-level pass:
//!
//! | rule            | invariant |
//! |-----------------|-----------|
//! | `hash-iter`     | no hash-order iteration in deterministic crates |
//! | `float-cmp`     | `total_cmp` for ordering; no `==` on computed floats |
//! | `wall-clock`    | clock reads only at audited `itne_core::deadline` sites; never in `itne_milp` |
//! | `platform-fp`   | no fused/transcendental intrinsics in the LP kernel |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `snap-audit`    | bound reporting routes through `snap_outward` |
//! | `allow-syntax`  | escape hatches carry a written reason |
//!
//! The escape hatch is `// lint:allow(<rule>): <reason>` on the offending
//! line or the line above. A bare allow without a reason is itself a
//! violation (`allow-syntax`) and does **not** suppress.

#![forbid(unsafe_code)]

pub mod rules;
pub mod source;

use source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a file sits in the workspace — determines which rules apply.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Crate short name: the path component after `crates/` (e.g. `milp`),
    /// or `"root"` for top-level `src/`.
    pub crate_name: String,
    /// File name, e.g. `query.rs`.
    pub file_name: String,
    /// Under `tests/`, `benches/`, or `examples/` — relaxed scope.
    pub is_test_file: bool,
    /// `src/lib.rs` or `src/main.rs` — must carry `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
}

/// One `path:line: [rule] message` finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints one source text. `display_path` is used verbatim in diagnostics.
pub fn lint_source(ctx: &FileContext, display_path: &str, source: &str) -> Vec<Diagnostic> {
    let file = SourceFile::parse(source);
    let mut raw = Vec::new();
    rules::run_all(ctx, display_path, &file, &mut raw);
    // `wall-clock` in the solver crate is absolute — no escape hatch. The
    // solver must stay a pure function of its inputs plus the caller's
    // `StopWhen`; an annotated clock read there is still a clock read.
    let milp = ctx.crate_name == "milp";
    raw.retain(|d| {
        d.rule == "allow-syntax"
            || (milp && d.rule == "wall-clock")
            || !file.allowed(d.rule, d.line)
    });
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // One report per (line, rule): several sub-checks can flag the same
    // expression.
    raw.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    raw
}

/// Walks `roots`, linting every `.rs` file. Skips `target`, `vendor`,
/// `fixtures`, and dot-directories.
pub fn lint_paths(roots: &[PathBuf]) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs(root, &mut files)?;
    }
    files.sort();
    let mut diags = Vec::new();
    for path in &files {
        let source = fs::read_to_string(path)?;
        let ctx = context_for(path);
        let display = path.to_string_lossy();
        diags.extend(lint_source(&ctx, &display, &source));
    }
    Ok(diags)
}

fn collect_rs(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(path)? {
        let entry = entry?;
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if matches!(name.as_ref(), "target" | "vendor" | "fixtures") || name.starts_with('.') {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Derives the [`FileContext`] from a path like `crates/core/src/query.rs`.
pub fn context_for(path: &Path) -> FileContext {
    let comps: Vec<String> = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let crate_name = comps
        .iter()
        .position(|c| c == "crates")
        .and_then(|i| comps.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "root".to_string());
    let file_name = comps.last().cloned().unwrap_or_default();
    let is_test_file = comps
        .iter()
        .any(|c| matches!(c.as_str(), "tests" | "benches" | "examples"));
    let n = comps.len();
    let is_crate_root =
        n >= 2 && comps[n - 2] == "src" && (file_name == "lib.rs" || file_name == "main.rs");
    FileContext {
        crate_name,
        file_name,
        is_test_file,
        is_crate_root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_derivation() {
        let ctx = context_for(Path::new("crates/core/src/query.rs"));
        assert_eq!(ctx.crate_name, "core");
        assert_eq!(ctx.file_name, "query.rs");
        assert!(!ctx.is_test_file);
        assert!(!ctx.is_crate_root);

        let ctx = context_for(Path::new("crates/milp/src/lib.rs"));
        assert!(ctx.is_crate_root);

        let ctx = context_for(Path::new("crates/milp/tests/golden.rs"));
        assert!(ctx.is_test_file);

        let ctx = context_for(Path::new("src/lib.rs"));
        assert_eq!(ctx.crate_name, "root");
        assert!(ctx.is_crate_root);
    }

    #[test]
    fn reasoned_allow_suppresses_adjacent_line() {
        let ctx = context_for(Path::new("crates/core/src/telemetry.rs"));
        let src = "#![forbid(unsafe_code)]\n\
                   // lint:allow(wall-clock): telemetry only\n\
                   let t0 = std::time::Instant::now();\n";
        let diags = lint_source(&ctx, "t.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bare_allow_does_not_suppress() {
        let ctx = context_for(Path::new("crates/core/src/telemetry.rs"));
        let src = "// lint:allow(wall-clock)\nlet t0 = std::time::Instant::now();\n";
        let diags = lint_source(&ctx, "t.rs", src);
        let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"allow-syntax"), "{diags:?}");
        assert!(rules.contains(&"wall-clock"), "{diags:?}");
    }
}
