//! The determinism/soundness rules. Each rule walks the preprocessed
//! [`SourceFile`](crate::source::SourceFile) and emits diagnostics; the
//! driver filters those covered by a reasoned `lint:allow` directive.

use crate::source::{SourceFile, TokKind, Token};
use crate::{Diagnostic, FileContext};

/// Crates whose certified outputs must be bit-reproducible. Iteration order
/// and float comparison discipline are enforced here, not workspace-wide.
pub const DET_CRATES: [&str; 2] = ["milp", "core"];

/// All rule identifiers, for validating `lint:allow(<rule>)` directives.
pub const RULES: [&str; 8] = [
    "hash-iter",
    "float-cmp",
    "wall-clock",
    "platform-fp",
    "forbid-unsafe",
    "snap-audit",
    "cert-audit",
    "allow-syntax",
];

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods that expose hash-map iteration order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Float intrinsics whose results may differ across platforms/libm versions
/// (fused ops and transcendentals). `sqrt`, `powi`, `abs`, comparisons, and
/// arithmetic are IEEE-754-exact and stay allowed.
const PLATFORM_FP: [&str; 22] = [
    "mul_add",
    "to_degrees",
    "to_radians",
    "sin",
    "cos",
    "tan",
    "asin",
    "acos",
    "atan",
    "atan2",
    "sinh",
    "cosh",
    "tanh",
    "exp",
    "exp2",
    "exp_m1",
    "ln",
    "ln_1p",
    "log",
    "log2",
    "log10",
    "powf",
];

pub fn run_all(ctx: &FileContext, path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let det = DET_CRATES.contains(&ctx.crate_name.as_str());
    check_allow_syntax(path, file, out);
    if det && !ctx.is_test_file {
        check_hash_iter(path, file, out);
        check_float_cmp(path, file, out);
    }
    check_wall_clock(ctx, path, file, out);
    if ctx.crate_name == "milp" && !ctx.is_test_file {
        check_platform_fp(path, file, out);
    }
    if ctx.is_crate_root {
        check_forbid_unsafe(path, file, out);
    }
    if ctx.crate_name == "core" && ctx.file_name == "query.rs" && !ctx.is_test_file {
        check_snap_audit(path, file, out);
        check_cert_audit(path, file, out);
    }
}

fn diag(path: &str, line: usize, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        path: path.to_string(),
        line,
        rule,
        message,
    }
}

/// `allow-syntax`: a bare `lint:allow(rule)` without a reason, or an allow
/// naming an unknown rule, is itself a violation — the escape hatch must
/// leave an audit trail.
fn check_allow_syntax(path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for a in &file.allows {
        if !RULES.contains(&a.rule.as_str()) {
            out.push(diag(
                path,
                a.line,
                "allow-syntax",
                format!("lint:allow names unknown rule `{}`", a.rule),
            ));
        } else if !a.has_reason {
            out.push(diag(
                path,
                a.line,
                "allow-syntax",
                format!(
                    "lint:allow({}) has no reason; write `lint:allow({}): <why>`",
                    a.rule, a.rule
                ),
            ));
        }
    }
}

/// `hash-iter`: iterating a HashMap/HashSet (or collecting into one and then
/// exposing it) in a deterministic crate. Order-insensitive use
/// (`contains`, `insert`, `get`, `remove`) is fine.
fn check_hash_iter(path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let mut hash_idents: Vec<String> = Vec::new();

    let is_hash_type =
        |t: &Token| t.kind == TokKind::Ident && HASH_TYPES.contains(&t.text.as_str());
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str()).unwrap_or("");

    // Pass 1: collect identifiers declared with a hash type:
    //   `name : [& mut] HashSet <`   (bindings, fields, params)
    //   `let [mut] name = HashSet :: new (` / `with_capacity (`
    for i in 0..toks.len() {
        if is_hash_type(&toks[i]) {
            // Walk back over `: & mut` to the declared name.
            let mut j = i;
            while j > 0 && matches!(text(j - 1), "&" | "mut") {
                j -= 1;
            }
            if j > 1 && text(j - 1) == ":" && toks[j - 2].kind == TokKind::Ident {
                hash_idents.push(toks[j - 2].text.clone());
            }
            if i + 2 < toks.len()
                && text(i + 1) == "::"
                && matches!(text(i + 2), "new" | "with_capacity" | "default" | "from")
            {
                let mut j = i;
                if text(j.wrapping_sub(1)) == "=" {
                    j -= 1;
                    if toks
                        .get(j.wrapping_sub(1))
                        .is_some_and(|t| t.kind == TokKind::Ident)
                    {
                        let name = j - 1;
                        if text(name.wrapping_sub(1)) == "mut"
                            || text(name.wrapping_sub(1)) == "let"
                            || text(name.wrapping_sub(2)) == "let"
                        {
                            hash_idents.push(toks[name].text.clone());
                        }
                    }
                }
            }
        }
    }
    hash_idents.sort_unstable();
    hash_idents.dedup();
    // `use std::collections::HashMap;` declares nothing iterable.
    hash_idents.retain(|n| !HASH_TYPES.contains(&n.as_str()));

    let mut fire = |line: usize, what: &str| {
        if !file.in_test_region(line) {
            out.push(diag(
                path,
                line,
                "hash-iter",
                format!(
                    "{what} — hash iteration order is nondeterministic; use a sorted Vec, \
                     BTreeMap/BTreeSet, or sort before iterating"
                ),
            ));
        }
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        // (a) `for pat in <expr>` where the expression mentions a hash ident
        //     or hash type before the block opens.
        if t.kind == TokKind::Ident && t.text == "for" && text(i + 1) != "<" {
            let mut j = i + 1;
            let mut depth = 0usize;
            while let Some(tok) = toks.get(j) {
                match tok.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => break,
                    "in" if depth == 0 && tok.kind == TokKind::Ident => {
                        // Scan the iterated expression up to `{`.
                        let mut k = j + 1;
                        let mut d2 = 0usize;
                        while let Some(e) = toks.get(k) {
                            match e.text.as_str() {
                                "(" | "[" => d2 += 1,
                                ")" | "]" => d2 = d2.saturating_sub(1),
                                "{" if d2 == 0 => break,
                                _ => {}
                            }
                            if e.kind == TokKind::Ident
                                && (hash_idents.contains(&e.text)
                                    || HASH_TYPES.contains(&e.text.as_str()))
                            {
                                fire(e.line, &format!("`for` loop over `{}`", e.text));
                                break;
                            }
                            k += 1;
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // (b) tracked_ident . iter() / keys() / ...
        if t.kind == TokKind::Ident
            && hash_idents.contains(&t.text)
            && text(i + 1) == "."
            && toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
            && text(i + 3) == "("
        {
            fire(
                t.line,
                &format!("`{}.{}()` iterates a hash collection", t.text, text(i + 2)),
            );
        }
        // (c) collect :: < HashSet / HashMap
        if t.kind == TokKind::Ident
            && t.text == "collect"
            && text(i + 1) == "::"
            && text(i + 2) == "<"
            && toks.get(i + 3).is_some_and(is_hash_type)
        {
            fire(t.line, &format!("`collect::<{}<..>>()`", text(i + 3)));
        }
        // (d) `let name : HashSet < .. > = .. collect ( )` — typed binding
        //     collected into; flag at the collect site.
        if t.kind == TokKind::Ident && t.text == "let" {
            if let Some(colon) = (i + 1..(i + 4).min(toks.len())).find(|&k| text(k) == ":") {
                if toks.get(colon + 1).is_some_and(is_hash_type) {
                    let mut k = colon + 1;
                    while k < toks.len() && text(k) != ";" && text(k) != "{" {
                        if toks[k].kind == TokKind::Ident && toks[k].text == "collect" {
                            fire(toks[k].line, "`.collect()` into a hash-typed binding");
                            break;
                        }
                        k += 1;
                    }
                }
            }
        }
        // (e) `-> HashSet<..>` return type: the caller inherits an iterable
        //     nondeterministic collection.
        if t.kind == TokKind::Punct && t.text == "->" {
            let mut k = i + 1;
            while k < toks.len() && !matches!(text(k), "{" | ";" | "where") {
                if toks.get(k).is_some_and(is_hash_type) {
                    fire(toks[k].line, &format!("function returns `{}<..>`", text(k)));
                    break;
                }
                k += 1;
            }
        }
    }
}

/// `float-cmp`: `partial_cmp` in sort/selection positions (NaN silently
/// collapses the order — use `total_cmp`), and `==`/`!=` against nonzero
/// float literals (computed floats differ in the last ulp across paths;
/// exact-zero tests are deterministic sparsity checks and stay allowed).
fn check_float_cmp(path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if file.in_test_region(t.line) {
            continue;
        }
        if t.kind == TokKind::Ident && t.text == "partial_cmp" {
            out.push(diag(
                path,
                t.line,
                "float-cmp",
                "`partial_cmp` can return None on NaN and silently reorder; use `total_cmp`"
                    .to_string(),
            ));
        }
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            for side in [i.wrapping_sub(1), i + 1, i + 2] {
                let Some(n) = toks.get(side) else { continue };
                if n.kind != TokKind::Num {
                    continue;
                }
                // Only float literals; `- 1.0` puts the literal at i+2.
                if side == i + 2 && toks.get(i + 1).map(|s| s.text.as_str()) != Some("-") {
                    continue;
                }
                if is_nonzero_float_literal(&n.text) {
                    out.push(diag(
                        path,
                        t.line,
                        "float-cmp",
                        format!(
                            "`{} {}` compares a computed float for exact equality; \
                             compare against a tolerance or snap first",
                            t.text, n.text
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

fn is_nonzero_float_literal(text: &str) -> bool {
    let t = text
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_');
    let is_float = t.contains('.')
        || t.contains('e')
        || t.contains('E')
        || text.ends_with("f64")
        || text.ends_with("f32");
    if !is_float {
        return false;
    }
    t.parse::<f64>().is_ok_and(|v| v != 0.0)
}

/// `wall-clock`: `Instant::now`, `SystemTime`, `.elapsed()`. In `milp` this
/// fires everywhere (tests included — the solver must be a pure function of
/// its inputs plus the caller's stop signal); in `core` it fires outside
/// tests and is suppressed only by a reasoned `lint:allow(wall-clock)` at
/// the audited deadline/telemetry sites.
fn check_wall_clock(ctx: &FileContext, path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let scope_all = ctx.crate_name == "milp";
    let scope_nontest = ctx.crate_name == "core";
    if !scope_all && !scope_nontest {
        return;
    }
    let toks = &file.tokens;
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str()).unwrap_or("");
    for (i, t) in toks.iter().enumerate() {
        if !scope_all && (file.in_test_region(t.line) || ctx.is_test_file) {
            continue;
        }
        // An import is not a clock read; only uses of the type are.
        let on_use_line = file
            .stripped
            .get(t.line.saturating_sub(1))
            .is_some_and(|l| l.trim_start().starts_with("use "));
        let hit = if t.kind == TokKind::Ident && t.text == "Instant" {
            (text(i + 1) == "::" && text(i + 2) == "now").then(|| "`Instant::now()`".to_string())
        } else if t.kind == TokKind::Ident && t.text == "SystemTime" && !on_use_line {
            Some("`SystemTime`".to_string())
        } else if t.kind == TokKind::Punct
            && t.text == "."
            && text(i + 1) == "elapsed"
            && text(i + 2) == "("
        {
            Some("`.elapsed()`".to_string())
        } else {
            None
        };
        if let Some(what) = hit {
            let advice = if scope_all {
                "the solver must never read the clock; accept a `StopWhen` from the caller"
            } else {
                "route wall-clock reads through `itne_core::deadline` and annotate the site"
            };
            out.push(diag(
                path,
                t.line,
                "wall-clock",
                format!("{what} — {advice}"),
            ));
        }
    }
}

/// `platform-fp`: fused/transcendental float intrinsics in the LP kernel.
fn check_platform_fp(path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str()).unwrap_or("");
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Punct
            && t.text == "."
            && toks
                .get(i + 1)
                .is_some_and(|m| m.kind == TokKind::Ident && PLATFORM_FP.contains(&m.text.as_str()))
            && text(i + 2) == "("
        {
            out.push(diag(
                path,
                toks[i + 1].line,
                "platform-fp",
                format!(
                    "`.{}()` may round differently across platforms/libm versions; \
                     the LP kernel must use only IEEE-exact operations",
                    text(i + 1)
                ),
            ));
        }
    }
}

/// `forbid-unsafe`: every crate root must carry `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let found = (0..toks.len()).any(|i| {
        text(i) == "#"
            && text(i + 1) == "!"
            && text(i + 2) == "["
            && text(i + 3) == "forbid"
            && text(i + 4) == "("
            && (i + 5..i + 12).any(|k| text(k) == "unsafe_code")
    });
    if !found {
        out.push(diag(
            path,
            1,
            "forbid-unsafe",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

/// `snap-audit`: `query.rs` must define `snap_outward`, and every
/// non-test use of `SOUND_SLACK` (slack applied to a reported bound) must
/// pass through `snap_outward` on the same line — slack without outward
/// snapping silently reintroduces cross-path bit drift.
fn check_snap_audit(path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let has_fn = (0..toks.len()).any(|i| text(i) == "fn" && text(i + 1) == "snap_outward");
    if !has_fn {
        out.push(diag(
            path,
            1,
            "snap-audit",
            "query.rs must define `snap_outward` — reported bounds are snapped \
             outward onto the dyadic grid for bit-reproducibility"
                .to_string(),
        ));
        return;
    }
    for (idx, line) in file.stripped.iter().enumerate() {
        let lineno = idx + 1;
        if file.in_test_region(lineno) {
            continue;
        }
        if !line.contains("SOUND_SLACK") {
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("const") || trimmed.starts_with("pub const") {
            continue;
        }
        if !line.contains("snap_outward") {
            out.push(diag(
                path,
                lineno,
                "snap-audit",
                "`SOUND_SLACK` applied without `snap_outward` on the same expression; \
                 unsnapped slack reintroduces cross-path bit drift"
                    .to_string(),
            ));
        }
    }
}

/// `cert-audit`: `query.rs` must define `certified_bound` — the single gate
/// that turns a raw `Solution.objective` into a reported bound (outward pad,
/// dyadic snap, exact-rational certificate check) — and no non-test line may
/// read the `.objective` field outside that gate. Accessors like
/// `.objective_terms()` describe the *model* and are exempt; only the exact
/// field access on a solution is audited.
fn check_cert_audit(path: &str, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    let text = |i: usize| toks.get(i).map(|t| t.text.as_str()).unwrap_or("");
    let has_fn = (0..toks.len()).any(|i| text(i) == "fn" && text(i + 1) == "certified_bound");
    if !has_fn {
        out.push(diag(
            path,
            1,
            "cert-audit",
            "query.rs must define `certified_bound` — the audited gate that pads, \
             snaps, and certificate-checks every solver objective before it is \
             reported"
                .to_string(),
        ));
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct || t.text != "." || text(i + 1) != "objective" {
            continue;
        }
        let next = toks.get(i + 1).expect("matched above");
        if file.in_test_region(next.line) {
            continue;
        }
        let line = file
            .stripped
            .get(next.line.saturating_sub(1))
            .map(|l| l.as_str())
            .unwrap_or("");
        if !line.contains("certified_bound") && !line.contains("snap_outward") {
            out.push(diag(
                path,
                next.line,
                "cert-audit",
                "`Solution.objective` read outside the `certified_bound` gate; raw \
                 objectives must be padded, snapped, and certificate-checked before \
                 becoming reported bounds"
                    .to_string(),
            ));
        }
    }
}
