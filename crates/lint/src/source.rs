//! Source preprocessing: comment/string stripping, a line-faithful token
//! stream, `#[cfg(test)]` region detection, and `lint:allow` directive
//! parsing.
//!
//! The rules operate on *stripped* source — string literals and comments are
//! blanked out (newlines preserved) — so a banned identifier mentioned in a
//! doc comment or inside a diagnostic message never fires. Allow directives
//! are parsed from genuine `//` line comments (the stripper records where
//! each begins) and must *start* the comment — a mid-sentence mention in a
//! doc comment, or the pattern inside a string literal, is not a directive.

/// One lexical token of the stripped source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: usize,
    pub kind: TokKind,
    pub text: String,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Num,
    Punct,
}

/// A parsed `// lint:allow(<rule>): <reason>` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 1-based line the directive appears on. It suppresses matching
    /// diagnostics on this line and the next.
    pub line: usize,
    pub rule: String,
    pub has_reason: bool,
}

/// A preprocessed source file ready for rule checks.
pub struct SourceFile {
    /// Code-only lines (strings and comments blanked).
    pub stripped: Vec<String>,
    /// Token stream over the stripped source.
    pub tokens: Vec<Token>,
    /// Per-line flag (index 0 = line 1): inside a `#[cfg(test)]` region.
    pub test_lines: Vec<bool>,
    /// All allow directives, in source order.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    pub fn parse(source: &str) -> SourceFile {
        let (stripped_text, comments) = strip(source);
        let stripped: Vec<String> = stripped_text.lines().map(str::to_owned).collect();
        let tokens = tokenize(&stripped);
        let test_lines = test_regions(&tokens, stripped.len());
        let allows = parse_allows(&comments);
        SourceFile {
            stripped,
            tokens,
            test_lines,
            allows,
        }
    }

    /// Whether 1-based `line` lies inside a `#[cfg(test)]` region.
    pub fn in_test_region(&self, line: usize) -> bool {
        self.test_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Whether an allow directive for `rule` (with a reason) covers `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.has_reason && a.rule == rule && (a.line == line || a.line + 1 == line))
    }
}

/// Blanks comments, string/char literals, and raw strings; preserves line
/// structure. Rust block comments nest; lifetimes (`'a`) are distinguished
/// from char literals by lookahead. Also returns every `//` line comment as
/// `(line, text-after-the-slashes)` so directives can be parsed from real
/// comments only.
fn strip(source: &str) -> (String, Vec<(usize, String)>) {
    #[derive(PartialEq)]
    enum State {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut state = State::Code;
    let mut i = 0;
    let mut line_no = 1usize;
    let mut prev_code: char = ' ';
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line_no += 1;
        }
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::Line;
                    comments.push((line_no, String::new()));
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                }
                '/' if next == Some('*') => {
                    state = State::Block(1);
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' | 'b' if !prev_code.is_alphanumeric() && prev_code != '_' => {
                    // r"..", r#".."#, b"..", br#".."# — find the quote run.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j;
                        state = State::RawStr(hashes);
                    } else {
                        out.push(c);
                        prev_code = c;
                    }
                }
                '\'' => {
                    // Char literal iff it closes shortly or starts an escape;
                    // otherwise it is a lifetime.
                    let is_char = next == Some('\\')
                        || (chars.get(i + 2) == Some(&'\'') && next != Some('\''));
                    if is_char {
                        state = State::Char;
                    }
                    out.push(' ');
                }
                _ => {
                    out.push(c);
                    if !c.is_whitespace() {
                        prev_code = c;
                    }
                }
            },
            State::Line => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    if let Some((_, text)) = comments.last_mut() {
                        text.push(c);
                    }
                    out.push(' ');
                }
            }
            State::Block(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '*' && next == Some('/') {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                } else if c == '/' && next == Some('*') {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                    state = State::Block(depth + 1);
                } else {
                    out.push(' ');
                }
            }
            State::Str => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '\\' {
                    out.push(' ');
                    if next.is_some() && next != Some('\n') {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(' ');
                    if c == '"' {
                        state = State::Code;
                    }
                }
            }
            State::RawStr(hashes) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '"' && (i + 1..=i + hashes).all(|k| chars.get(k) == Some(&'#')) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += hashes;
                    state = State::Code;
                } else {
                    out.push(' ');
                }
            }
            State::Char => {
                if c == '\\' {
                    out.push(' ');
                    if next.is_some() && next != Some('\n') {
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    if c == '\'' {
                        state = State::Code;
                    }
                }
            }
        }
        i += 1;
    }
    (out, comments)
}

/// Multi-char punctuation joined into one token (only the pairs rules need).
const JOINED: [&str; 7] = ["::", "->", "=>", "==", "!=", "<=", ">="];

fn tokenize(stripped: &[String]) -> Vec<Token> {
    let mut tokens = Vec::new();
    for (idx, line) in stripped.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    line: idx + 1,
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                });
            } else if c.is_ascii_digit() {
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_alphanumeric() || d == '_' {
                        // Exponent sign: 1e-3, 2.5E+7.
                        if (d == 'e' || d == 'E')
                            && matches!(chars.get(i + 1), Some('+') | Some('-'))
                            && chars.get(i + 2).is_some_and(char::is_ascii_digit)
                        {
                            i += 2;
                        }
                        i += 1;
                    } else if d == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                        i += 1; // fractional part, not a range or tuple access
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    line: idx + 1,
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                });
            } else {
                let pair: String = chars[i..(i + 2).min(chars.len())].iter().collect();
                if JOINED.contains(&pair.as_str()) {
                    tokens.push(Token {
                        line: idx + 1,
                        kind: TokKind::Punct,
                        text: pair,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        line: idx + 1,
                        kind: TokKind::Punct,
                        text: c.to_string(),
                    });
                    i += 1;
                }
            }
        }
    }
    tokens
}

/// Marks the lines belonging to `#[cfg(test)]` items (normally the trailing
/// `mod tests { .. }` block).
fn test_regions(tokens: &[Token], n_lines: usize) -> Vec<bool> {
    let mut test = vec![false; n_lines];
    let is = |t: Option<&Token>, kind: TokKind, text: &str| {
        t.is_some_and(|t| t.kind == kind && t.text == text)
    };
    let mut i = 0;
    while i < tokens.len() {
        let attr = is(tokens.get(i), TokKind::Punct, "#")
            && is(tokens.get(i + 1), TokKind::Punct, "[")
            && is(tokens.get(i + 2), TokKind::Ident, "cfg")
            && is(tokens.get(i + 3), TokKind::Punct, "(")
            && is(tokens.get(i + 4), TokKind::Ident, "test")
            && is(tokens.get(i + 5), TokKind::Punct, ")")
            && is(tokens.get(i + 6), TokKind::Punct, "]");
        if !attr {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 7;
        let mut end_line = start_line;
        // The guarded item: brace-delimited (mod/fn) or `;`-terminated (use).
        while let Some(t) = tokens.get(j) {
            if t.kind == TokKind::Punct && t.text == ";" {
                end_line = t.line;
                break;
            }
            if t.kind == TokKind::Punct && t.text == "{" {
                let mut depth = 1;
                while depth > 0 {
                    j += 1;
                    match tokens.get(j) {
                        Some(t) if t.kind == TokKind::Punct && t.text == "{" => depth += 1,
                        Some(t) if t.kind == TokKind::Punct && t.text == "}" => {
                            depth -= 1;
                            end_line = t.line;
                        }
                        Some(_) => {}
                        None => depth = 0,
                    }
                }
                break;
            }
            j += 1;
        }
        for l in start_line..=end_line.min(n_lines) {
            test[l - 1] = true;
        }
        i = j.max(i + 7);
    }
    test
}

/// A directive must *begin* the comment (after doc markers `/`/`!`), so a
/// prose mention like "use `lint:allow(rule)`" in documentation never parses
/// as one.
fn parse_allows(comments: &[(usize, String)]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, text) in comments {
        let body = text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let has_reason = rest[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        allows.push(Allow {
            line: *line,
            rule,
            has_reason,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"HashSet\"; // HashSet\n/* HashSet */ let b = 1;";
        let f = SourceFile::parse(src);
        assert!(
            !f.stripped.iter().any(|l| l.contains("HashSet")),
            "{:?}",
            f.stripped
        );
        assert!(f.tokens.iter().any(|t| t.text == "b"));
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> bool { x == r#\"Instant::now\"# }";
        let f = SourceFile::parse(src);
        assert!(!f.stripped[0].contains("Instant"));
        assert!(f.tokens.iter().any(|t| t.text == "a")); // lifetime ident kept
    }

    #[test]
    fn float_literal_lexing() {
        let f = SourceFile::parse("x == 2.5e-3; y == 1..3; z.0.cmp(&w.0)");
        let nums: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["2.5e-3", "1", "3", "0", "0"]);
    }

    #[test]
    fn cfg_test_region_detection() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}";
        let f = SourceFile::parse(src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(4));
        assert!(f.in_test_region(5));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn allow_directives_parse() {
        let src =
            "// lint:allow(wall-clock): telemetry only\nlet t = 1;\n// lint:allow(hash-iter)\n";
        let f = SourceFile::parse(src);
        assert!(f.allowed("wall-clock", 1));
        assert!(f.allowed("wall-clock", 2));
        assert!(!f.allowed("wall-clock", 3));
        assert!(!f.allowed("hash-iter", 3), "bare allow must not suppress");
    }
}
