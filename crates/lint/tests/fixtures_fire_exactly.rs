//! Fixture harness: every file under `tests/fixtures/` declares its own
//! context on line 1 (`//@ crate=milp file=kernel.rs [test=true] [root=true]`)
//! and marks each line expected to fire with a trailing `//~ rule-id`
//! comment (several ids may follow one marker). The harness asserts the
//! emitted (line, rule) multiset matches the markers *exactly* — a rule
//! firing anywhere unmarked, or failing to fire where marked, fails.

#![forbid(unsafe_code)]

use itne_lint::{lint_source, FileContext};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

fn parse_header(line: &str, fixture: &str) -> FileContext {
    let header = line
        .strip_prefix("//@")
        .unwrap_or_else(|| panic!("{fixture}: line 1 must start with `//@`"));
    let header = header.split("//~").next().unwrap_or(header);
    let mut ctx = FileContext {
        crate_name: String::new(),
        file_name: String::new(),
        is_test_file: false,
        is_crate_root: false,
    };
    for kv in header.split_whitespace() {
        let (k, v) = kv
            .split_once('=')
            .unwrap_or_else(|| panic!("{fixture}: bad header entry `{kv}`"));
        match k {
            "crate" => ctx.crate_name = v.to_string(),
            "file" => ctx.file_name = v.to_string(),
            "test" => ctx.is_test_file = v == "true",
            "root" => ctx.is_crate_root = v == "true",
            _ => panic!("{fixture}: unknown header key `{k}`"),
        }
    }
    assert!(
        !ctx.crate_name.is_empty() && !ctx.file_name.is_empty(),
        "{fixture}: header must set crate= and file="
    );
    ctx
}

/// (line, rule) → count, so double-fires are caught too.
fn expected_markers(source: &str) -> BTreeMap<(usize, String), usize> {
    let mut out = BTreeMap::new();
    for (idx, line) in source.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        for rule in line[pos + 3..].split_whitespace() {
            *out.entry((idx + 1, rule.to_string())).or_insert(0) += 1;
        }
    }
    out
}

#[test]
fn fixtures_fire_exactly_where_marked() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    names.sort();
    assert!(names.len() >= 10, "fixture corpus went missing: {names:?}");

    let mut failures = Vec::new();
    for path in &names {
        let fixture = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        let source = fs::read_to_string(path).expect("readable fixture");
        let header = source.lines().next().unwrap_or_default();
        let ctx = parse_header(header, &fixture);

        let expected = expected_markers(&source);
        let mut actual: BTreeMap<(usize, String), usize> = BTreeMap::new();
        for d in lint_source(&ctx, &fixture, &source) {
            *actual.entry((d.line, d.rule.to_string())).or_insert(0) += 1;
        }

        for (key, n) in &expected {
            if actual.get(key).copied().unwrap_or(0) != *n {
                failures.push(format!(
                    "{fixture}:{}: expected [{}] ×{n}, got ×{}",
                    key.0,
                    key.1,
                    actual.get(key).copied().unwrap_or(0)
                ));
            }
        }
        for (key, n) in &actual {
            if !expected.contains_key(key) {
                failures.push(format!("{fixture}:{}: UNEXPECTED [{}] ×{n}", key.0, key.1));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "fixture mismatches:\n  {}",
        failures.join("\n  ")
    );
}

#[test]
fn clean_fixture_is_actually_exercised() {
    // Guard against the corpus silently degenerating: at least one fixture
    // must expect zero diagnostics and at least one must expect several.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut zero = 0;
    let mut multi = 0;
    for entry in fs::read_dir(&dir).expect("fixtures directory exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let source = fs::read_to_string(&path).expect("readable fixture");
        let n: usize = expected_markers(&source).values().sum();
        if n == 0 {
            zero += 1;
        } else if n >= 3 {
            multi += 1;
        }
    }
    assert!(zero >= 2, "want known-clean fixtures");
    assert!(multi >= 3, "want fixtures with several expected violations");
}
