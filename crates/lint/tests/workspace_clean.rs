//! The workspace itself must be lint-clean — this makes determinism
//! hygiene part of tier-1 `cargo test`, not just a CI side job.

#![forbid(unsafe_code)]

use std::path::PathBuf;

#[test]
fn workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let diags = itne_lint::lint_paths(&[root.join("crates"), root.join("src")])
        .expect("workspace sources readable");
    assert!(
        diags.is_empty(),
        "determinism lint violations in the workspace:\n  {}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}
