//@ crate=attack file=lib.rs root=true
#![forbid(unsafe_code)]

pub fn f() -> usize {
    1
}
