//@ crate=core file=misc.rs
// lint:allow(made-up-rule): not a rule this linter knows //~ allow-syntax
fn a() -> usize {
    1
}

// lint:allow(float-cmp) //~ allow-syntax
fn b(x: f64) -> bool {
    x == 0.25 //~ float-cmp
}
