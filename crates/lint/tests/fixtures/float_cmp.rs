//@ crate=core file=ordering.rs
fn pick(xs: &mut Vec<(usize, f64)>) {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap()); //~ float-cmp
    xs.sort_by(|a, b| a.1.total_cmp(&b.1));
}

fn classify(x: f64) -> bool {
    if x == 0.0 {
        return true; // exact-zero sparsity checks are deterministic
    }
    if x != -0.0 {
        return false;
    }
    x == 0.5 //~ float-cmp
}

fn negated(x: f64) -> bool {
    x == -1.5 //~ float-cmp
}

fn integers(n: usize) -> bool {
    n == 3 // integer equality is fine
}

#[cfg(test)]
mod tests {
    #[test]
    fn golden() {
        assert!(super::classify(0.5) == false);
        let eps = 0.125;
        assert!(eps == 0.125); // tests may bit-lock exact values
    }
}
