//@ crate=core file=query.rs //~ snap-audit cert-audit
const SOUND_SLACK: f64 = 1e-7;

fn report(v: f64) -> f64 {
    v + SOUND_SLACK
}
