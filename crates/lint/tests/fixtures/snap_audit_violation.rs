//@ crate=core file=query.rs
const SOUND_SLACK: f64 = 1e-7;

pub fn snap_outward(v: f64, upper: bool) -> f64 {
    if upper {
        v
    } else {
        -v
    }
}

fn unsnapped(v: f64) -> f64 {
    v + SOUND_SLACK //~ snap-audit
}

fn snapped(v: f64) -> f64 {
    snap_outward(v + SOUND_SLACK, true)
}

fn certified_bound(v: f64) -> f64 {
    snap_outward(v, true)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_build_raw_slack() {
        let _ = 1.0 + super::SOUND_SLACK;
    }
}
