//@ crate=core file=timing.rs
use std::time::{Instant, SystemTime};

fn unannotated() {
    let t0 = Instant::now(); //~ wall-clock
    let _ = t0;
}

fn system_clock() {
    let _ = SystemTime::now(); //~ wall-clock
}

fn annotated() {
    // lint:allow(wall-clock): deadline anchor — converted to a StopWhen at once
    let t0 = Instant::now();
    let _ = t0;
}

fn trailing_annotation() {
    let t0 = Instant::now(); // lint:allow(wall-clock): telemetry only
    let _ = t0;
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_things() {
        let _ = Instant::now();
    }
}
