//@ crate=core file=query.rs
const SOUND_SLACK: f64 = 1e-7;

pub struct Solution {
    pub objective: f64,
}

pub fn snap_outward(v: f64, upper: bool, grid: bool) -> f64 {
    let _ = grid;
    if upper {
        v
    } else {
        -v
    }
}

fn certified_bound(sol: &Solution, upper: bool) -> f64 {
    snap_outward(sol.objective + SOUND_SLACK, upper, true)
}

fn leaked_raw_bound(sol: &Solution) -> f64 {
    sol.objective //~ cert-audit
}

fn model_accessors_are_exempt(model: &Model) -> usize {
    model.objective_terms().len() + model.objective_constant() as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_raw_objectives() {
        let sol = super::Solution { objective: 1.0 };
        let _ = sol.objective;
    }
}
