//@ crate=milp file=kernel.rs
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc = a[i].mul_add(b[i], acc); //~ platform-fp
    }
    acc
}

fn scale(x: f64) -> f64 {
    x.exp() //~ platform-fp
}

fn angle(x: f64) -> f64 {
    x.to_degrees() //~ platform-fp
}

fn exact_ops(x: f64) -> f64 {
    // sqrt, powi, abs, and plain arithmetic are IEEE-754-exact
    x.sqrt() + x.powi(2) + x.abs() - x / 2.0
}
