//@ crate=milp file=clean.rs
//! A deterministic-crate file that exercises near-miss patterns without
//! violating any rule: the linter must stay quiet here.
use std::collections::{BTreeMap, HashSet};

fn membership(set: &mut HashSet<usize>, tree: &BTreeMap<usize, f64>) -> f64 {
    set.insert(3);
    let mut total = 0.0;
    for (_, v) in tree.iter() {
        total += v;
    }
    if total == 0.0 {
        return 0.0;
    }
    total
}

fn order(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

fn exact_zero_sparsity(col: &[f64]) -> usize {
    // "Instant::now() in a string is not a clock read, HashMap in a doc
    // comment is not an iteration" — stripped before rules run.
    let msg = "Instant::now() HashMap.iter() x.mul_add partial_cmp";
    drop(msg);
    col.iter().filter(|&&v| v != 0.0).count()
}
