//@ crate=attack file=lib.rs root=true //~ forbid-unsafe
pub fn f() -> usize {
    1
}
