//@ crate=milp file=basis.rs
use std::collections::{HashMap, HashSet};

struct Basis {
    live: HashSet<usize>,
}

fn lookups(set: &HashSet<(usize, usize)>) -> bool {
    set.contains(&(0, 1)) && !set.is_empty()
}

fn mutate(set: &mut HashSet<usize>) {
    set.insert(3);
    set.remove(&4);
}

fn sum(map: &HashMap<usize, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in map.iter() { //~ hash-iter
        total += v;
    }
    total
}

fn loop_direct(set: &HashSet<usize>) {
    for x in set { //~ hash-iter
        drop(x);
    }
}

fn gather(xs: &[usize]) {
    let picked = xs.iter().copied().collect::<HashSet<usize>>(); //~ hash-iter
    drop(picked);
}

fn typed_binding(xs: &[usize]) {
    let picked: HashSet<usize> = xs.iter().copied().collect(); //~ hash-iter
    drop(picked);
}

fn leak(xs: &[usize]) -> HashSet<usize> { //~ hash-iter
    let mut out = HashSet::new();
    for &x in xs {
        out.insert(x);
    }
    out
}
