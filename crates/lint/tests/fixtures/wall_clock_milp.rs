//@ crate=milp file=solver.rs
use std::time::Instant;

fn solve() {
    let t0 = Instant::now(); //~ wall-clock
    let _ = t0.elapsed(); //~ wall-clock
}

fn sneaky() {
    // lint:allow(wall-clock): the solver is special, honest
    let t1 = Instant::now(); //~ wall-clock
    let _ = t1;
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn even_tests_may_not() {
        let _ = Instant::now(); //~ wall-clock
    }
}
