//! Model (de)serialization as JSON, so benchmark binaries can reuse trained
//! networks deterministically without retraining.

use crate::error::NnError;
use crate::network::Network;
use std::fs;
use std::path::Path;

impl Network {
    /// Serializes the network to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("network serialization cannot fail")
    }

    /// Parses a network from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Parse`] on malformed input.
    pub fn from_json(s: &str) -> Result<Self, NnError> {
        serde_json::from_str(s).map_err(|e| NnError::Parse(e.to_string()))
    }

    /// Saves the network to a file as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Parse`] wrapping any I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), NnError> {
        fs::write(path, self.to_json()).map_err(|e| NnError::Parse(e.to_string()))
    }

    /// Loads a network previously written by [`Network::save`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Parse`] on I/O or parse failure.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, NnError> {
        let s = fs::read_to_string(path).map_err(|e| NnError::Parse(e.to_string()))?;
        Self::from_json(&s)
    }
}

#[cfg(test)]
mod tests {
    use crate::network::NetworkBuilder;
    use crate::Network;

    #[test]
    fn json_round_trip_preserves_network() {
        let net = NetworkBuilder::input(2)
            .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.25, -0.75], true)
            .unwrap()
            .dense(&[&[1.0, -1.0]], &[0.0], false)
            .unwrap()
            .build();
        let back = Network::from_json(&net.to_json()).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        assert!(Network::from_json("{not json").is_err());
    }
}
