//! The lowered sparse-affine view of a network, and backward-cone extraction.
//!
//! Every certification encoding in `itne-core` works neuron-by-neuron on the
//! relation `y⁽ⁱ⁾_j = Σ w·x⁽ⁱ⁻¹⁾ + b`, so networks are lowered once into a
//! stack of [`AffineLayer`]s whose rows are sparse in the previous layer's
//! outputs. Dense layers lower to dense rows; convolutions and average
//! pooling lower to *local* rows (a few dozen terms), which is what makes the
//! paper's network decomposition effective on conv nets: the backward
//! dependency cone of one neuron over a w-layer window stays small.

use crate::error::NnError;
use crate::layer::Layer;
use crate::network::Network;
use serde::{Deserialize, Serialize};

/// One neuron's affine dependence on the previous layer:
/// `y = Σ (coef · x_prev[idx]) + bias`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseRow {
    /// `(previous-layer index, coefficient)` pairs, sorted by index.
    pub terms: Vec<(usize, f64)>,
    /// Additive bias.
    pub bias: f64,
}

impl SparseRow {
    /// Evaluates the row on the previous layer's output.
    pub fn eval(&self, prev: &[f64]) -> f64 {
        let mut acc = self.bias;
        for &(i, c) in &self.terms {
            acc += c * prev[i];
        }
        acc
    }

    /// Sum of absolute coefficients (the row's L1 gain, used for distance
    /// interval propagation).
    pub fn abs_gain(&self) -> f64 {
        self.terms.iter().map(|&(_, c)| c.abs()).sum()
    }
}

/// An affine layer: `width` rows over the previous layer, with an optional
/// ReLU applied to every row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AffineLayer {
    /// One row per neuron.
    pub rows: Vec<SparseRow>,
    /// Whether a ReLU follows the affine map.
    pub relu: bool,
}

impl AffineLayer {
    /// Number of neurons.
    pub fn width(&self) -> usize {
        self.rows.len()
    }
}

/// A network lowered to affine layers (flattens removed, pooling made
/// explicit). Layer `0` consumes the network input.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AffineNetwork {
    /// Flat input dimension `m₀`.
    pub input_dim: usize,
    /// The affine layers in order.
    pub layers: Vec<AffineLayer>,
}

impl AffineNetwork {
    /// Lowers a [`Network`]. Fails only on malformed networks (which the
    /// builder prevents), so most callers can unwrap.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if layer shapes do not chain.
    pub fn from_network(net: &Network) -> Result<Self, NnError> {
        let shapes = net.shapes();
        let mut layers = Vec::new();
        for (li, layer) in net.layers().iter().enumerate() {
            let in_shape = &shapes[li];
            match layer {
                Layer::Flatten => continue, // identity on flat data
                Layer::Dense(d) => {
                    if in_shape.len() != d.in_dim {
                        return Err(NnError::ShapeMismatch(format!(
                            "dense layer {li} expects {} inputs",
                            d.in_dim
                        )));
                    }
                    let rows = (0..d.out_dim)
                        .map(|o| SparseRow {
                            terms: (0..d.in_dim)
                                .map(|i| (i, d.w(o, i)))
                                .filter(|&(_, c)| c != 0.0)
                                .collect(),
                            bias: d.bias[o],
                        })
                        .collect();
                    layers.push(AffineLayer { rows, relu: d.relu });
                }
                Layer::Conv2d(c) => {
                    let dims = &in_shape.0;
                    let (h, w) = (dims[1], dims[2]);
                    let (oh, ow) = c.out_hw(h, w);
                    let pad = c.padding as isize;
                    let mut rows = Vec::with_capacity(c.out_c * oh * ow);
                    for oc in 0..c.out_c {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut terms = Vec::new();
                                let base_y = (oy * c.stride) as isize - pad;
                                let base_x = (ox * c.stride) as isize - pad;
                                for ic in 0..c.in_c {
                                    for ky in 0..c.kh {
                                        let iy = base_y + ky as isize;
                                        if iy < 0 || iy >= h as isize {
                                            continue;
                                        }
                                        for kx in 0..c.kw {
                                            let ix = base_x + kx as isize;
                                            if ix < 0 || ix >= w as isize {
                                                continue;
                                            }
                                            let coef = c.kernels[c.k_index(oc, ic, ky, kx)];
                                            if coef != 0.0 {
                                                let idx = (ic * h + iy as usize) * w + ix as usize;
                                                terms.push((idx, coef));
                                            }
                                        }
                                    }
                                }
                                terms.sort_by_key(|&(i, _)| i);
                                rows.push(SparseRow {
                                    terms,
                                    bias: c.bias[oc],
                                });
                            }
                        }
                    }
                    layers.push(AffineLayer { rows, relu: c.relu });
                }
                Layer::AvgPool2d(p) => {
                    let dims = &in_shape.0;
                    let (ch, h, w) = (dims[0], dims[1], dims[2]);
                    let (oh, ow) = p.out_hw(h, w);
                    let inv = 1.0 / (p.kernel * p.kernel) as f64;
                    let mut rows = Vec::with_capacity(ch * oh * ow);
                    for c in 0..ch {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut terms = Vec::new();
                                for ky in 0..p.kernel {
                                    for kx in 0..p.kernel {
                                        let iy = oy * p.stride + ky;
                                        let ix = ox * p.stride + kx;
                                        terms.push(((c * h + iy) * w + ix, inv));
                                    }
                                }
                                terms.sort_by_key(|&(i, _)| i);
                                rows.push(SparseRow { terms, bias: 0.0 });
                            }
                        }
                    }
                    layers.push(AffineLayer { rows, relu: false });
                }
            }
        }
        Ok(AffineNetwork {
            input_dim: net.input_dim(),
            layers,
        })
    }

    /// A deterministic 64-bit hash of the network's architecture and exact
    /// weight bits: FNV-1a over the input dimension, each layer's ReLU flag
    /// and width, and each row's sparse terms (`f64::to_bits`, so two
    /// networks hash equal iff they compute the same lowered function
    /// bit-for-bit). This is the key of the resident engine's model
    /// registry — a fine-tuning step produces a new hash, and any cached
    /// state keyed by the old one is never served for the new weights.
    pub fn weight_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.input_dim as u64);
        eat(self.layers.len() as u64);
        for l in &self.layers {
            eat(u64::from(l.relu));
            eat(l.rows.len() as u64);
            for r in &l.rows {
                eat(r.terms.len() as u64);
                for &(i, c) in &r.terms {
                    eat(i as u64);
                    eat(c.to_bits());
                }
                eat(r.bias.to_bits());
            }
        }
        h
    }

    /// Number of affine layers `n`.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Width `mᵢ` of layer `i` (0-based).
    pub fn width(&self, layer: usize) -> usize {
        self.layers[layer].width()
    }

    /// Output dimension `mₙ`.
    pub fn output_dim(&self) -> usize {
        self.layers
            .last()
            .map(AffineLayer::width)
            .unwrap_or(self.input_dim)
    }

    /// Forward pass through the lowered form (used to cross-check lowering
    /// against [`Network::forward`]).
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut x = input.to_vec();
        for l in &self.layers {
            let mut y: Vec<f64> = l.rows.iter().map(|r| r.eval(&x)).collect();
            if l.relu {
                for v in &mut y {
                    *v = v.max(0.0);
                }
            }
            x = y;
        }
        x
    }

    /// Extracts the backward dependency [`Cone`] of neuron `target` in layer
    /// `layer` (0-based) spanning `window` affine layers — the substrate of
    /// the paper's `NetDecompose(F, ·, w)`.
    ///
    /// The cone records, for each of the `window + 1` involved levels, which
    /// neuron indices influence the target. Level `0` is the sub-network
    /// input `x⁽ⁱ⁻ʷ⁾`; level `window` contains only `target`.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= depth()`, `window == 0`, or `window > layer + 1`.
    pub fn cone(&self, layer: usize, target: usize, window: usize) -> Cone {
        assert!(layer < self.depth(), "layer out of range");
        assert!(window >= 1, "window must be at least 1");
        assert!(window <= layer + 1, "window deeper than available prefix");
        let mut levels = vec![Vec::new(); window + 1];
        levels[window] = vec![target];
        for k in (0..window).rev() {
            let l = &self.layers[layer - (window - 1 - k)];
            let mut wanted: Vec<usize> = Vec::new();
            for &j in &levels[k + 1] {
                for &(i, _) in &l.rows[j].terms {
                    wanted.push(i);
                }
            }
            wanted.sort_unstable();
            wanted.dedup();
            levels[k] = wanted;
        }
        Cone {
            layer,
            window,
            levels,
        }
    }
}

/// The backward dependency cone of a single neuron across a window of layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cone {
    /// The (0-based) affine layer of the target neuron.
    pub layer: usize,
    /// Number of affine layers spanned.
    pub window: usize,
    /// `levels[k]` = sorted indices at depth `layer - window + 1 + k - 1`…
    /// i.e. level 0 indexes `x` entering the sub-network, level `window`
    /// holds exactly the target neuron.
    pub levels: Vec<Vec<usize>>,
}

impl Cone {
    /// The affine-layer index feeding level `k ∈ 1..=window`.
    pub fn layer_at(&self, k: usize) -> usize {
        self.layer + k - self.window
    }

    /// Total neurons involved (all levels).
    pub fn size(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn fig1() -> AffineNetwork {
        let net = NetworkBuilder::input(2)
            .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)
            .unwrap()
            .dense(&[&[1.0, -1.0]], &[0.0], true)
            .unwrap()
            .build();
        AffineNetwork::from_network(&net).unwrap()
    }

    #[test]
    fn weight_hash_is_deterministic_and_weight_sensitive() {
        let a = fig1();
        assert_eq!(a.weight_hash(), fig1().weight_hash());
        assert_eq!(a.weight_hash(), a.clone().weight_hash());

        // The smallest possible weight change flips the hash.
        let mut nudged = a.clone();
        let c = &mut nudged.layers[0].rows[0].terms[0].1;
        *c = f64::from_bits(c.to_bits() + 1);
        assert_ne!(a.weight_hash(), nudged.weight_hash());

        // Architecture changes flip it too, even with identical weights.
        let mut no_relu = a.clone();
        no_relu.layers[0].relu = false;
        assert_ne!(a.weight_hash(), no_relu.weight_hash());

        // ±0.0 have different bit patterns and hash differently by design
        // (the registry key must match the certifier's bit-level view).
        let mut negzero = a.clone();
        negzero.layers[0].rows[0].bias = -0.0;
        assert_ne!(a.weight_hash(), negzero.weight_hash());
    }

    #[test]
    fn lowering_matches_forward() {
        let net = NetworkBuilder::input(2)
            .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.1, -0.2], true)
            .unwrap()
            .dense(&[&[1.0, -1.0]], &[0.3], false)
            .unwrap()
            .build();
        let aff = AffineNetwork::from_network(&net).unwrap();
        for p in [[0.3, -0.4], [1.0, 1.0], [-1.0, 0.5]] {
            assert_eq!(aff.forward(&p), net.forward(&p));
        }
    }

    #[test]
    fn flatten_disappears() {
        let net = NetworkBuilder::input_image(1, 2, 2)
            .conv2d(1, 1, 1, 0, true)
            .unwrap()
            .flatten()
            .unwrap()
            .dense_zeros(3, false)
            .unwrap()
            .build();
        let aff = AffineNetwork::from_network(&net).unwrap();
        assert_eq!(aff.depth(), 2);
        assert_eq!(aff.width(0), 4);
        assert_eq!(aff.width(1), 3);
    }

    #[test]
    fn conv_rows_are_local() {
        let mut net = NetworkBuilder::input_image(1, 6, 6)
            .conv2d(2, 3, 1, 0, true)
            .unwrap()
            .build();
        // Give the conv non-zero weights so terms survive.
        if let crate::layer::Layer::Conv2d(c) = &mut net.layers_mut()[0] {
            c.kernels
                .iter_mut()
                .enumerate()
                .for_each(|(i, k)| *k = 1.0 + i as f64);
        }
        let aff = AffineNetwork::from_network(&net).unwrap();
        // Every conv row touches exactly kh·kw·in_c = 9 inputs.
        for r in &aff.layers[0].rows {
            assert_eq!(r.terms.len(), 9);
        }
    }

    #[test]
    fn cone_of_fc_layer_is_everything() {
        let aff = fig1();
        let cone = aff.cone(1, 0, 2);
        assert_eq!(cone.levels[0], vec![0, 1]); // both inputs
        assert_eq!(cone.levels[1], vec![0, 1]); // both hidden neurons
        assert_eq!(cone.levels[2], vec![0]);
    }

    #[test]
    fn cone_of_conv_is_receptive_field() {
        let net = NetworkBuilder::input_image(1, 5, 5)
            .conv2d(1, 3, 1, 0, true)
            .unwrap()
            .build();
        let mut net = net;
        if let crate::layer::Layer::Conv2d(c) = &mut net.layers_mut()[0] {
            c.kernels.iter_mut().for_each(|k| *k = 1.0);
        }
        let aff = AffineNetwork::from_network(&net).unwrap();
        // Output (0,0) depends on the 3×3 patch at the top-left.
        let cone = aff.cone(0, 0, 1);
        assert_eq!(cone.levels[0], vec![0, 1, 2, 5, 6, 7, 10, 11, 12]);
    }

    #[test]
    fn avgpool_lowers_to_uniform_weights() {
        let net = NetworkBuilder::input_image(1, 2, 2)
            .avg_pool(2, 2)
            .unwrap()
            .build();
        let aff = AffineNetwork::from_network(&net).unwrap();
        assert_eq!(
            aff.layers[0].rows[0].terms,
            vec![(0, 0.25), (1, 0.25), (2, 0.25), (3, 0.25)]
        );
        assert_eq!(aff.forward(&[1.0, 2.0, 3.0, 4.0]), vec![2.5]);
    }
}
