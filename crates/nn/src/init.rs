//! Weight initialization.

use crate::layer::Layer;
use crate::network::Network;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Weight-initialization schemes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WeightInit {
    /// He (Kaiming) uniform — suited to ReLU layers.
    HeUniform,
    /// Glorot (Xavier) uniform — suited to linear outputs.
    GlorotUniform,
}

impl WeightInit {
    fn limit(self, fan_in: usize, fan_out: usize) -> f64 {
        match self {
            WeightInit::HeUniform => (6.0 / fan_in as f64).sqrt(),
            WeightInit::GlorotUniform => (6.0 / (fan_in + fan_out) as f64).sqrt(),
        }
    }
}

/// Initializes every trainable layer of `net` in place, deterministically
/// from `seed`. ReLU layers get He-uniform weights, linear layers
/// Glorot-uniform; biases start at zero.
pub fn initialize(net: &mut Network, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for layer in net.layers_mut() {
        match layer {
            Layer::Dense(d) => {
                let scheme = if d.relu {
                    WeightInit::HeUniform
                } else {
                    WeightInit::GlorotUniform
                };
                let lim = scheme.limit(d.in_dim, d.out_dim);
                for w in &mut d.weights {
                    *w = rng.random_range(-lim..lim);
                }
                d.bias.iter_mut().for_each(|b| *b = 0.0);
            }
            Layer::Conv2d(c) => {
                let fan_in = c.in_c * c.kh * c.kw;
                let fan_out = c.out_c * c.kh * c.kw;
                let scheme = if c.relu {
                    WeightInit::HeUniform
                } else {
                    WeightInit::GlorotUniform
                };
                let lim = scheme.limit(fan_in, fan_out);
                for k in &mut c.kernels {
                    *k = rng.random_range(-lim..lim);
                }
                c.bias.iter_mut().for_each(|b| *b = 0.0);
            }
            Layer::AvgPool2d(_) | Layer::Flatten => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    #[test]
    fn initialization_is_deterministic() {
        let build = || {
            NetworkBuilder::input(4)
                .dense_zeros(8, true)
                .unwrap()
                .dense_zeros(1, false)
                .unwrap()
                .build()
        };
        let mut a = build();
        let mut b = build();
        initialize(&mut a, 42);
        initialize(&mut b, 42);
        assert_eq!(a, b);
        let mut c = build();
        initialize(&mut c, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_are_bounded_by_he_limit() {
        let mut net = NetworkBuilder::input(9)
            .dense_zeros(4, true)
            .unwrap()
            .build();
        initialize(&mut net, 7);
        let lim = (6.0f64 / 9.0).sqrt();
        if let Layer::Dense(d) = &net.layers()[0] {
            assert!(d.weights.iter().all(|w| w.abs() <= lim));
            assert!(d.weights.iter().any(|w| *w != 0.0));
        } else {
            panic!("expected dense layer");
        }
    }
}
