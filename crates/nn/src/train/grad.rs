//! Reverse-mode gradients for every layer type.

use crate::layer::Layer;
use crate::network::{Network, Trace};
use crate::tensor::Tensor;

/// Parameter gradients for one layer.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerGrad {
    /// Dense layer gradients.
    Dense {
        /// `∂L/∂W`, same layout as [`crate::Dense::weights`].
        dw: Vec<f64>,
        /// `∂L/∂b`.
        db: Vec<f64>,
    },
    /// Convolution gradients.
    Conv2d {
        /// `∂L/∂K`, same layout as [`crate::Conv2d::kernels`].
        dk: Vec<f64>,
        /// `∂L/∂b`.
        db: Vec<f64>,
    },
    /// Layer without parameters.
    None,
}

/// Accumulated parameter gradients for a whole network.
#[derive(Clone, Debug, PartialEq)]
pub struct Gradients {
    /// One entry per layer, in network order.
    pub per_layer: Vec<LayerGrad>,
}

impl Gradients {
    /// Zero gradients matching `net`'s parameter shapes.
    pub fn zeros_like(net: &Network) -> Self {
        let per_layer = net
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => LayerGrad::Dense {
                    dw: vec![0.0; d.weights.len()],
                    db: vec![0.0; d.bias.len()],
                },
                Layer::Conv2d(c) => LayerGrad::Conv2d {
                    dk: vec![0.0; c.kernels.len()],
                    db: vec![0.0; c.bias.len()],
                },
                Layer::AvgPool2d(_) | Layer::Flatten => LayerGrad::None,
            })
            .collect();
        Gradients { per_layer }
    }
}

/// Backpropagates `dloss_dout` (gradient of the loss w.r.t. the network
/// output) through `net` along `trace`, accumulating parameter gradients into
/// `grads` and returning the gradient w.r.t. the network *input*.
///
/// # Panics
///
/// Panics if `trace` or `grads` do not match `net`.
pub fn backward(
    net: &Network,
    trace: &Trace,
    dloss_dout: &[f64],
    grads: &mut Gradients,
) -> Vec<f64> {
    let layers = net.layers();
    assert_eq!(trace.pre.len(), layers.len(), "trace/network mismatch");
    assert_eq!(
        grads.per_layer.len(),
        layers.len(),
        "grads/network mismatch"
    );
    let mut g: Vec<f64> = dloss_dout.to_vec();

    for (li, layer) in layers.iter().enumerate().rev() {
        // Gradient w.r.t. the pre-activation: mask by ReLU activity.
        if layer.has_relu() {
            let pre = trace.pre[li].data();
            for (gv, &p) in g.iter_mut().zip(pre) {
                if p <= 0.0 {
                    *gv = 0.0;
                }
            }
        }
        let x_in: &Tensor = &trace.post[li];
        g = match (layer, &mut grads.per_layer[li]) {
            (Layer::Dense(d), LayerGrad::Dense { dw, db }) => {
                let xin = x_in.data();
                let mut gin = vec![0.0f64; d.in_dim];
                for o in 0..d.out_dim {
                    let go = g[o];
                    db[o] += go;
                    if go != 0.0 {
                        let row = o * d.in_dim;
                        for i in 0..d.in_dim {
                            dw[row + i] += go * xin[i];
                            gin[i] += d.weights[row + i] * go;
                        }
                    }
                }
                gin
            }
            (Layer::Conv2d(c), LayerGrad::Conv2d { dk, db }) => {
                let dims = &x_in.shape().0;
                let (h, w) = (dims[1], dims[2]);
                let (oh, ow) = c.out_hw(h, w);
                let mut gin = Tensor::zeros(vec![c.in_c, h, w]);
                let pad = c.padding as isize;
                for oc in 0..c.out_c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let go = g[(oc * oh + oy) * ow + ox];
                            if go == 0.0 {
                                continue;
                            }
                            db[oc] += go;
                            let base_y = (oy * c.stride) as isize - pad;
                            let base_x = (ox * c.stride) as isize - pad;
                            for ic in 0..c.in_c {
                                for ky in 0..c.kh {
                                    let iy = base_y + ky as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..c.kw {
                                        let ix = base_x + kx as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let ki = c.k_index(oc, ic, ky, kx);
                                        dk[ki] += go * x_in.at3(ic, iy as usize, ix as usize);
                                        *gin.at3_mut(ic, iy as usize, ix as usize) +=
                                            c.kernels[ki] * go;
                                    }
                                }
                            }
                        }
                    }
                }
                gin.into_vec()
            }
            (Layer::AvgPool2d(p), LayerGrad::None) => {
                let dims = &x_in.shape().0;
                let (ch, h, w) = (dims[0], dims[1], dims[2]);
                let (oh, ow) = p.out_hw(h, w);
                let inv = 1.0 / (p.kernel * p.kernel) as f64;
                let mut gin = Tensor::zeros(vec![ch, h, w]);
                for c in 0..ch {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let go = g[(c * oh + oy) * ow + ox] * inv;
                            if go == 0.0 {
                                continue;
                            }
                            for ky in 0..p.kernel {
                                for kx in 0..p.kernel {
                                    *gin.at3_mut(c, oy * p.stride + ky, ox * p.stride + kx) += go;
                                }
                            }
                        }
                    }
                }
                gin.into_vec()
            }
            (Layer::Flatten, LayerGrad::None) => g, // identity
            _ => unreachable!("gradient slot mismatches layer type"),
        };
    }
    g
}

/// Gradient of a scalar projection `Σ dloss_dout·F(x)` w.r.t. the input —
/// the quantity FGSM/PGD need. A thin wrapper over [`backward`] that drops
/// parameter gradients.
pub fn input_gradient(net: &Network, input: &[f64], dloss_dout: &[f64]) -> Vec<f64> {
    let trace = net.forward_trace(input);
    let mut sink = Gradients::zeros_like(net);
    backward(net, &trace, dloss_dout, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::network::NetworkBuilder;

    /// Finite-difference check of the input gradient through a mixed stack.
    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut net = NetworkBuilder::input_image(1, 5, 5)
            .conv2d(2, 3, 1, 1, true)
            .unwrap()
            .avg_pool(2, 2)
            .unwrap()
            .flatten()
            .unwrap()
            .dense_zeros(3, true)
            .unwrap()
            .dense_zeros(1, false)
            .unwrap()
            .build();
        initialize(&mut net, 11);
        let x: Vec<f64> = (0..25).map(|i| 0.3 + 0.02 * i as f64).collect();
        let g = input_gradient(&net, &x, &[1.0]);
        let f = |x: &[f64]| net.forward(x)[0];
        let h = 1e-6;
        for i in (0..25).step_by(3) {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (f(&xp) - f(&xm)) / (2.0 * h);
            assert!(
                (g[i] - fd).abs() < 1e-4,
                "input grad {i}: analytic {} vs fd {fd}",
                g[i]
            );
        }
    }

    /// Finite-difference check of dense parameter gradients.
    #[test]
    fn dense_weight_gradients_match_finite_differences() {
        let mut net = NetworkBuilder::input(3)
            .dense_zeros(4, true)
            .unwrap()
            .dense_zeros(2, false)
            .unwrap()
            .build();
        initialize(&mut net, 5);
        let x = [0.7, -0.2, 0.4];
        let dl = [0.5, -1.5];

        let trace = net.forward_trace(&x);
        let mut grads = Gradients::zeros_like(&net);
        backward(&net, &trace, &dl, &mut grads);

        let loss = |n: &Network| {
            let y = n.forward(&x);
            0.5 * y[0] - 1.5 * y[1]
        };
        let h = 1e-6;
        for (li, wi) in [(0usize, 2usize), (0, 7), (1, 3)] {
            let mut np = net.clone();
            let mut nm = net.clone();
            match (&mut np.layers_mut()[li], &mut nm.layers_mut()[li]) {
                (Layer::Dense(dp), Layer::Dense(dm)) => {
                    dp.weights[wi] += h;
                    dm.weights[wi] -= h;
                }
                _ => unreachable!(),
            }
            let fd = (loss(&np) - loss(&nm)) / (2.0 * h);
            let got = match &grads.per_layer[li] {
                LayerGrad::Dense { dw, .. } => dw[wi],
                _ => unreachable!(),
            };
            assert!((got - fd).abs() < 1e-4, "layer {li} w{wi}: {got} vs {fd}");
        }
    }

    /// Finite-difference check of conv kernel gradients.
    #[test]
    fn conv_kernel_gradients_match_finite_differences() {
        let mut net = NetworkBuilder::input_image(1, 4, 4)
            .conv2d(2, 2, 2, 0, true)
            .unwrap()
            .flatten()
            .unwrap()
            .dense_zeros(1, false)
            .unwrap()
            .build();
        initialize(&mut net, 9);
        let x: Vec<f64> = (0..16).map(|i| (i as f64 * 0.13).sin()).collect();

        let trace = net.forward_trace(&x);
        let mut grads = Gradients::zeros_like(&net);
        backward(&net, &trace, &[1.0], &mut grads);

        let h = 1e-6;
        for ki in [0usize, 3, 5] {
            let mut np = net.clone();
            let mut nm = net.clone();
            match (&mut np.layers_mut()[0], &mut nm.layers_mut()[0]) {
                (Layer::Conv2d(cp), Layer::Conv2d(cm)) => {
                    cp.kernels[ki] += h;
                    cm.kernels[ki] -= h;
                }
                _ => unreachable!(),
            }
            let fd = (np.forward(&x)[0] - nm.forward(&x)[0]) / (2.0 * h);
            let got = match &grads.per_layer[0] {
                LayerGrad::Conv2d { dk, .. } => dk[ki],
                _ => unreachable!(),
            };
            assert!((got - fd).abs() < 1e-4, "kernel {ki}: {got} vs {fd}");
        }
    }
}
