//! Loss functions: value and gradient w.r.t. the prediction.

/// Loss selection for [`crate::train::train`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error (regression).
    Mse,
    /// Softmax followed by cross-entropy against a one-hot target
    /// (classification).
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Evaluates the loss and its gradient w.r.t. `pred`.
    pub fn eval(self, pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
        match self {
            Loss::Mse => mse(pred, target),
            Loss::SoftmaxCrossEntropy => softmax_cross_entropy(pred, target),
        }
    }
}

/// Mean squared error `Σ (p − t)² / n` and its gradient `2(p − t)/n`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mse(pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = vec![0.0; pred.len()];
    for (i, (&p, &t)) in pred.iter().zip(target).enumerate() {
        let d = p - t;
        loss += d * d;
        grad[i] = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Numerically-stable softmax cross-entropy against a one-hot (or soft)
/// target distribution; gradient is `softmax(pred) − target`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn softmax_cross_entropy(logits: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(logits.len(), target.len(), "cross-entropy length mismatch");
    let max = logits.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let z: f64 = exps.iter().sum();
    let mut loss = 0.0;
    let mut grad = vec![0.0; logits.len()];
    for i in 0..logits.len() {
        let p = exps[i] / z;
        if target[i] > 0.0 {
            loss -= target[i] * (p.max(1e-300)).ln();
        }
        grad[i] = p - target[i];
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_value_and_gradient() {
        let (l, g) = mse(&[1.0, 3.0], &[0.0, 1.0]);
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        assert_eq!(g, vec![1.0, 2.0]);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let (l_good, _) = softmax_cross_entropy(&[4.0, 0.0, 0.0], &[1.0, 0.0, 0.0]);
        let (l_bad, _) = softmax_cross_entropy(&[0.0, 4.0, 0.0], &[1.0, 0.0, 0.0]);
        assert!(l_good < l_bad);
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero_for_one_hot() {
        let (_, g) = softmax_cross_entropy(&[0.5, -1.0, 2.0], &[0.0, 1.0, 0.0]);
        let s: f64 = g.iter().sum();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_is_stable_for_large_logits() {
        let (l, g) = softmax_cross_entropy(&[1000.0, 0.0], &[1.0, 0.0]);
        assert!(l.is_finite());
        assert!(g.iter().all(|v| v.is_finite()));
    }
}
