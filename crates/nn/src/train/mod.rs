//! Training: backpropagation, losses, optimizers, and a mini-batch driver.
//!
//! The paper trains its networks in TensorFlow; certification only needs the
//! resulting weights, so this module provides exactly enough machinery to
//! produce realistically-trained f64 networks: reverse-mode gradients for
//! every layer type, MSE and softmax cross-entropy losses, SGD-with-momentum
//! and Adam, and a deterministic shuffling mini-batch loop.

mod grad;
mod loss;
mod optimizer;

pub use grad::{backward, input_gradient, Gradients, LayerGrad};
pub use loss::{mse, softmax_cross_entropy, Loss};
pub use optimizer::{Adam, Optimizer, Sgd};

use crate::network::Network;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A supervised dataset of flat inputs and flat targets (one-hot rows for
/// classification).
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    /// Input vectors, each of the network's input dimension.
    pub inputs: Vec<Vec<f64>>,
    /// Target vectors, each of the network's output dimension.
    pub targets: Vec<Vec<f64>>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True if the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

/// Mini-batch training configuration.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Loss function.
    pub loss: Loss,
    /// RNG seed for shuffling.
    pub seed: u64,
    /// Print a line per epoch when set.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 32,
            loss: Loss::Mse,
            seed: 0,
            verbose: false,
        }
    }
}

/// Per-epoch mean training loss, returned by [`train`].
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// `loss_history[e]` = mean loss over epoch `e`.
    pub loss_history: Vec<f64>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f64 {
        self.loss_history.last().copied().unwrap_or(f64::NAN)
    }
}

/// Trains `net` in place.
///
/// # Panics
///
/// Panics if the dataset is empty or example dimensions do not match the
/// network.
pub fn train(
    net: &mut Network,
    data: &Dataset,
    opt: &mut dyn Optimizer,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert_eq!(
        data.inputs.len(),
        data.targets.len(),
        "inputs/targets length mismatch"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut report = TrainReport::default();

    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut grads = Gradients::zeros_like(net);
            let mut batch_loss = 0.0;
            for &i in chunk {
                let trace = net.forward_trace(&data.inputs[i]);
                let (l, dl) = cfg.loss.eval(trace.output(), &data.targets[i]);
                batch_loss += l;
                backward(net, &trace, &dl, &mut grads);
            }
            epoch_loss += batch_loss;
            opt.step(net, &grads, chunk.len());
        }
        let mean = epoch_loss / data.len() as f64;
        report.loss_history.push(mean);
        if cfg.verbose {
            eprintln!("epoch {epoch:>3}: loss {mean:.6}");
        }
    }
    report
}

/// Mean MSE of `net` over a dataset.
pub fn evaluate_mse(net: &Network, data: &Dataset) -> f64 {
    let mut acc = 0.0;
    for (x, t) in data.inputs.iter().zip(&data.targets) {
        let y = net.forward(x);
        acc += mse(&y, t).0;
    }
    acc / data.len() as f64
}

/// Classification accuracy of `net` (argmax of output vs argmax of target).
pub fn accuracy(net: &Network, data: &Dataset) -> f64 {
    let argmax = |v: &[f64]| {
        v.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    let correct = data
        .inputs
        .iter()
        .zip(&data.targets)
        .filter(|(x, t)| argmax(&net.forward(x)) == argmax(t))
        .count();
    correct as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::network::NetworkBuilder;

    /// Training on a linearly-separable-ish regression task must reduce loss.
    #[test]
    fn training_reduces_regression_loss() {
        let mut net = NetworkBuilder::input(2)
            .dense_zeros(8, true)
            .unwrap()
            .dense_zeros(1, false)
            .unwrap()
            .build();
        initialize(&mut net, 1);
        // Target: y = x0 - 2 x1 + 0.5.
        let inputs: Vec<Vec<f64>> = (0..64)
            .map(|i| vec![(i % 8) as f64 / 8.0, (i / 8) as f64 / 8.0])
            .collect();
        let targets: Vec<Vec<f64>> = inputs
            .iter()
            .map(|p| vec![p[0] - 2.0 * p[1] + 0.5])
            .collect();
        let data = Dataset { inputs, targets };
        let mut opt = Adam::new(0.01);
        let report = train(
            &mut net,
            &data,
            &mut opt,
            &TrainConfig {
                epochs: 120,
                batch_size: 16,
                ..Default::default()
            },
        );
        assert!(
            report.final_loss() < 0.05 * report.loss_history[0].max(1e-3),
            "loss did not drop: first {}, last {}",
            report.loss_history[0],
            report.final_loss()
        );
    }

    /// A conv + dense classifier must learn a trivially separable image task.
    #[test]
    fn training_learns_simple_image_classification() {
        let mut net = NetworkBuilder::input_image(1, 6, 6)
            .conv2d(2, 3, 1, 0, true)
            .unwrap()
            .flatten()
            .unwrap()
            .dense_zeros(2, false)
            .unwrap()
            .build();
        initialize(&mut net, 3);
        // Class 0: bright top half; class 1: bright bottom half.
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for k in 0..40 {
            let top = k % 2 == 0;
            let mut img = vec![0.0; 36];
            for y in 0..6 {
                for x in 0..6 {
                    let bright = if top { y < 3 } else { y >= 3 };
                    img[y * 6 + x] = if bright {
                        0.8 + 0.01 * ((k + x) % 5) as f64
                    } else {
                        0.1
                    };
                }
            }
            inputs.push(img);
            targets.push(if top { vec![1.0, 0.0] } else { vec![0.0, 1.0] });
        }
        let data = Dataset { inputs, targets };
        let mut opt = Adam::new(0.02);
        train(
            &mut net,
            &data,
            &mut opt,
            &TrainConfig {
                epochs: 60,
                batch_size: 8,
                loss: Loss::SoftmaxCrossEntropy,
                ..Default::default()
            },
        );
        assert!(
            accuracy(&net, &data) > 0.95,
            "accuracy {}",
            accuracy(&net, &data)
        );
    }
}
