//! Optimizers consuming accumulated [`Gradients`].

use super::grad::{Gradients, LayerGrad};
use crate::layer::Layer;
use crate::network::Network;

/// A first-order optimizer stepping a network against batch gradients.
pub trait Optimizer {
    /// Applies one update. `batch_size` normalizes accumulated gradients.
    fn step(&mut self, net: &mut Network, grads: &Gradients, batch_size: usize);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    velocity: Option<Vec<LayerGrad>>,
}

impl Sgd {
    /// SGD with the given learning rate and momentum 0.9.
    pub fn new(lr: f64) -> Self {
        Sgd {
            lr,
            momentum: 0.9,
            velocity: None,
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with standard defaults, optionally with
/// decoupled weight decay (AdamW). Weight decay shrinks the trained weights
/// and thereby the network's Lipschitz gain — which directly tightens
/// robustness certificates.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator fuzz.
    pub eps: f64,
    /// Decoupled weight-decay coefficient (0 disables).
    pub weight_decay: f64,
    t: u64,
    m: Option<Vec<LayerGrad>>,
    v: Option<Vec<LayerGrad>>,
}

impl Adam {
    /// Adam with the given learning rate and standard (0.9, 0.999, 1e-8)
    /// moment parameters.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: None,
            v: None,
        }
    }

    /// AdamW: Adam plus decoupled weight decay.
    pub fn with_weight_decay(lr: f64, weight_decay: f64) -> Self {
        Adam {
            weight_decay,
            ..Self::new(lr)
        }
    }
}

/// Visits every (parameter, gradient) pair of the network in a fixed order.
fn for_each_param(
    net: &mut Network,
    grads: &Gradients,
    mut f: impl FnMut(usize, usize, &mut f64, f64),
) {
    for (li, (layer, grad)) in net
        .layers_mut()
        .iter_mut()
        .zip(&grads.per_layer)
        .enumerate()
    {
        match (layer, grad) {
            (Layer::Dense(d), LayerGrad::Dense { dw, db }) => {
                for (pi, (w, g)) in d.weights.iter_mut().zip(dw).enumerate() {
                    f(li, pi, w, *g);
                }
                let off = dw.len();
                for (pi, (b, g)) in d.bias.iter_mut().zip(db).enumerate() {
                    f(li, off + pi, b, *g);
                }
            }
            (Layer::Conv2d(c), LayerGrad::Conv2d { dk, db }) => {
                for (pi, (k, g)) in c.kernels.iter_mut().zip(dk).enumerate() {
                    f(li, pi, k, *g);
                }
                let off = dk.len();
                for (pi, (b, g)) in c.bias.iter_mut().zip(db).enumerate() {
                    f(li, off + pi, b, *g);
                }
            }
            _ => {}
        }
    }
}

/// Mutable view into per-layer optimizer state shaped like gradients.
fn state_entry(state: &mut [LayerGrad], li: usize, pi: usize) -> &mut f64 {
    match &mut state[li] {
        LayerGrad::Dense { dw, db } => {
            if pi < dw.len() {
                &mut dw[pi]
            } else {
                &mut db[pi - dw.len()]
            }
        }
        LayerGrad::Conv2d { dk, db } => {
            if pi < dk.len() {
                &mut dk[pi]
            } else {
                &mut db[pi - dk.len()]
            }
        }
        LayerGrad::None => unreachable!("parameterless layer has no state"),
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Network, grads: &Gradients, batch_size: usize) {
        let scale = 1.0 / batch_size.max(1) as f64;
        if self.velocity.is_none() {
            self.velocity = Some(Gradients::zeros_like(net).per_layer);
        }
        let vel = self.velocity.as_mut().expect("initialized above");
        let (lr, mu) = (self.lr, self.momentum);
        for_each_param(net, grads, |li, pi, w, g| {
            let v = state_entry(vel, li, pi);
            *v = mu * *v - lr * g * scale;
            *w += *v;
        });
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Network, grads: &Gradients, batch_size: usize) {
        let scale = 1.0 / batch_size.max(1) as f64;
        if self.m.is_none() {
            self.m = Some(Gradients::zeros_like(net).per_layer);
            self.v = Some(Gradients::zeros_like(net).per_layer);
        }
        self.t += 1;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let wd = self.weight_decay;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let m = self.m.as_mut().expect("initialized above");
        let v = self.v.as_mut().expect("initialized above");
        for_each_param(net, grads, |li, pi, w, g| {
            let g = g * scale;
            let ms = state_entry(m, li, pi);
            *ms = b1 * *ms + (1.0 - b1) * g;
            let mhat = *ms / bc1;
            let vs = state_entry(v, li, pi);
            *vs = b2 * *vs + (1.0 - b2) * g * g;
            let vhat = *vs / bc2;
            *w -= lr * (mhat / (vhat.sqrt() + eps) + wd * *w);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::initialize;
    use crate::network::NetworkBuilder;
    use crate::train::grad::backward;

    fn quadratic_step(opt: &mut dyn Optimizer) -> f64 {
        // One-parameter problem: minimize (w·1 - 1)² via repeated steps.
        let mut net = NetworkBuilder::input(1)
            .dense_zeros(1, false)
            .unwrap()
            .build();
        initialize(&mut net, 2);
        for _ in 0..400 {
            let trace = net.forward_trace(&[1.0]);
            let y = trace.output()[0];
            let mut grads = Gradients::zeros_like(&net);
            backward(&net, &trace, &[2.0 * (y - 1.0)], &mut grads);
            opt.step(&mut net, &grads, 1);
        }
        net.forward(&[1.0])[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let y = quadratic_step(&mut Sgd::new(0.05));
        assert!((y - 1.0).abs() < 1e-3, "got {y}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let y = quadratic_step(&mut Adam::new(0.05));
        assert!((y - 1.0).abs() < 1e-3, "got {y}");
    }
}
