//! Neural-network substrate for the ITNE global-robustness certifier.
//!
//! The paper models its networks in TensorFlow; this crate replaces that
//! dependency with a small, self-contained f64 implementation providing
//! exactly what the certification pipeline needs:
//!
//! * [`Network`] / [`Layer`] — fully-connected, 2-D convolution, average
//!   pooling and flatten layers, each with an optional ReLU, matching the
//!   paper's layer model `x⁽ⁱ⁾ = relu(W⁽ⁱ⁾ x⁽ⁱ⁻¹⁾ + b⁽ⁱ⁾)`;
//! * [`AffineNetwork`] — the lowered sparse-affine view of a network used by
//!   every encoder in `itne-core` (each neuron as a sparse row over the
//!   previous layer), plus backward-cone extraction for network
//!   decomposition;
//! * [`train`] — plain backpropagation with SGD/Adam, MSE and softmax
//!   cross-entropy, sufficient to produce realistically-trained weights for
//!   the experiments;
//! * gradients with respect to the *input*, required by the FGSM/PGD attacks
//!   in `itne-attack`.
//!
//! ```
//! use itne_nn::NetworkBuilder;
//!
//! # fn main() -> Result<(), itne_nn::NnError> {
//! // The paper's Fig. 1 network: 2 → 2 (ReLU) → 1 (ReLU), zero bias.
//! let net = NetworkBuilder::input(2)
//!     .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)?
//!     .dense(&[&[1.0, -1.0]], &[0.0], true)?
//!     .build();
//! let y = net.forward(&[1.0, 1.0]);
//! assert_eq!(y, vec![1.0]); // relu(1.5) - relu(0.5) = 1 → relu(1) = 1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod affine;
mod error;
mod init;
mod io;
mod layer;
mod network;
mod tensor;
pub mod train;

pub use affine::{AffineLayer, AffineNetwork, Cone, SparseRow};
pub use error::NnError;
pub use init::{initialize, WeightInit};
pub use layer::{AvgPool2d, Conv2d, Dense, Layer};
pub use network::{Network, NetworkBuilder};
pub use tensor::{Shape, Tensor};
