//! Networks: ordered layer stacks with shape checking and a builder.

use crate::error::NnError;
use crate::layer::{AvgPool2d, Conv2d, Dense, Layer};
use crate::tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// A feed-forward network `F : R^{m₀} → R^{mₙ}` as in the paper's §II-A:
/// each layer is a linear transformation with an optional ReLU.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Network {
    input_shape: Shape,
    layers: Vec<Layer>,
}

impl Network {
    /// The input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Flat input dimension `m₀`.
    pub fn input_dim(&self) -> usize {
        self.input_shape.len()
    }

    /// Flat output dimension `mₙ`.
    pub fn output_dim(&self) -> usize {
        self.shapes().last().map(Shape::len).unwrap_or(0)
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by training).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Shapes after each layer (length `layers() + 1`, starting with the
    /// input shape).
    pub fn shapes(&self) -> Vec<Shape> {
        let mut out = vec![self.input_shape.clone()];
        for l in &self.layers {
            let next = l
                .output_shape(out.last().expect("non-empty"))
                .expect("network was shape-checked at construction");
            out.push(next);
        }
        out
    }

    /// Total hidden neurons — outputs of every layer except the last, not
    /// counting shape-only flattens (the quantity reported in the paper's
    /// Table I).
    pub fn hidden_neurons(&self) -> usize {
        let shapes = self.shapes();
        self.layers
            .iter()
            .enumerate()
            .take(self.layers.len().saturating_sub(1))
            .filter(|(_, l)| !matches!(l, Layer::Flatten))
            .map(|(i, _)| shapes[i + 1].len())
            .sum()
    }

    /// Total trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Runs the network on a flat input slice, returning the flat output.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`Network::input_dim`].
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.input_dim(), "input length mismatch");
        let mut x = Tensor::from_vec(self.input_shape.clone(), input.to_vec());
        for l in &self.layers {
            let mut y = l.forward_pre(&x);
            if l.has_relu() {
                y.map_inplace(|v| v.max(0.0));
            }
            x = y;
        }
        x.into_vec()
    }

    /// Forward pass retaining every pre-activation `y⁽ⁱ⁾` and post-activation
    /// `x⁽ⁱ⁾` (index 0 is the input) — the trace consumed by backprop and by
    /// certification tests.
    pub fn forward_trace(&self, input: &[f64]) -> Trace {
        assert_eq!(input.len(), self.input_dim(), "input length mismatch");
        let x0 = Tensor::from_vec(self.input_shape.clone(), input.to_vec());
        let mut pre = Vec::with_capacity(self.layers.len());
        let mut post = vec![x0];
        for l in &self.layers {
            let y = l.forward_pre(post.last().expect("non-empty"));
            let mut x = y.clone();
            if l.has_relu() {
                x.map_inplace(|v| v.max(0.0));
            }
            pre.push(y);
            post.push(x);
        }
        Trace { pre, post }
    }
}

/// Pre-/post-activation tensors of one forward pass.
#[derive(Clone, Debug)]
pub struct Trace {
    /// `pre[i]` = `y⁽ⁱ⁺¹⁾` (pre-activation of layer i).
    pub pre: Vec<Tensor>,
    /// `post[0]` = input; `post[i+1]` = `x⁽ⁱ⁺¹⁾` (post-activation of layer i).
    pub post: Vec<Tensor>,
}

impl Trace {
    /// The network output.
    pub fn output(&self) -> &[f64] {
        self.post
            .last()
            .expect("trace has at least the input")
            .data()
    }
}

/// Incremental, shape-checked [`Network`] construction.
///
/// ```
/// use itne_nn::NetworkBuilder;
/// # fn main() -> Result<(), itne_nn::NnError> {
/// let net = NetworkBuilder::input(3)
///     .dense(&[&[1.0, 0.0, 1.0]], &[0.0], true)?
///     .build();
/// assert_eq!(net.output_dim(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    input_shape: Shape,
    current: Shape,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a network with a flat input of `dim` features.
    pub fn input(dim: usize) -> Self {
        let s = Shape(vec![dim]);
        NetworkBuilder {
            input_shape: s.clone(),
            current: s,
            layers: Vec::new(),
        }
    }

    /// Starts a network with an image input `[channels, height, width]`.
    pub fn input_image(channels: usize, height: usize, width: usize) -> Self {
        let s = Shape(vec![channels, height, width]);
        NetworkBuilder {
            input_shape: s.clone(),
            current: s,
            layers: Vec::new(),
        }
    }

    fn push(mut self, layer: Layer) -> Result<Self, NnError> {
        self.current = layer.output_shape(&self.current)?;
        self.layers.push(layer);
        Ok(self)
    }

    /// Appends a dense layer with explicit weights (one slice per output row).
    ///
    /// # Errors
    ///
    /// Fails if the weights are ragged or do not match the current shape.
    pub fn dense(self, rows: &[&[f64]], bias: &[f64], relu: bool) -> Result<Self, NnError> {
        self.push(Layer::Dense(Dense::new(rows, bias, relu)?))
    }

    /// Appends a zero-initialized dense layer of `out_dim` outputs.
    ///
    /// # Errors
    ///
    /// Fails if the current shape is not flat-compatible.
    pub fn dense_zeros(self, out_dim: usize, relu: bool) -> Result<Self, NnError> {
        let in_dim = self.current.len();
        let d = Dense {
            weights: vec![0.0; out_dim * in_dim],
            bias: vec![0.0; out_dim],
            in_dim,
            out_dim,
            relu,
        };
        self.push(Layer::Dense(d))
    }

    /// Appends a zero-initialized convolution.
    ///
    /// # Errors
    ///
    /// Fails if the current shape is not `[in_c, h, w]` or geometry is
    /// invalid.
    pub fn conv2d(
        self,
        out_c: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        relu: bool,
    ) -> Result<Self, NnError> {
        let in_c = match self.current.0.as_slice() {
            [c, _, _] => *c,
            _ => {
                return Err(NnError::ShapeMismatch(format!(
                    "conv2d needs an image input, current shape {}",
                    self.current
                )))
            }
        };
        self.push(Layer::Conv2d(Conv2d::zeros(
            in_c, out_c, kernel, kernel, stride, padding, relu,
        )?))
    }

    /// Appends an average-pooling layer.
    ///
    /// # Errors
    ///
    /// Fails if the current shape cannot be pooled.
    pub fn avg_pool(self, kernel: usize, stride: usize) -> Result<Self, NnError> {
        self.push(Layer::AvgPool2d(AvgPool2d { kernel, stride }))
    }

    /// Appends a flatten layer.
    ///
    /// # Errors
    ///
    /// Never fails in practice (any shape flattens); kept fallible for
    /// builder uniformity.
    pub fn flatten(self) -> Result<Self, NnError> {
        self.push(Layer::Flatten)
    }

    /// Finalizes the network.
    pub fn build(self) -> Network {
        Network {
            input_shape: self.input_shape,
            layers: self.layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_network() -> Network {
        NetworkBuilder::input(2)
            .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)
            .unwrap()
            .dense(&[&[1.0, -1.0]], &[0.0], true)
            .unwrap()
            .build()
    }

    #[test]
    fn fig1_forward_values() {
        let net = fig1_network();
        // x = (1, 0): y1 = (1, -0.5) → x1 = (1, 0) → y2 = 1 → 1.
        assert_eq!(net.forward(&[1.0, 0.0]), vec![1.0]);
        // x = (0, 1): y1 = (0.5, 1) → x1 = (0.5, 1) → y2 = -0.5 → relu → 0.
        assert_eq!(net.forward(&[0.0, 1.0]), vec![0.0]);
    }

    #[test]
    fn hidden_neuron_count_matches_paper_convention() {
        let net = fig1_network();
        assert_eq!(net.hidden_neurons(), 2);
    }

    #[test]
    fn trace_stores_pre_and_post() {
        let net = fig1_network();
        let t = net.forward_trace(&[0.0, 1.0]);
        assert_eq!(t.pre[1].data(), &[-0.5]); // pre-activation of output
        assert_eq!(t.output(), &[0.0]);
    }

    #[test]
    fn builder_rejects_mismatched_dense() {
        let r = NetworkBuilder::input(3).dense(&[&[1.0, 2.0]], &[0.0], false);
        assert!(r.is_err());
    }

    #[test]
    fn conv_stack_shapes() {
        let net = NetworkBuilder::input_image(1, 8, 8)
            .conv2d(4, 3, 2, 1, true)
            .unwrap()
            .flatten()
            .unwrap()
            .dense_zeros(10, false)
            .unwrap()
            .build();
        // (8 + 2 - 3)/2 + 1 = 4 → [4,4,4] = 64 → flatten (not counted) → 10.
        assert_eq!(net.hidden_neurons(), 64);
        assert_eq!(net.output_dim(), 10);
    }
}
