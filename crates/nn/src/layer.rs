//! Layer types and their forward passes.
//!
//! Every layer computes a linear map `y = W·x + b` (dense, convolution, and
//! average pooling are all linear; flatten is the identity), optionally
//! followed by a ReLU — exactly the layer model the paper's encodings assume.

use crate::error::NnError;
use crate::tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Fully-connected layer `y = W·x + b` with optional ReLU.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dense {
    /// Row-major weights, `out_dim × in_dim`.
    pub weights: Vec<f64>,
    /// Bias, length `out_dim`.
    pub bias: Vec<f64>,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Apply ReLU after the affine map.
    pub relu: bool,
}

impl Dense {
    /// Builds a dense layer from per-output-row weight slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for empty or ragged weights, or a
    /// bias of the wrong length.
    pub fn new(rows: &[&[f64]], bias: &[f64], relu: bool) -> Result<Self, NnError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(NnError::InvalidLayer(
                "dense layer needs a non-empty weight matrix".into(),
            ));
        }
        let in_dim = rows[0].len();
        if rows.iter().any(|r| r.len() != in_dim) {
            return Err(NnError::InvalidLayer("ragged dense weight rows".into()));
        }
        if bias.len() != rows.len() {
            return Err(NnError::InvalidLayer(format!(
                "bias length {} != output dim {}",
                bias.len(),
                rows.len()
            )));
        }
        Ok(Dense {
            weights: rows.iter().flat_map(|r| r.iter().copied()).collect(),
            bias: bias.to_vec(),
            in_dim,
            out_dim: rows.len(),
            relu,
        })
    }

    /// Weight `W[o][i]`.
    #[inline]
    pub fn w(&self, o: usize, i: usize) -> f64 {
        self.weights[o * self.in_dim + i]
    }
}

/// 2-D convolution over `[channels, height, width]` tensors, with optional
/// zero padding and ReLU.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    /// Kernels, flat `[out_c][in_c][kh][kw]`.
    pub kernels: Vec<f64>,
    /// Bias per output channel.
    pub bias: Vec<f64>,
    /// Input channels.
    pub in_c: usize,
    /// Output channels.
    pub out_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Apply ReLU after the affine map.
    pub relu: bool,
}

impl Conv2d {
    /// A convolution with given geometry and all-zero parameters (fill via
    /// [`crate::WeightInit`] or training).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] for zero-sized geometry.
    pub fn zeros(
        in_c: usize,
        out_c: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        padding: usize,
        relu: bool,
    ) -> Result<Self, NnError> {
        if in_c == 0 || out_c == 0 || kh == 0 || kw == 0 || stride == 0 {
            return Err(NnError::InvalidLayer(
                "conv2d geometry must be positive".into(),
            ));
        }
        Ok(Conv2d {
            kernels: vec![0.0; out_c * in_c * kh * kw],
            bias: vec![0.0; out_c],
            in_c,
            out_c,
            kh,
            kw,
            stride,
            padding,
            relu,
        })
    }

    /// Kernel element `K[oc][ic][ky][kx]`.
    #[inline]
    pub fn k(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f64 {
        self.kernels[((oc * self.in_c + ic) * self.kh + ky) * self.kw + kx]
    }

    #[inline]
    pub(crate) fn k_index(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((oc * self.in_c + ic) * self.kh + ky) * self.kw + kx
    }

    /// Output spatial size for an input of `h × w`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kh) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kw) / self.stride + 1;
        (oh, ow)
    }
}

/// Average pooling over `[channels, height, width]` tensors (a linear layer
/// with fixed `1/k²` weights; never has a ReLU of its own).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AvgPool2d {
    /// Pooling window (square).
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
}

impl AvgPool2d {
    /// Output spatial size for an input of `h × w`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.kernel) / self.stride + 1,
            (w - self.kernel) / self.stride + 1,
        )
    }
}

/// A network layer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected.
    Dense(Dense),
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Average pooling.
    AvgPool2d(AvgPool2d),
    /// Shape-only flatten to rank 1.
    Flatten,
}

impl Layer {
    /// Whether the layer ends with a ReLU activation.
    pub fn has_relu(&self) -> bool {
        match self {
            Layer::Dense(d) => d.relu,
            Layer::Conv2d(c) => c.relu,
            Layer::AvgPool2d(_) | Layer::Flatten => false,
        }
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weights.len() + d.bias.len(),
            Layer::Conv2d(c) => c.kernels.len() + c.bias.len(),
            Layer::AvgPool2d(_) | Layer::Flatten => 0,
        }
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the layer cannot accept the
    /// input shape.
    pub fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        match self {
            Layer::Dense(d) => {
                if input.len() != d.in_dim {
                    return Err(NnError::ShapeMismatch(format!(
                        "dense expects {} inputs, got shape {input}",
                        d.in_dim
                    )));
                }
                Ok(Shape(vec![d.out_dim]))
            }
            Layer::Conv2d(c) => {
                let dims = &input.0;
                if dims.len() != 3 || dims[0] != c.in_c {
                    return Err(NnError::ShapeMismatch(format!(
                        "conv2d expects [{}, h, w], got {input}",
                        c.in_c
                    )));
                }
                let (h, w) = (dims[1], dims[2]);
                if h + 2 * c.padding < c.kh || w + 2 * c.padding < c.kw {
                    return Err(NnError::ShapeMismatch(format!(
                        "conv2d kernel {}×{} larger than padded input {input}",
                        c.kh, c.kw
                    )));
                }
                let (oh, ow) = c.out_hw(h, w);
                Ok(Shape(vec![c.out_c, oh, ow]))
            }
            Layer::AvgPool2d(p) => {
                let dims = &input.0;
                if dims.len() != 3 || dims[1] < p.kernel || dims[2] < p.kernel {
                    return Err(NnError::ShapeMismatch(format!(
                        "avgpool {}×{} cannot pool input {input}",
                        p.kernel, p.kernel
                    )));
                }
                let (oh, ow) = p.out_hw(dims[1], dims[2]);
                Ok(Shape(vec![dims[0], oh, ow]))
            }
            Layer::Flatten => Ok(Shape(vec![input.len()])),
        }
    }

    /// Computes the pre-activation `y = W·x + b` (the post-activation output
    /// is `relu(y)` when [`Layer::has_relu`] is set, `y` otherwise).
    pub fn forward_pre(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Dense(d) => {
                let xin = x.data();
                let mut y = vec![0.0f64; d.out_dim];
                for (o, yo) in y.iter_mut().enumerate() {
                    let row = &d.weights[o * d.in_dim..(o + 1) * d.in_dim];
                    let mut acc = d.bias[o];
                    for (wv, xv) in row.iter().zip(xin) {
                        acc += wv * xv;
                    }
                    *yo = acc;
                }
                Tensor::from_vec(vec![d.out_dim], y)
            }
            Layer::Conv2d(c) => {
                let dims = &x.shape().0;
                let (h, w) = (dims[1], dims[2]);
                let (oh, ow) = c.out_hw(h, w);
                let mut out = Tensor::zeros(vec![c.out_c, oh, ow]);
                let pad = c.padding as isize;
                for oc in 0..c.out_c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = c.bias[oc];
                            let base_y = (oy * c.stride) as isize - pad;
                            let base_x = (ox * c.stride) as isize - pad;
                            for ic in 0..c.in_c {
                                for ky in 0..c.kh {
                                    let iy = base_y + ky as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..c.kw {
                                        let ix = base_x + kx as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        acc += c.k(oc, ic, ky, kx)
                                            * x.at3(ic, iy as usize, ix as usize);
                                    }
                                }
                            }
                            *out.at3_mut(oc, oy, ox) = acc;
                        }
                    }
                }
                out
            }
            Layer::AvgPool2d(p) => {
                let dims = &x.shape().0;
                let (ch, h, w) = (dims[0], dims[1], dims[2]);
                let (oh, ow) = p.out_hw(h, w);
                let inv = 1.0 / (p.kernel * p.kernel) as f64;
                let mut out = Tensor::zeros(vec![ch, oh, ow]);
                for c in 0..ch {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = 0.0;
                            for ky in 0..p.kernel {
                                for kx in 0..p.kernel {
                                    acc += x.at3(c, oy * p.stride + ky, ox * p.stride + kx);
                                }
                            }
                            *out.at3_mut(c, oy, ox) = acc * inv;
                        }
                    }
                }
                out
            }
            Layer::Flatten => {
                let n = x.shape().len();
                x.clone().reshape(vec![n])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_forward_matches_hand_computation() {
        let d = Dense::new(&[&[1.0, 2.0], &[3.0, -1.0]], &[0.5, -0.5], false).unwrap();
        let y = Layer::Dense(d).forward_pre(&Tensor::from_slice(&[2.0, 1.0]));
        assert_eq!(
            y.data(),
            &[1.0 * 2.0 + 2.0 * 1.0 + 0.5, 3.0 * 2.0 - 1.0 - 0.5]
        );
    }

    #[test]
    fn dense_rejects_ragged_rows() {
        assert!(Dense::new(&[&[1.0, 2.0], &[3.0]], &[0.0, 0.0], false).is_err());
    }

    #[test]
    fn conv_identity_kernel_shifts_nothing() {
        // 1×1 kernel with weight 1 is the identity.
        let mut c = Conv2d::zeros(1, 1, 1, 1, 1, 0, false).unwrap();
        c.kernels[0] = 1.0;
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = Layer::Conv2d(c).forward_pre(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_3x3_sum_kernel() {
        // 3×3 all-ones kernel, no padding: single output = sum of inputs.
        let mut c = Conv2d::zeros(1, 1, 3, 3, 1, 0, false).unwrap();
        c.kernels.iter_mut().for_each(|k| *k = 1.0);
        let x = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(f64::from).collect());
        let y = Layer::Conv2d(c).forward_pre(&x);
        assert_eq!(y.data(), &[45.0]);
    }

    #[test]
    fn conv_padding_and_stride_geometry() {
        let c = Conv2d::zeros(1, 2, 3, 3, 2, 1, true).unwrap();
        let out = Layer::Conv2d(c)
            .output_shape(&Shape(vec![1, 5, 5]))
            .unwrap();
        // (5 + 2 - 3)/2 + 1 = 3
        assert_eq!(out.0, vec![2, 3, 3]);
    }

    #[test]
    fn conv_padding_values_are_zero() {
        // 3×3 ones kernel with padding 1 at a corner sees only 4 real cells.
        let mut c = Conv2d::zeros(1, 1, 3, 3, 1, 1, false).unwrap();
        c.kernels.iter_mut().for_each(|k| *k = 1.0);
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = Layer::Conv2d(c).forward_pre(&x);
        // Corner output (0,0): cells (0,0),(0,1),(1,0),(1,1) = 10.
        assert_eq!(y.at3(0, 0, 0), 10.0);
    }

    #[test]
    fn avgpool_averages_windows() {
        let p = AvgPool2d {
            kernel: 2,
            stride: 2,
        };
        let x = Tensor::from_vec(vec![1, 2, 4], vec![1.0, 3.0, 5.0, 7.0, 1.0, 3.0, 5.0, 7.0]);
        let y = Layer::AvgPool2d(p).forward_pre(&x);
        assert_eq!(y.data(), &[2.0, 6.0]);
    }

    #[test]
    fn flatten_keeps_data_order() {
        let x = Tensor::from_vec(vec![2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = Layer::Flatten.forward_pre(&x);
        assert_eq!(y.shape().0, vec![4]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
