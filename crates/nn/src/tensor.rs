//! Minimal dense f64 tensor with channel-height-width layout for images.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A tensor shape. Images use `[channels, height, width]`; vectors use
/// `[len]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True for the empty (rank-0, zero-element) shape.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

/// Dense row-major f64 tensor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f64>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.len();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f64>) -> Self {
        let shape = shape.into();
        assert_eq!(shape.len(), data.len(), "tensor data length mismatch");
        Tensor { shape, data }
    }

    /// A rank-1 tensor.
    pub fn from_slice(data: &[f64]) -> Self {
        Tensor {
            shape: Shape(vec![data.len()]),
            data: data.to_vec(),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Flat read access.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat write access.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reinterprets the data with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.data.len(),
            "reshape element count mismatch"
        );
        self.shape = shape;
        self
    }

    /// Element at `[c, y, x]` of a rank-3 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or the index is out of range.
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f64 {
        let dims = &self.shape.0;
        assert_eq!(dims.len(), 3, "at3 requires a rank-3 tensor");
        self.data[(c * dims[1] + y) * dims[2] + x]
    }

    /// Mutable element at `[c, y, x]` of a rank-3 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or the index is out of range.
    pub fn at3_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f64 {
        let dims = &self.shape.0;
        assert_eq!(dims.len(), 3, "at3_mut requires a rank-3 tensor");
        &mut self.data[(c * dims[1] + y) * dims[2] + x]
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Largest absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_len_and_display() {
        let s = Shape(vec![3, 4, 5]);
        assert_eq!(s.len(), 60);
        assert_eq!(s.to_string(), "[3×4×5]");
    }

    #[test]
    fn at3_indexing_is_row_major() {
        let mut t = Tensor::zeros(vec![2, 2, 3]);
        *t.at3_mut(1, 0, 2) = 7.0;
        assert_eq!(t.at3(1, 0, 2), 7.0);
        // Flat offset 8 = c·(h·w) + y·w + x = 1·6 + 0·3 + 2.
        assert_eq!(t.data()[8], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]).reshape(vec![2, 2]);
        assert_eq!(t.shape().0, vec![2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn from_vec_rejects_wrong_length() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0]);
    }
}
