//! Error type for network construction and serialization.

use std::error::Error;
use std::fmt;

/// Errors raised while building, lowering, or (de)serializing networks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NnError {
    /// Layer input size does not match the previous layer's output size.
    ShapeMismatch(String),
    /// A layer parameter is structurally invalid (e.g. empty weight matrix,
    /// ragged rows, zero stride).
    InvalidLayer(String),
    /// Serialized model could not be parsed.
    Parse(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch(why) => write!(f, "shape mismatch: {why}"),
            NnError::InvalidLayer(why) => write!(f, "invalid layer: {why}"),
            NnError::Parse(why) => write!(f, "parse error: {why}"),
        }
    }
}

impl Error for NnError {}
