//! Property-based checks of the network substrate.

use itne_nn::train::input_gradient;
use itne_nn::{AffineNetwork, Network, NetworkBuilder};
use proptest::prelude::*;

fn weight() -> impl Strategy<Value = f64> {
    // Well-scaled weights; avoids meaningless overflow cases.
    (-100i32..=100).prop_map(|v| v as f64 / 50.0)
}

/// A random dense network: 2-4 layers with widths 1-4.
fn random_dense_net() -> impl Strategy<Value = Network> {
    (
        1usize..=3,
        proptest::collection::vec(1usize..=4, 1..=3),
        proptest::collection::vec(weight(), 200),
    )
        .prop_map(|(input_dim, widths, ws)| {
            let mut k = 0;
            let mut take = |n: usize| {
                let s = &ws[k % ws.len()..];
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(s[i % s.len()]);
                }
                k += n;
                out
            };
            let mut b = NetworkBuilder::input(input_dim);
            let mut prev = input_dim;
            for (i, &w) in widths.iter().enumerate() {
                let rows_flat = take(w * prev);
                let bias = take(w);
                let rows: Vec<&[f64]> = rows_flat.chunks(prev).collect();
                let relu = i + 1 < widths.len(); // linear output layer
                b = b.dense(&rows, &bias, relu).expect("shapes are consistent");
                prev = w;
            }
            b.build()
        })
}

/// A random conv network over a small image.
fn random_conv_net() -> impl Strategy<Value = Network> {
    (
        1usize..=2,
        1usize..=2,
        0usize..=1,
        proptest::collection::vec(weight(), 64),
        1usize..=3,
    )
        .prop_map(|(out_c, stride, padding, ws, dense_out)| {
            let mut net = NetworkBuilder::input_image(1, 5, 5)
                .conv2d(out_c, 3, stride, padding, true)
                .expect("valid conv geometry")
                .flatten()
                .expect("flatten")
                .dense_zeros(dense_out, false)
                .expect("dense")
                .build();
            // Fill parameters deterministically from the sampled pool.
            let mut k = 0;
            let mut next = || {
                let v = ws[k % ws.len()];
                k += 1;
                v
            };
            for layer in net.layers_mut() {
                match layer {
                    itne_nn::Layer::Conv2d(c) => {
                        c.kernels.iter_mut().for_each(|w| *w = next());
                        c.bias.iter_mut().for_each(|b| *b = next());
                    }
                    itne_nn::Layer::Dense(d) => {
                        d.weights.iter_mut().for_each(|w| *w = next());
                        d.bias.iter_mut().for_each(|b| *b = next());
                    }
                    _ => {}
                }
            }
            net
        })
}

fn inputs_for(net: &Network) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        (-100i32..=100).prop_map(|v| v as f64 / 100.0),
        net.input_dim(),
    )
}

proptest! {
    // Fixed seed + bounded case count: CI runs are deterministic and any
    // failure reproduces locally with no persistence files.
    #![proptest_config(ProptestConfig {
        rng_seed: 0x17de_c0de_0003,
        ..ProptestConfig::with_cases(64)
    })]

    /// The lowered sparse-affine form computes exactly the same function.
    #[test]
    fn affine_lowering_equals_structured_forward(
        (net, x) in random_dense_net().prop_flat_map(|n| {
            let xs = inputs_for(&n);
            (Just(n), xs)
        })
    ) {
        let aff = AffineNetwork::from_network(&net).unwrap();
        let a = aff.forward(&x);
        let b = net.forward(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9, "affine {u} vs structured {v}");
        }
    }

    /// Same equivalence for conv/pool stacks.
    #[test]
    fn affine_lowering_equals_conv_forward(
        (net, x) in random_conv_net().prop_flat_map(|n| {
            let xs = inputs_for(&n);
            (Just(n), xs)
        })
    ) {
        let aff = AffineNetwork::from_network(&net).unwrap();
        let a = aff.forward(&x);
        let b = net.forward(&x);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9, "affine {u} vs structured {v}");
        }
    }

    /// Analytic input gradients match central finite differences (at points
    /// where no ReLU sits exactly on its kink).
    #[test]
    fn input_gradients_match_finite_differences(
        (net, x) in random_dense_net().prop_flat_map(|n| {
            let xs = inputs_for(&n);
            (Just(n), xs)
        })
    ) {
        let out_dim = net.output_dim();
        let dl = vec![1.0; out_dim];
        // Skip inputs that put any pre-activation within h of a ReLU kink —
        // the true function is non-differentiable there.
        let trace = net.forward_trace(&x);
        let h = 1e-6;
        let near_kink = trace.pre.iter().any(|t| t.data().iter().any(|v| v.abs() < 100.0 * h));
        prop_assume!(!near_kink);

        let g = input_gradient(&net, &x, &dl);
        let f = |p: &[f64]| net.forward(p).iter().sum::<f64>();
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (f(&xp) - f(&xm)) / (2.0 * h);
            prop_assert!((g[i] - fd).abs() < 1e-4, "grad[{i}]: {} vs fd {fd}", g[i]);
        }
    }

    /// Perturbing inputs outside a neuron's backward cone never changes the
    /// neuron's value (full-window cones).
    #[test]
    fn cone_captures_all_dependencies(
        (net, x) in random_conv_net().prop_flat_map(|n| {
            let xs = inputs_for(&n);
            (Just(n), xs)
        }),
        target_pick in 0usize..1000,
    ) {
        let aff = AffineNetwork::from_network(&net).unwrap();
        let last = aff.depth() - 1;
        let target = target_pick % aff.width(last);
        let cone = aff.cone(last, target, last + 1);

        let eval_target = |input: &[f64]| -> f64 {
            let mut cur = input.to_vec();
            for (li, l) in aff.layers.iter().enumerate() {
                let mut y: Vec<f64> = l.rows.iter().map(|r| r.eval(&cur)).collect();
                if l.relu {
                    y.iter_mut().for_each(|v| *v = v.max(0.0));
                }
                if li == last {
                    return y[target];
                }
                cur = y;
            }
            unreachable!()
        };

        let base = eval_target(&x);
        let mut perturbed = x.clone();
        for (i, p) in perturbed.iter_mut().enumerate() {
            if !cone.levels[0].contains(&i) {
                *p += 17.0; // wild perturbation outside the cone
            }
        }
        let after = eval_target(&perturbed);
        prop_assert!((base - after).abs() < 1e-9,
            "value changed from {base} to {after} via non-cone inputs");
    }
}
