//! Exact floating-point expansion arithmetic (Shewchuk-style).
//!
//! An [`Expansion`] represents a real number as an exact sum of
//! non-overlapping `f64` components, maintained with error-free
//! transformations: `two_sum` captures the exact rounding error of an IEEE
//! addition, `two_prod` (Dekker/Veltkamp splitting) the exact error of a
//! multiplication. Every `grow` is therefore *exact* — the expansion's
//! mathematical value never drifts — while staying in machine floats, which
//! makes it the fast path for certificate checking: no heap churn per
//! arithmetic op, unlike the vendored bignum in [`crate::dyadic`].
//!
//! The price is dynamic range. IEEE doubles overflow near 2³⁴⁰ inside the
//! splitting step and lose exactness in products that underflow toward the
//! subnormal range. Rather than reason about those corners, the expansion
//! **poisons itself** whenever an intermediate leaves the provably-exact
//! window, and the caller falls back to the slow exact-rational path. A
//! poisoned expansion never reports a sign, so there is no way to read an
//! inexact value out of this module.
//!
//! Exactness of the transformations assumes IEEE-754 binary64 with
//! round-to-nearest — the only mode Rust's `f64` arithmetic uses.

/// Exact error-free sum: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` exactly. Knuth's branch-free 6-op version; valid for any
/// ordering of `|a|`, `|b|` (exact in subnormals too, only overflow breaks
/// it — and then `s` is infinite, which the caller detects).
#[inline]
pub(crate) fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let aa = s - bb;
    let e = (a - aa) + (b - bb);
    (s, e)
}

/// Veltkamp splitter 2²⁷ + 1 for binary64.
const SPLITTER: f64 = 134_217_729.0;

/// Splits `a` into `hi + lo` with both halves fitting in 26 bits of
/// mantissa, so their pairwise products are exact. Overflows (to a NaN
/// `lo`) for `|a| ≥ 2⁹⁹⁶`; the caller detects the non-finite fallout.
#[inline]
fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let hi = c - (c - a);
    (hi, a - hi)
}

/// Exact error-free product: returns `(p, e)` with `p = fl(a · b)` and
/// `a · b = p + e` exactly, provided `p` is finite and `|p|` stays above
/// [`MIN_EXACT_PROD`] (no fused multiply-add — the workspace keeps to plain
/// IEEE ops for bit-reproducibility across targets).
#[inline]
pub(crate) fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let e = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, e)
}

/// Dekker's product error term is provably representable only while the
/// product stays clear of the subnormal range (`|a·b| ≥ 2⁻⁹⁶⁹` suffices).
/// Anything smaller — but nonzero — poisons the expansion instead of
/// silently losing low-order bits. 1e-290 is comfortably above 2⁻⁹⁶⁹ ≈
/// 2.0e-292.
const MIN_EXACT_PROD: f64 = 1e-290;

/// Inline component capacity. Zero-eliminated exact sums of
/// well-scaled data collapse to a handful of components (one per ~53-bit
/// stratum of the value's bit-span), so 16 is far beyond what certificate
/// checking produces in practice; an expansion that would exceed it poisons
/// itself and the caller falls back to the (equally exact) bignum path.
/// Keeping the storage inline makes the per-variable reduced-cost
/// accumulators allocation-free — the dominant win over the bignum.
const INLINE: usize = 16;

/// An exact sum of `f64` components, non-overlapping and sorted by
/// increasing magnitude (so the last component alone determines the sign).
/// Starts at zero; `grow`/`grow_prod`/`grow_scaled` add exactly or poison.
#[derive(Clone, Debug)]
pub(crate) struct Expansion {
    /// Non-overlapping components in `comps[..len]`, increasing magnitude,
    /// zeros elided.
    comps: [f64; INLINE],
    len: usize,
    /// Set when an intermediate left the exact window (or outgrew the
    /// inline capacity); the value is no longer trustworthy and `sign`
    /// refuses to answer.
    poisoned: bool,
}

impl Default for Expansion {
    fn default() -> Self {
        Self {
            comps: [0.0; INLINE],
            len: 0,
            poisoned: false,
        }
    }
}

impl Expansion {
    /// The zero expansion.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Whether any operation overflowed or underflowed out of the exact
    /// window. A poisoned expansion must be discarded.
    pub(crate) fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Adds the double `x` exactly (Shewchuk's GROW-EXPANSION with zero
    /// elimination, in place). Non-finite input or carry poisons.
    pub(crate) fn grow(&mut self, x: f64) {
        if self.poisoned || x == 0.0 {
            return;
        }
        if !x.is_finite() {
            self.poisoned = true;
            return;
        }
        let mut q = x;
        let mut k = 0;
        for i in 0..self.len {
            let (s, e) = two_sum(q, self.comps[i]);
            q = s;
            if e != 0.0 {
                self.comps[k] = e;
                k += 1;
            }
        }
        if !q.is_finite() {
            self.poisoned = true;
            return;
        }
        if q != 0.0 {
            if k == INLINE {
                // Can't happen unless the input expansion was already full
                // AND nothing collapsed; bail to the exact fallback.
                self.poisoned = true;
                return;
            }
            self.comps[k] = q;
            k += 1;
        }
        self.len = k;
    }

    /// Adds the exact product `a · b`. Note the underflow guard keys on the
    /// *operands*, not the rounded product: a nonzero `a · b` can round all
    /// the way to `0.0`, which must poison rather than vanish.
    pub(crate) fn grow_prod(&mut self, a: f64, b: f64) {
        let (p, e) = two_prod(a, b);
        if !p.is_finite() || (a != 0.0 && b != 0.0 && p.abs() < MIN_EXACT_PROD) {
            self.poisoned = true;
            return;
        }
        self.grow(e);
        self.grow(p);
    }

    /// Adds the exact product `other · b` (scale-and-accumulate over the
    /// other expansion's components).
    pub(crate) fn grow_scaled(&mut self, other: &Expansion, b: f64) {
        if other.poisoned {
            self.poisoned = true;
            return;
        }
        for &c in &other.comps[..other.len] {
            self.grow_prod(c, b);
        }
    }

    /// The exact sign of the represented value: −1, 0, or +1. `None` when
    /// poisoned — a poisoned expansion has no trustworthy sign.
    pub(crate) fn sign(&self) -> Option<i32> {
        if self.poisoned {
            return None;
        }
        // Non-overlapping + increasing magnitude: all lower components sum
        // to strictly less than the last one's magnitude, so it decides.
        Some(match self.comps[..self.len].last() {
            None => 0,
            Some(&c) if c > 0.0 => 1,
            Some(_) => -1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_captures_the_rounding_error() {
        let (s, e) = two_sum(1.0, 1e-17);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-17);
        let (s, e) = two_sum(0.1, 0.2);
        // 0.1 + 0.2 rounds up; the error term is the exact defect.
        assert_eq!(s, 0.30000000000000004);
        assert!(e < 0.0);
    }

    #[test]
    fn two_prod_captures_the_rounding_error() {
        let (p, e) = two_prod(0.1, 3.0);
        assert_eq!(p, 0.30000000000000004);
        assert!(e < 0.0, "f64(0.1)·3 is below the rounded product");
        let (p, e) = two_prod(3.0, 4.0);
        assert_eq!((p, e), (12.0, 0.0));
    }

    #[test]
    fn expansion_sums_exactly() {
        // 0.1 + 0.2 − 0.3 is famously nonzero in f64 — and the expansion
        // knows its exact sign.
        let mut x = Expansion::new();
        x.grow(0.1);
        x.grow(0.2);
        x.grow(-0.3);
        assert_eq!(x.sign(), Some(1));
        // Massive cancellation across magnitudes resolves exactly.
        let mut x = Expansion::new();
        x.grow(1e16);
        x.grow(1.0);
        x.grow(-1e16);
        x.grow(-1.0);
        assert_eq!(x.sign(), Some(0));
        let mut x = Expansion::new();
        x.grow(1e16);
        x.grow(-1.0);
        x.grow(-1e16);
        assert_eq!(x.sign(), Some(-1));
    }

    #[test]
    fn products_accumulate_exactly() {
        // Σ 0.1·3 − 0.3 computed exactly: f64(0.1)·3 > 0.3.
        let mut x = Expansion::new();
        x.grow_prod(0.1, 3.0);
        x.grow(-0.3);
        assert_eq!(x.sign(), Some(1));
        // … and f64(0.1)·3 < the rounded f64 product.
        let mut x = Expansion::new();
        x.grow_prod(0.1, 3.0);
        x.grow(-(0.1f64 * 3.0));
        assert_eq!(x.sign(), Some(-1));
    }

    #[test]
    fn overflow_and_underflow_poison() {
        let mut x = Expansion::new();
        x.grow_prod(1e200, 1e200);
        assert!(x.poisoned());
        assert_eq!(x.sign(), None);
        let mut x = Expansion::new();
        x.grow_prod(1e-200, 1e-200);
        assert!(x.poisoned(), "subnormal-range product must poison");
        // Splitter overflow on a huge-but-finite product.
        let mut x = Expansion::new();
        x.grow_prod(1e300, 1e-10);
        assert!(x.poisoned() || x.sign() == Some(1));
        let mut x = Expansion::new();
        x.grow(f64::NAN);
        assert!(x.poisoned());
    }

    #[test]
    fn poison_is_sticky_and_propagates() {
        let mut x = Expansion::new();
        x.grow_prod(1e200, 1e200);
        x.grow(1.0);
        assert!(x.poisoned());
        let mut y = Expansion::new();
        y.grow_scaled(&x, 2.0);
        assert!(y.poisoned());
    }
}
