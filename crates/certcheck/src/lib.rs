//! `itne_certcheck` — exact-rational validation of LP dual certificates.
//!
//! The simplex engines optimize in `f64`; this crate is the independent
//! skeptic that re-derives every reported bound in **exact** arithmetic. The
//! soundness argument is classic weak duality over bounded variables: for
//! the minimization problem
//!
//! ```text
//!   min cᵀx   s.t.   Ax {≤,≥,=} b,   lo ≤ x ≤ hi
//! ```
//!
//! any dual vector `y` with `yᵢ ≤ 0` on `≤`-rows and `yᵢ ≥ 0` on `≥`-rows
//! (free on `=`-rows) yields the lower bound
//!
//! ```text
//!   L(y) = yᵀb + Σⱼ min(dⱼ·loⱼ, dⱼ·hiⱼ),   d = c − Aᵀy,
//! ```
//!
//! valid for **every** `y` in that cone — not just the optimal one. The
//! checker therefore never trusts the solver: wrong-signed multipliers are
//! clamped to zero (which only loosens `L`), the reduction `d` is recomputed
//! from scratch, and all arithmetic is **exact**: a fast path in error-free
//! floating-point expansions ([`expansion`]) handles the overwhelmingly
//! common case where every intermediate stays in `f64` range, and the
//! vendored [`dyadic::Dyadic`] exact rationals take over whenever the
//! expansion path overflows or underflows out of its provably-exact window.
//! Either way a `Valid` verdict is a machine-checked proof that the
//! reported (already outward-snapped) bound dominates the true optimum. A
//! certificate that proves nothing — wrong duals, an unbounded dual
//! contribution through an infinite variable bound — returns
//! [`Verdict::Invalid`] and the caller falls back to its interval-arithmetic
//! bound, so a bad certificate can degrade tightness but never soundness.
//!
//! The same computation with a zero objective is a Farkas infeasibility
//! proof: `L(y) > 0` certifies that no feasible point exists
//! ([`verify_infeasibility`]).
//!
//! The crate is dependency-free (the bignum and the expansion arithmetic
//! are vendored) and does its work in one sparse mat-vec per certificate.

#![forbid(unsafe_code)]

pub mod dyadic;
mod expansion;

use dyadic::Dyadic;
use expansion::Expansion;
use std::cmp::Ordering;

/// Constraint comparison operator. Mirrors the solver's `Cmp`; re-declared
/// here so the checker stays free of solver dependencies.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RowCmp {
    /// `terms · x ≤ rhs`
    Le,
    /// `terms · x ≥ rhs`
    Ge,
    /// `terms · x = rhs`
    Eq,
}

/// Borrowed view of one constraint row `terms · x  cmp  rhs`, with sparse
/// `(variable index, coefficient)` terms.
#[derive(Copy, Clone, Debug)]
pub struct RowRef<'a> {
    /// Sparse row coefficients.
    pub terms: &'a [(usize, f64)],
    /// Comparison operator.
    pub cmp: RowCmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Outcome of a certificate check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The certificate proves the reported bound (or infeasibility).
    Valid,
    /// The certificate proves nothing; the reason is diagnostic only.
    Invalid(String),
}

impl Verdict {
    /// Whether the check passed.
    pub fn is_valid(&self) -> bool {
        matches!(self, Verdict::Valid)
    }
}

/// Verifies that `reported` soundly bounds the optimum of
/// `opt cᵀx + k  s.t.  rows, bounds` using the dual vector `row_duals`.
///
/// `objective`/`obj_constant` are in the caller's *original* orientation;
/// `maximize` selects the direction. For a maximization, `Valid` means
/// `reported ≥ max`; for a minimization, `reported ≤ min` — in both cases
/// proven in exact arithmetic, assuming only that the constraint data
/// (`rows`, `bounds`, `objective`) is the problem actually solved.
///
/// `row_duals` is interpreted against the internal minimize orientation the
/// engines use (costs negated for a maximization), which is the orientation
/// their certificates are emitted in. Multipliers outside the valid dual
/// cone are clamped to zero — clamping only loosens the proven bound, so the
/// verdict stays trustworthy for arbitrary (even adversarial) duals.
#[allow(clippy::too_many_arguments)]
pub fn verify_bound(
    num_vars: usize,
    rows: &[RowRef<'_>],
    bounds: &[(f64, f64)],
    objective: &[(usize, f64)],
    obj_constant: f64,
    maximize: bool,
    row_duals: &[f64],
    reported: f64,
) -> Verdict {
    if reported.is_nan() {
        return Verdict::Invalid("reported bound is NaN".into());
    }
    if reported.is_infinite() {
        // An infinite reported bound in the loosening direction is trivially
        // sound; in the tightening direction nothing can prove it.
        return if maximize == (reported > 0.0) {
            Verdict::Valid
        } else {
            Verdict::Invalid("reported bound is infinite in the tightening direction".into())
        };
    }
    // Tier 1: a plain-f64 forward-error filter. It can only *accept* — and
    // only when the margin provably clears every rounding error — so a
    // `Valid` from here is as trustworthy as one from the exact tiers. In
    // practice the reported bounds carry ≥ 1e-7 of deliberate outward slack
    // against errors of order 1e-13, so this tier decides almost every call.
    if let Some((l, l_err)) =
        dual_bound_filter(num_vars, rows, bounds, objective, maximize, row_duals)
    {
        if obj_constant.is_finite() {
            let margin = if maximize {
                reported - obj_constant + l
            } else {
                obj_constant + l - reported
            };
            let err = l_err
                + 4.0 * (f64::EPSILON * 0.5) * (l.abs() + obj_constant.abs() + reported.abs());
            if margin.is_finite() && err.is_finite() && margin > err {
                return Verdict::Valid;
            }
        }
    }
    // Tier 2: exact floating-point expansions (decides both ways).
    if let Some(v) = fast_verdict(
        num_vars,
        rows,
        bounds,
        objective,
        obj_constant,
        maximize,
        row_duals,
        reported,
    ) {
        return v;
    }
    // Tier 3: exact rationals — unlimited range, heap-heavy, last resort.
    slow_verdict(
        num_vars,
        rows,
        bounds,
        objective,
        obj_constant,
        maximize,
        row_duals,
        reported,
    )
}

/// The exact-rational (bignum) verdict — the fallback when the expansion
/// fast path leaves its provably-exact `f64` window: an intermediate
/// product or sum overflowed toward ±∞, or a nonzero product dipped under
/// ~1e-290 where Dekker's error term stops being representable.
#[allow(clippy::too_many_arguments)]
fn slow_verdict(
    num_vars: usize,
    rows: &[RowRef<'_>],
    bounds: &[(f64, f64)],
    objective: &[(usize, f64)],
    obj_constant: f64,
    maximize: bool,
    row_duals: &[f64],
    reported: f64,
) -> Verdict {
    // Internal minimize orientation: c′ = −c when maximizing.
    let mut costs = vec![Dyadic::zero(); num_vars];
    for &(j, c) in objective {
        let Some(cd) = Dyadic::from_f64(if maximize { -c } else { c }) else {
            return Verdict::Invalid(format!("non-finite objective coefficient on variable {j}"));
        };
        if j >= num_vars {
            return Verdict::Invalid(format!("objective names variable {j} out of range"));
        }
        costs[j] = costs[j].add(&cd);
    }
    let l = match dual_bound(num_vars, rows, bounds, &costs, row_duals) {
        Ok(l) => l,
        Err(reason) => return Verdict::Invalid(reason),
    };
    let Some(k) = Dyadic::from_f64(obj_constant) else {
        return Verdict::Invalid("non-finite objective constant".into());
    };
    let rep = Dyadic::from_f64(reported).expect("finite by the guards above");
    // Minimize: optimum ≥ k + L, so `reported ≤ k + L` proves domination.
    // Maximize: optimum ≤ k − L (costs were negated), so `reported ≥ k − L`.
    let proven = if maximize { k.sub(&l) } else { k.add(&l) };
    let ok = if maximize {
        rep.cmp(&proven) != Ordering::Less
    } else {
        rep.cmp(&proven) != Ordering::Greater
    };
    if ok {
        Verdict::Valid
    } else {
        Verdict::Invalid(format!(
            "reported bound {reported} is tighter than the certified bound"
        ))
    }
}

/// Verifies a Farkas infeasibility certificate: with a zero objective, a
/// dual bound `L(y) > 0` proves `rows` ∧ `bounds` has no feasible point.
pub fn verify_infeasibility(
    num_vars: usize,
    rows: &[RowRef<'_>],
    bounds: &[(f64, f64)],
    row_duals: &[f64],
) -> Verdict {
    // Tier 1: the f64 filter proves `L ≥ l − l_err`; strictly positive
    // after the discount means the Farkas proof certainly holds.
    if let Some((l, l_err)) = dual_bound_filter(num_vars, rows, bounds, &[], false, row_duals) {
        if l > l_err {
            return Verdict::Valid;
        }
    }
    match dual_bound_fast(num_vars, rows, bounds, &[], false, row_duals) {
        Ok(Some(l)) => {
            if let Some(s) = l.sign() {
                return if s > 0 {
                    Verdict::Valid
                } else {
                    Verdict::Invalid("Farkas bound is not strictly positive".into())
                };
            }
        }
        Ok(None) => {}
        Err(reason) => return Verdict::Invalid(reason),
    }
    let costs = vec![Dyadic::zero(); num_vars];
    match dual_bound(num_vars, rows, bounds, &costs, row_duals) {
        Ok(l) if l.sign() > 0 => Verdict::Valid,
        Ok(_) => Verdict::Invalid("Farkas bound is not strictly positive".into()),
        Err(reason) => Verdict::Invalid(reason),
    }
}

/// Tier-1 filter: evaluates the dual bound in plain `f64` alongside a
/// rigorous forward error bound. Returns `Some((l, l_err))` with the
/// guarantee `L ≥ l − l_err` for the exact dual bound `L` — the caller may
/// accept any claim that clears the error margin, and must escalate to an
/// exact tier for anything else. `None` means the filter cannot vouch at
/// all (malformed/non-finite data, or an uncertain reduced-cost sign next
/// to an infinite variable bound).
///
/// The error accounting is deliberately loose (standard `γₙ = n·u`-style
/// bounds inflated by small constant factors): with `u = 2⁻⁵³` the slack it
/// wastes is orders of magnitude below the 1e-7 outward padding every
/// reported bound already carries, and looseness only ever costs speed
/// (an unnecessary escalation), never soundness.
fn dual_bound_filter(
    num_vars: usize,
    rows: &[RowRef<'_>],
    bounds: &[(f64, f64)],
    objective: &[(usize, f64)],
    maximize: bool,
    row_duals: &[f64],
) -> Option<(f64, f64)> {
    const U: f64 = f64::EPSILON * 0.5; // unit roundoff, 2⁻⁵³
    if row_duals.len() != rows.len() || bounds.len() != num_vars {
        return None;
    }
    // d̃ ≈ c′ − Aᵀy with Σ|terms| alongside; each d̃ⱼ accumulates at most
    // `rows.len() + 1` addends, which bounds its summation error globally.
    let mut d = vec![0.0f64; num_vars];
    let mut dabs = vec![0.0f64; num_vars];
    for &(j, c) in objective {
        if j >= num_vars {
            return None;
        }
        let c = if maximize { -c } else { c };
        d[j] += c;
        dabs[j] += c.abs();
    }
    let mut l = 0.0f64;
    let mut labs = 0.0f64;
    let mut nl = 0u64;
    // Accumulated absolute error injected by the d̃ uncertainties.
    let mut derr = 0.0f64;
    for (row, &raw) in rows.iter().zip(row_duals) {
        let yi = if raw.is_finite() { raw } else { 0.0 };
        let yi = match row.cmp {
            RowCmp::Le => yi.min(0.0),
            RowCmp::Ge => yi.max(0.0),
            RowCmp::Eq => yi,
        };
        if yi == 0.0 {
            continue;
        }
        let t = yi * row.rhs;
        l += t;
        labs += t.abs();
        nl += 1;
        for &(j, a) in row.terms {
            if j >= num_vars {
                return None;
            }
            let t = yi * a;
            d[j] -= t;
            dabs[j] += t.abs();
        }
    }
    let per_d_err = 2.0 * U * (rows.len() as f64 + 2.0);
    for (j, (&dj, &(lo, hi))) in d.iter().zip(bounds).enumerate() {
        let daj = dabs[j];
        if daj == 0.0 {
            // No nonzero term ever touched dⱼ: it is exactly zero.
            continue;
        }
        // True dⱼ lies within ±ej of d̃ⱼ.
        let ej = per_d_err * daj;
        if dj - ej > 0.0 {
            // Certainly positive: the profitable side is the lower bound.
            if !lo.is_finite() {
                return None;
            }
            let t = dj * lo;
            l += t;
            labs += t.abs();
            nl += 1;
            derr += ej * lo.abs();
        } else if dj + ej < 0.0 {
            if !hi.is_finite() {
                return None;
            }
            let t = dj * hi;
            l += t;
            labs += t.abs();
            nl += 1;
            derr += ej * hi.abs();
        } else {
            // Sign uncertain: min over both candidates, discounted by the
            // worst the uncertainty can do — requires both sides finite.
            if !lo.is_finite() || !hi.is_finite() {
                return None;
            }
            let t = (dj * lo).min(dj * hi);
            l += t;
            labs += t.abs();
            nl += 1;
            derr += ej * lo.abs().max(hi.abs());
        }
    }
    // Product roundings + recursive-summation error over the `nl` addends
    // of `l`, plus the injected d̃ uncertainties (doubled: `derr` itself
    // was accumulated in floating point).
    let err = 4.0 * U * (nl as f64 + 2.0) * labs + 2.0 * derr;
    if !l.is_finite() || !err.is_finite() {
        return None;
    }
    Some((l, err))
}

/// The expansion fast path for [`verify_bound`]: returns `None` when an
/// intermediate left the provably-exact `f64` window (the caller then takes
/// the bignum path), otherwise the final verdict. Structural failures
/// (malformed lengths, out-of-range indices, non-finite data, an unbounded
/// profitable side) are decided here identically to the slow path — the
/// reduced-cost *signs* the decision rests on are exact.
#[allow(clippy::too_many_arguments)]
fn fast_verdict(
    num_vars: usize,
    rows: &[RowRef<'_>],
    bounds: &[(f64, f64)],
    objective: &[(usize, f64)],
    obj_constant: f64,
    maximize: bool,
    row_duals: &[f64],
    reported: f64,
) -> Option<Verdict> {
    let l = match dual_bound_fast(num_vars, rows, bounds, objective, maximize, row_duals) {
        Ok(Some(l)) => l,
        Ok(None) => return None,
        Err(reason) => return Some(Verdict::Invalid(reason)),
    };
    if !obj_constant.is_finite() {
        return Some(Verdict::Invalid("non-finite objective constant".into()));
    }
    // Minimize: optimum ≥ k + L, so `k + L − reported ≥ 0` proves the
    // reported lower bound. Maximize: optimum ≤ k − L, so the reported
    // upper bound needs `reported − (k − L) = reported − k + L ≥ 0`.
    let mut margin = l;
    if maximize {
        margin.grow(reported);
        margin.grow(-obj_constant);
    } else {
        margin.grow(obj_constant);
        margin.grow(-reported);
    }
    let s = margin.sign()?;
    Some(if s >= 0 {
        Verdict::Valid
    } else {
        Verdict::Invalid(format!(
            "reported bound {reported} is tighter than the certified bound"
        ))
    })
}

/// The dual bound `L(y)` as an exact expansion. `Ok(None)` means the
/// computation left the exact window and the caller must fall back to
/// [`dual_bound`]; `Err` means the certificate is structurally invalid (the
/// same conditions, in the same order, as the slow path reports).
fn dual_bound_fast(
    num_vars: usize,
    rows: &[RowRef<'_>],
    bounds: &[(f64, f64)],
    objective: &[(usize, f64)],
    maximize: bool,
    row_duals: &[f64],
) -> Result<Option<Expansion>, String> {
    if row_duals.len() != rows.len() {
        return Err(format!(
            "certificate has {} duals for {} rows",
            row_duals.len(),
            rows.len()
        ));
    }
    if bounds.len() != num_vars {
        return Err(format!(
            "{} variable bounds for {num_vars} variables",
            bounds.len()
        ));
    }
    // Reduced costs d = c′ − Aᵀy, one exact expansion per variable (empty
    // expansions don't allocate, so this is one Vec for the whole check).
    let mut d: Vec<Expansion> = vec![Expansion::new(); num_vars];
    for &(j, c) in objective {
        if !c.is_finite() {
            return Err(format!("non-finite objective coefficient on variable {j}"));
        }
        if j >= num_vars {
            return Err(format!("objective names variable {j} out of range"));
        }
        d[j].grow(if maximize { -c } else { c });
    }
    let mut l = Expansion::new();
    for (row, &raw) in rows.iter().zip(row_duals) {
        // Clamp into the dual cone (and drop non-finite garbage): any
        // remaining multiplier yields a valid — possibly looser — bound.
        let yi = if raw.is_finite() { raw } else { 0.0 };
        let yi = match row.cmp {
            RowCmp::Le => yi.min(0.0),
            RowCmp::Ge => yi.max(0.0),
            RowCmp::Eq => yi,
        };
        if yi == 0.0 {
            continue;
        }
        if !row.rhs.is_finite() {
            return Err("non-finite row rhs".into());
        }
        l.grow_prod(yi, row.rhs);
        for &(j, a) in row.terms {
            if j >= num_vars {
                return Err(format!("row names variable {j} out of range"));
            }
            if !a.is_finite() {
                return Err(format!("non-finite coefficient on variable {j}"));
            }
            d[j].grow_prod(-yi, a);
        }
    }
    for (j, (dj, &(lo, hi))) in d.iter().zip(bounds).enumerate() {
        let Some(s) = dj.sign() else {
            return Ok(None);
        };
        if s == 0 {
            continue;
        }
        // dⱼ > 0 pushes xⱼ to its lower bound, dⱼ < 0 to its upper; an
        // infinite bound on the profitable side sends L to −∞.
        let b = if s < 0 { hi } else { lo };
        if !b.is_finite() {
            return Err(format!(
                "nonzero reduced cost on variable {j} with an unbounded profitable side"
            ));
        }
        l.grow_scaled(dj, b);
    }
    if l.poisoned() {
        return Ok(None);
    }
    Ok(Some(l))
}

/// The exact dual lower bound `L(y) = yᵀb + Σⱼ min(dⱼ·loⱼ, dⱼ·hiⱼ)` with
/// `d = c − Aᵀy`, after clamping `y` into the valid dual cone.
/// `Err` means `L = −∞` (or malformed data): the certificate proves nothing.
fn dual_bound(
    num_vars: usize,
    rows: &[RowRef<'_>],
    bounds: &[(f64, f64)],
    costs: &[Dyadic],
    row_duals: &[f64],
) -> Result<Dyadic, String> {
    if row_duals.len() != rows.len() {
        return Err(format!(
            "certificate has {} duals for {} rows",
            row_duals.len(),
            rows.len()
        ));
    }
    if bounds.len() != num_vars {
        return Err(format!(
            "{} variable bounds for {num_vars} variables",
            bounds.len()
        ));
    }
    let mut d: Vec<Dyadic> = costs.to_vec();
    let mut l = Dyadic::zero();
    for (row, &raw) in rows.iter().zip(row_duals) {
        // Clamp into the dual cone (and drop non-finite garbage): any
        // remaining multiplier yields a valid — possibly looser — bound.
        let yi = if raw.is_finite() { raw } else { 0.0 };
        let yi = match row.cmp {
            RowCmp::Le => yi.min(0.0),
            RowCmp::Ge => yi.max(0.0),
            RowCmp::Eq => yi,
        };
        if yi == 0.0 {
            continue;
        }
        let y = Dyadic::from_f64(yi).expect("finite after clamping");
        let Some(rhs) = Dyadic::from_f64(row.rhs) else {
            return Err("non-finite row rhs".into());
        };
        l = l.add(&y.mul(&rhs));
        for &(j, a) in row.terms {
            if j >= num_vars {
                return Err(format!("row names variable {j} out of range"));
            }
            let Some(ad) = Dyadic::from_f64(a) else {
                return Err(format!("non-finite coefficient on variable {j}"));
            };
            d[j] = d[j].sub(&y.mul(&ad));
        }
    }
    for (j, (dj, &(lo, hi))) in d.iter().zip(bounds).enumerate() {
        if dj.is_zero() {
            continue;
        }
        // dⱼ > 0 pushes xⱼ to its lower bound, dⱼ < 0 to its upper; an
        // infinite bound on the profitable side sends L to −∞.
        let b = if dj.sign() < 0 { hi } else { lo };
        let Some(bv) = Dyadic::from_f64(b) else {
            return Err(format!(
                "nonzero reduced cost on variable {j} with an unbounded profitable side"
            ));
        };
        l = l.add(&dj.mul(&bv));
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (row terms, variable bounds, objective terms) of a test problem.
    type Problem = (Vec<(usize, f64)>, Vec<(f64, f64)>, Vec<(usize, f64)>);

    /// `min x  s.t.  x ≥ 1, 0 ≤ x ≤ 10`: optimum 1, dual y = 1 on the
    /// single `≥` row gives d = 1 − 1 = 0 and L = 1·1 = 1.
    fn tiny_min() -> Problem {
        let terms = vec![(0usize, 1.0)];
        let bounds = vec![(0.0, 10.0)];
        let objective = vec![(0usize, 1.0)];
        (terms, bounds, objective)
    }

    #[test]
    fn valid_minimize_certificate_accepted() {
        let (terms, bounds, objective) = tiny_min();
        let rows = [RowRef {
            terms: &terms,
            cmp: RowCmp::Ge,
            rhs: 1.0,
        }];
        // Reported lower bounds at and below the optimum pass …
        for reported in [1.0, 1.0 - 1e-7, 0.5, -3.0] {
            let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[1.0], reported);
            assert!(v.is_valid(), "reported {reported}: {v:?}");
        }
        // … and anything strictly above it is rejected.
        let v = verify_bound(
            1,
            &rows,
            &bounds,
            &objective,
            0.0,
            false,
            &[1.0],
            1.0 + 1e-9,
        );
        assert!(!v.is_valid());
    }

    #[test]
    fn corrupted_certificate_rejected() {
        let (terms, bounds, objective) = tiny_min();
        let rows = [RowRef {
            terms: &terms,
            cmp: RowCmp::Ge,
            rhs: 1.0,
        }];
        // A corrupted dual (0.5 instead of 1): L = 0.5 + min over d = 0.5·lo
        // … d = 1 − 0.5 = 0.5 ≥ 0 at lo = 0, so L = 0.5 only proves
        // bounds ≤ 0.5 — the true reported bound 0.99 must be rejected.
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[0.5], 0.99);
        assert!(!v.is_valid(), "corrupted dual must not certify: {v:?}");
        // A zeroed certificate proves only L = 0.
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[0.0], 0.99);
        assert!(!v.is_valid());
        // Wrong length is malformed.
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[], 0.5);
        assert!(!v.is_valid());
    }

    #[test]
    fn maximize_certificate_and_constant() {
        // max 2x + 3  s.t.  x ≤ 4, 0 ≤ x ≤ 10: optimum 11. Internally
        // min −2x; dual on the ≤ row is y = −2: d = −2 − (−2) = 0,
        // L = (−2)·4 = −8, bound = k − L = 3 + 8 = 11.
        let terms = vec![(0usize, 1.0)];
        let rows = [RowRef {
            terms: &terms,
            cmp: RowCmp::Le,
            rhs: 4.0,
        }];
        let bounds = vec![(0.0, 10.0)];
        let objective = vec![(0usize, 2.0)];
        let ok = verify_bound(1, &rows, &bounds, &objective, 3.0, true, &[-2.0], 11.0);
        assert!(ok.is_valid(), "{ok:?}");
        let ok = verify_bound(1, &rows, &bounds, &objective, 3.0, true, &[-2.0], 11.5);
        assert!(ok.is_valid(), "looser is still sound: {ok:?}");
        let bad = verify_bound(1, &rows, &bounds, &objective, 3.0, true, &[-2.0], 10.9999);
        assert!(!bad.is_valid(), "tighter than provable must fail");
    }

    #[test]
    fn wrong_signed_duals_are_clamped_not_trusted() {
        let (terms, bounds, objective) = tiny_min();
        let rows = [RowRef {
            terms: &terms,
            cmp: RowCmp::Ge,
            rhs: 1.0,
        }];
        // y = −5 on a ≥ row is outside the dual cone; clamped to 0 the
        // certificate proves only L = 0 + min(1·0, 1·10) = 0.
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[-5.0], 0.0);
        assert!(v.is_valid(), "clamped certificate still proves 0: {v:?}");
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[-5.0], 0.5);
        assert!(!v.is_valid(), "clamped certificate must not prove 0.5");
        // NaN duals are dropped the same way.
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[f64::NAN], 0.0);
        assert!(v.is_valid());
    }

    #[test]
    fn infinite_profitable_bound_blocks_proof() {
        // min x with x free below: any nonzero reduced cost on x makes the
        // dual bound −∞; the checker must refuse rather than certify.
        let bounds = vec![(f64::NEG_INFINITY, 10.0)];
        let objective = vec![(0usize, 1.0)];
        let v = verify_bound(1, &[], &bounds, &objective, 0.0, false, &[], -100.0);
        assert!(!v.is_valid(), "{v:?}");
        // With d = 0 (zero objective) the same bounds are fine: L = 0.
        let v = verify_bound(1, &[], &bounds, &[], 0.0, false, &[], -1.0);
        assert!(v.is_valid(), "{v:?}");
    }

    #[test]
    fn unconstrained_box_bound() {
        // min 3x over 2 ≤ x ≤ 5 with no rows: L = 3·2 = 6.
        let bounds = vec![(2.0, 5.0)];
        let objective = vec![(0usize, 3.0)];
        let v = verify_bound(1, &[], &bounds, &objective, 0.0, false, &[], 6.0);
        assert!(v.is_valid(), "{v:?}");
        let v = verify_bound(1, &[], &bounds, &objective, 0.0, false, &[], 6.0 + 1e-12);
        assert!(!v.is_valid());
    }

    #[test]
    fn exactness_catches_sub_ulp_cheating() {
        // min 0.1·x  s.t.  x ≥ 3, 0 ≤ x ≤ 10, dual y = 0.1: the exact dual
        // bound is L = f64(0.1)·3 ≈ 0.300000000000000016653…, strictly
        // between f64(0.3) below and the f64 product `0.1 * 3.0` above.
        // The rounded f64 product overshoots L by under one ulp and must be
        // rejected as a lower bound; the f64 literal 0.3 sits just below L
        // and is a valid (slightly loose) one. No f64 checker can see the
        // gap — both candidates are within an ulp of L.
        let terms = vec![(0usize, 1.0)];
        let rows = [RowRef {
            terms: &terms,
            cmp: RowCmp::Ge,
            rhs: 3.0,
        }];
        let bounds = vec![(0.0, 10.0)];
        let objective = vec![(0usize, 0.1)];
        let rounded_product = 0.1f64 * 3.0; // 0.30000000000000004…, above L
        let v = verify_bound(
            1,
            &rows,
            &bounds,
            &objective,
            0.0,
            false,
            &[0.1],
            rounded_product,
        );
        assert!(!v.is_valid(), "f64(0.1)*3.0 rounds above L — must fail");
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[0.1], 0.3);
        assert!(v.is_valid(), "f64(0.3) < L — sound lower bound: {v:?}");
    }

    #[test]
    fn farkas_infeasibility() {
        // x ≥ 3 ∧ x ≤ 2 is infeasible; y = (1, −1) gives L = 3 − 2 = 1 > 0.
        let terms = vec![(0usize, 1.0)];
        let rows = [
            RowRef {
                terms: &terms,
                cmp: RowCmp::Ge,
                rhs: 3.0,
            },
            RowRef {
                terms: &terms,
                cmp: RowCmp::Le,
                rhs: 2.0,
            },
        ];
        let bounds = vec![(0.0, 10.0)];
        assert!(verify_infeasibility(1, &rows, &bounds, &[1.0, -1.0]).is_valid());
        // The zero vector proves nothing.
        assert!(!verify_infeasibility(1, &rows, &bounds, &[0.0, 0.0]).is_valid());
        // Bound-driven infeasibility: x ≥ 5 with x ≤ 4 box: y = 1,
        // d = −1 < 0 uses hi = 4: L = 5 − 4 = 1 > 0.
        let rows = [RowRef {
            terms: &terms,
            cmp: RowCmp::Ge,
            rhs: 5.0,
        }];
        let bounds = vec![(0.0, 4.0)];
        assert!(verify_infeasibility(1, &rows, &bounds, &[1.0]).is_valid());
    }

    /// The expansion fast path and the bignum slow path must render the
    /// same verdict on every problem the fast path accepts. Deterministic
    /// LCG-driven battery over awkward coefficients (dyadic-inexact
    /// decimals, large magnitude spreads, wrong-signed and NaN duals).
    #[test]
    fn fast_and_slow_paths_agree() {
        fn lcg(state: &mut u64) -> u64 {
            *state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *state
        }
        const PALETTE: [f64; 15] = [
            0.1,
            -0.2,
            0.3,
            1.0,
            -1.0,
            3.0,
            1e-7,
            -1e-7,
            1e6,
            -1e6,
            0.7,
            1e12,
            -13.25,
            0.0,
            f64::NAN,
        ];
        fn pick(state: &mut u64, allow_nan: bool) -> f64 {
            loop {
                let v = PALETTE[(lcg(state) % PALETTE.len() as u64) as usize];
                if allow_nan || !v.is_nan() {
                    return v;
                }
            }
        }
        let mut st = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..200 {
            let nv = (lcg(&mut st) % 4 + 1) as usize;
            let nr = (lcg(&mut st) % 4) as usize;
            let term_store: Vec<Vec<(usize, f64)>> = (0..nr)
                .map(|_| (0..nv).map(|j| (j, pick(&mut st, false))).collect())
                .collect();
            let cmps: Vec<RowCmp> = (0..nr)
                .map(|_| match lcg(&mut st) % 3 {
                    0 => RowCmp::Le,
                    1 => RowCmp::Ge,
                    _ => RowCmp::Eq,
                })
                .collect();
            let rhss: Vec<f64> = (0..nr).map(|_| pick(&mut st, false)).collect();
            let rows: Vec<RowRef<'_>> = (0..nr)
                .map(|r| RowRef {
                    terms: &term_store[r],
                    cmp: cmps[r],
                    rhs: rhss[r],
                })
                .collect();
            let bounds: Vec<(f64, f64)> = (0..nv)
                .map(|_| {
                    let a = pick(&mut st, false);
                    let b = pick(&mut st, false);
                    (a.min(b), a.max(b))
                })
                .collect();
            let objective: Vec<(usize, f64)> = (0..nv).map(|j| (j, pick(&mut st, false))).collect();
            let duals: Vec<f64> = (0..nr).map(|_| pick(&mut st, true)).collect();
            let maximize = lcg(&mut st).is_multiple_of(2);
            let reported = pick(&mut st, false);
            let fast = fast_verdict(
                nv, &rows, &bounds, &objective, 0.5, maximize, &duals, reported,
            )
            .expect("palette magnitudes stay inside the exact window");
            let slow = slow_verdict(
                nv, &rows, &bounds, &objective, 0.5, maximize, &duals, reported,
            );
            assert_eq!(
                fast.is_valid(),
                slow.is_valid(),
                "paths disagree: fast {fast:?} vs slow {slow:?} \
                 (rows {rows:?}, bounds {bounds:?}, obj {objective:?}, \
                 duals {duals:?}, maximize {maximize}, reported {reported})"
            );
            // The public entry point routes through the f64 filter first;
            // whatever tier decides, the verdict must match the bignum's.
            let full = verify_bound(
                nv, &rows, &bounds, &objective, 0.5, maximize, &duals, reported,
            );
            assert_eq!(
                full.is_valid(),
                slow.is_valid(),
                "filtered chain disagrees with the bignum path: {full:?} vs {slow:?} \
                 (rows {rows:?}, bounds {bounds:?}, obj {objective:?}, \
                 duals {duals:?}, maximize {maximize}, reported {reported})"
            );
        }
    }

    /// Magnitudes whose products overflow f64 poison the fast path; the
    /// public entry point must still verify exactly via the bignum fallback.
    #[test]
    fn overflow_falls_back_to_the_bignum_path() {
        // min (1.7e308 + 1.7e308)·x over 1 ≤ x ≤ 2: the exact cost
        // 3.4·10³⁰⁸ exists only as a bignum — summing the duplicate
        // objective terms overflows and poisons the expansion path.
        let objective = vec![(0usize, 1.7e308), (0usize, 1.7e308)];
        let bounds = vec![(1.0, 2.0)];
        assert!(
            fast_verdict(1, &[], &bounds, &objective, 0.0, false, &[], 1.0e308).is_none(),
            "sums past f64 range must defer to the slow path"
        );
        // Exact L = 3.4e308·1 dominates any finite reported lower bound …
        let v = verify_bound(1, &[], &bounds, &objective, 0.0, false, &[], 1.0e308);
        assert!(v.is_valid(), "{v:?}");
        let v = verify_bound(1, &[], &bounds, &objective, 0.0, false, &[], f64::MAX);
        assert!(v.is_valid(), "even f64::MAX is below the exact optimum");
        // … and with −2 ≤ x ≤ −1 the exact L = −6.8e308 lies below every
        // finite f64, so no finite reported lower bound can validate.
        let bounds_neg = vec![(-2.0, -1.0)];
        let v = verify_bound(1, &[], &bounds_neg, &objective, 0.0, false, &[], -1.0e308);
        assert!(!v.is_valid(), "tighter than the exact bound must fail");
        // Products that underflow out of f64 entirely (1e-200 · 3e-200
        // rounds to 0.0) take the same detour — the exact dual bound
        // 3·10⁻⁴⁰⁰ > 0 exists only on the bignum path.
        let terms = vec![(0usize, 1e-200)];
        let rows = [RowRef {
            terms: &terms,
            cmp: RowCmp::Ge,
            rhs: 3e-200,
        }];
        let objective = vec![(0usize, 1e-200)];
        assert!(fast_verdict(1, &rows, &bounds, &objective, 0.0, false, &[1e-200], 0.0).is_none());
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[1e-200], 0.0);
        assert!(v.is_valid(), "{v:?}");
    }

    #[test]
    fn infinite_reported_bounds() {
        let (terms, bounds, objective) = tiny_min();
        let rows = [RowRef {
            terms: &terms,
            cmp: RowCmp::Ge,
            rhs: 1.0,
        }];
        // −∞ is a trivially sound lower bound, +∞ is not provable as one.
        let v = verify_bound(
            1,
            &rows,
            &bounds,
            &objective,
            0.0,
            false,
            &[1.0],
            f64::NEG_INFINITY,
        );
        assert!(v.is_valid());
        let v = verify_bound(
            1,
            &rows,
            &bounds,
            &objective,
            0.0,
            false,
            &[1.0],
            f64::INFINITY,
        );
        assert!(!v.is_valid());
        let v = verify_bound(1, &rows, &bounds, &objective, 0.0, false, &[1.0], f64::NAN);
        assert!(!v.is_valid());
    }
}
