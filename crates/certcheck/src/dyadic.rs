//! Exact dyadic-rational arithmetic on arbitrary-precision integers.
//!
//! Every finite `f64` is a dyadic rational `±m · 2^e`, and the three
//! operations the certificate checker needs — addition, multiplication, and
//! comparison — are *closed* over dyadic rationals, so no denominators other
//! than powers of two ever appear and no division is required. A [`Dyadic`]
//! stores the magnitude as little-endian 64-bit limbs plus a binary
//! exponent; all arithmetic is exact, with no rounding anywhere.
//!
//! The representation is kept canonical (no high zero limbs, an odd lowest
//! limb, `+0` for zero), so structural equality coincides with numerical
//! equality and `Eq`/`Ord` are the true ordering of the represented values.

use std::cmp::Ordering;

/// An exact dyadic rational `(-1)^neg · mag · 2^exp`.
///
/// `mag` is little-endian base-2⁶⁴; the canonical form has no trailing
/// high zero limb and an odd `mag[0]` (zero is `{neg: false, mag: [], exp: 0}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dyadic {
    neg: bool,
    mag: Vec<u64>,
    exp: i64,
}

impl Dyadic {
    /// Exact zero.
    pub fn zero() -> Self {
        Dyadic {
            neg: false,
            mag: Vec::new(),
            exp: 0,
        }
    }

    /// Converts a *finite* `f64` exactly; `None` for NaN or ±∞.
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Self::zero());
        }
        let bits = v.to_bits();
        let neg = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mant, exp) = if biased == 0 {
            // Subnormal: value = frac · 2⁻¹⁰⁷⁴.
            (frac, -1074)
        } else {
            (frac | (1u64 << 52), biased - 1075)
        };
        Some(normalize(neg, vec![mant], exp))
    }

    /// Converts an integer exactly (convenience for tests and constants).
    pub fn from_i64(v: i64) -> Self {
        let neg = v < 0;
        let mag = v.unsigned_abs();
        normalize(neg, vec![mag], 0)
    }

    /// `-1`, `0`, or `1`.
    pub fn sign(&self) -> i32 {
        if self.mag.is_empty() {
            0
        } else if self.neg {
            -1
        } else {
            1
        }
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mag.is_empty()
    }

    /// Exact negation.
    pub fn negated(&self) -> Self {
        if self.is_zero() {
            Self::zero()
        } else {
            Dyadic {
                neg: !self.neg,
                mag: self.mag.clone(),
                exp: self.exp,
            }
        }
    }

    /// Exact sum.
    pub fn add(&self, other: &Dyadic) -> Dyadic {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let exp = self.exp.min(other.exp);
        let a = shl(&self.mag, (self.exp - exp) as u64);
        let b = shl(&other.mag, (other.exp - exp) as u64);
        let (neg, mag) = if self.neg == other.neg {
            (self.neg, add_mag(&a, &b))
        } else {
            match cmp_mag(&a, &b) {
                Ordering::Greater => (self.neg, sub_mag(&a, &b)),
                Ordering::Less => (other.neg, sub_mag(&b, &a)),
                Ordering::Equal => (false, Vec::new()),
            }
        };
        normalize(neg, mag, exp)
    }

    /// Exact difference.
    pub fn sub(&self, other: &Dyadic) -> Dyadic {
        self.add(&other.negated())
    }

    /// Exact product.
    pub fn mul(&self, other: &Dyadic) -> Dyadic {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        normalize(
            self.neg != other.neg,
            mul_mag(&self.mag, &other.mag),
            self.exp + other.exp,
        )
    }
}

impl Ord for Dyadic {
    fn cmp(&self, other: &Self) -> Ordering {
        let (sa, sb) = (self.sign(), other.sign());
        if sa != sb {
            return sa.cmp(&sb);
        }
        if sa == 0 {
            return Ordering::Equal;
        }
        let mag_ord = cmp_abs(self, other);
        if self.neg {
            mag_ord.reverse()
        } else {
            mag_ord
        }
    }
}

impl PartialOrd for Dyadic {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Compares `|a|` against `|b|` (both non-zero).
fn cmp_abs(a: &Dyadic, b: &Dyadic) -> Ordering {
    // The exponent of the most significant bit decides unless equal.
    let msb = |d: &Dyadic| {
        let top = *d.mag.last().expect("non-zero");
        d.exp + d.mag.len() as i64 * 64 - i64::from(top.leading_zeros())
    };
    match msb(a).cmp(&msb(b)) {
        Ordering::Equal => {}
        ord => return ord,
    }
    let exp = a.exp.min(b.exp);
    let am = shl(&a.mag, (a.exp - exp) as u64);
    let bm = shl(&b.mag, (b.exp - exp) as u64);
    cmp_mag(&am, &bm)
}

/// Canonicalizes: strips high zero limbs, shifts out trailing zero bits into
/// the exponent, and maps zero to the unique `+0 · 2⁰`.
fn normalize(neg: bool, mut mag: Vec<u64>, mut exp: i64) -> Dyadic {
    while mag.last() == Some(&0) {
        mag.pop();
    }
    if mag.is_empty() {
        return Dyadic::zero();
    }
    let zero_limbs = mag.iter().take_while(|&&w| w == 0).count();
    if zero_limbs > 0 {
        mag.drain(..zero_limbs);
        exp += 64 * zero_limbs as i64;
    }
    let tz = mag[0].trailing_zeros();
    if tz > 0 {
        mag = shr_small(&mag, tz);
        exp += i64::from(tz);
    }
    Dyadic { neg, mag, exp }
}

/// Left-shifts a limb vector by `bits` (any amount), stripping high zeros.
fn shl(mag: &[u64], bits: u64) -> Vec<u64> {
    if mag.is_empty() {
        return Vec::new();
    }
    if bits == 0 {
        return mag.to_vec();
    }
    let limb_shift = (bits / 64) as usize;
    let bit_shift = (bits % 64) as u32;
    let mut out = vec![0u64; limb_shift + mag.len() + 1];
    for (i, &w) in mag.iter().enumerate() {
        out[limb_shift + i] |= w << bit_shift;
        if bit_shift > 0 {
            out[limb_shift + i + 1] |= w >> (64 - bit_shift);
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Right-shifts by fewer than 64 bits (shifted-out bits must be zero).
fn shr_small(mag: &[u64], bits: u32) -> Vec<u64> {
    if bits == 0 {
        return mag.to_vec();
    }
    let mut out = vec![0u64; mag.len()];
    for i in 0..mag.len() {
        out[i] = mag[i] >> bits;
        if i + 1 < mag.len() {
            out[i] |= mag[i + 1] << (64 - bits);
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {}
        ord => return ord,
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => {}
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &w) in long.iter().enumerate() {
        let s = short.get(i).copied().unwrap_or(0);
        let (x, c1) = w.overflowing_add(s);
        let (x, c2) = x.overflowing_add(carry);
        out.push(x);
        carry = u64::from(c1) + u64::from(c2);
    }
    if carry > 0 {
        out.push(carry);
    }
    out
}

/// `a - b`; requires `a ≥ b`.
fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &w) in a.iter().enumerate() {
        let s = b.get(i).copied().unwrap_or(0);
        let (x, b1) = w.overflowing_sub(s);
        let (x, b2) = x.overflowing_sub(borrow);
        out.push(x);
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0, "sub_mag requires a >= b");
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Schoolbook multiplication through `u128` partial products.
fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let cur = u128::from(out[i + j]) + u128::from(ai) * u128::from(bj) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry > 0 {
            let cur = u128::from(out[k]) + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: f64) -> Dyadic {
        Dyadic::from_f64(v).expect("finite")
    }

    #[test]
    fn non_finite_rejected() {
        assert!(Dyadic::from_f64(f64::NAN).is_none());
        assert!(Dyadic::from_f64(f64::INFINITY).is_none());
        assert!(Dyadic::from_f64(f64::NEG_INFINITY).is_none());
        assert_eq!(d(0.0), Dyadic::zero());
        assert_eq!(d(-0.0), Dyadic::zero());
    }

    #[test]
    fn exactness_of_binary_fractions() {
        // 0.1 and 0.2 are *not* exact tenths; their exact f64 sum exceeds
        // the f64 nearest to 0.3. Exact arithmetic must see that.
        let sum = d(0.1).add(&d(0.2));
        assert_eq!(sum.cmp(&d(0.3)), Ordering::Greater);
        // Powers of two are exact and arithmetic on them round-trips.
        assert_eq!(d(0.5).add(&d(0.25)), d(0.75));
        assert_eq!(d(1.5).mul(&d(2.5)), d(3.75));
        assert_eq!(d(-3.0).mul(&d(4.0)), d(-12.0));
    }

    #[test]
    fn wide_exponent_alignment() {
        // 1e300 + 1e-300 is strictly greater than 1e300 in exact arithmetic
        // even though f64 addition would round it away.
        let big = d(1e300);
        let tiny = d(1e-300);
        let sum = big.add(&tiny);
        assert_eq!(sum.cmp(&big), Ordering::Greater);
        assert_eq!(sum.sub(&tiny), big);
        assert_eq!(sum.sub(&big), tiny);
    }

    #[test]
    fn subnormals_are_exact() {
        let eps = d(f64::MIN_POSITIVE * f64::EPSILON); // smallest subnormal
        assert_eq!(eps.sign(), 1);
        assert_eq!(eps.add(&eps), eps.mul(&Dyadic::from_i64(2)));
        assert_eq!(eps.sub(&eps), Dyadic::zero());
    }

    #[test]
    fn ordering_and_signs() {
        assert!(d(-1.0) < d(-0.5));
        assert!(d(-0.5) < Dyadic::zero());
        assert!(Dyadic::zero() < d(1e-12));
        assert!(d(2.0) < d(3.0));
        assert_eq!(d(7.25).negated().sign(), -1);
        assert_eq!(d(7.25).negated().add(&d(7.25)), Dyadic::zero());
    }

    #[test]
    fn multi_limb_carries() {
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1 exercises limb carries.
        let big = Dyadic {
            neg: false,
            mag: vec![u64::MAX],
            exp: 0,
        };
        let sq = big.mul(&big);
        let expect = normalize(false, vec![1, u64::MAX - 1], 0);
        assert_eq!(sq, expect);
        // Addition chain vs multiplication by an integer.
        let three = Dyadic::from_i64(3);
        assert_eq!(big.add(&big).add(&big), big.mul(&three));
    }
}
