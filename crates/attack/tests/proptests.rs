//! Property-based checks of the attack crate: attacks never escape their
//! constraint set, and never beat sound certified bounds.

use itne_attack::{fgsm_variation, pgd_variation, PgdOptions};
use itne_core::{certify_global, CertifyOptions};
use itne_nn::{Network, NetworkBuilder};
use proptest::prelude::*;

fn random_net() -> impl Strategy<Value = Network> {
    (
        2usize..=4,
        1usize..=3,
        proptest::collection::vec((-50i32..=50).prop_map(|v| v as f64 / 25.0), 80),
    )
        .prop_map(|(input, hidden, pool)| {
            let mut k = 0usize;
            let mut next = |n: usize| {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(pool[k % pool.len()]);
                    k += 1;
                }
                v
            };
            let flat = next(hidden * input);
            let bias = next(hidden);
            let rows: Vec<&[f64]> = flat.chunks(input).collect();
            let b = NetworkBuilder::input(input)
                .dense(&rows, &bias, true)
                .expect("consistent");
            let flat2 = next(hidden);
            let rows2: Vec<&[f64]> = flat2.chunks(hidden).collect();
            b.dense(&rows2, &next(1), false)
                .expect("consistent")
                .build()
        })
}

proptest! {
    // Fixed seed + bounded case count: CI runs are deterministic and any
    // failure reproduces locally with no persistence files.
    #![proptest_config(ProptestConfig {
        rng_seed: 0x17de_c0de_0004,
        ..ProptestConfig::with_cases(64)
    })]

    /// PGD/FGSM outputs stay within the δ-ball and the domain.
    #[test]
    fn attacks_respect_constraints(
        net in random_net(),
        x_raw in proptest::collection::vec(0i32..=100, 4),
        delta_pct in 1u32..=20,
    ) {
        let dim = net.input_dim();
        let x: Vec<f64> = x_raw.iter().take(dim).map(|&v| v as f64 / 100.0).collect();
        prop_assume!(x.len() == dim);
        let delta = delta_pct as f64 / 100.0;
        let dom = vec![(0.0, 1.0); dim];

        let (_, fg) = fgsm_variation(&net, &x, delta, 0, Some(&dom));
        let (_, pg) = pgd_variation(&net, &x, delta, 0, Some(&dom), &PgdOptions::default());
        for adv in [fg, pg] {
            for d in 0..dim {
                prop_assert!((adv[d] - x[d]).abs() <= delta + 1e-12);
                prop_assert!((0.0..=1.0).contains(&adv[d]));
            }
        }
    }

    /// Attack-found variation never exceeds the certified global bound: the
    /// empirical half of the Table-I sandwich.
    #[test]
    fn attacks_never_beat_certificates(
        net in random_net(),
        x_raw in proptest::collection::vec(0i32..=100, 4),
    ) {
        let dim = net.input_dim();
        let x: Vec<f64> = x_raw.iter().take(dim).map(|&v| v as f64 / 100.0).collect();
        prop_assume!(x.len() == dim);
        let delta = 0.05;
        let dom = vec![(0.0, 1.0); dim];

        let cert = certify_global(&net, &dom, delta, &CertifyOptions::default())
            .expect("certifies");
        let (v, _) = pgd_variation(
            &net,
            &x,
            delta,
            0,
            Some(&dom),
            &PgdOptions { steps: 30, restarts: 3, ..Default::default() },
        );
        prop_assert!(
            v <= cert.epsilon(0) + 1e-7,
            "PGD found {v} > certified {}",
            cert.epsilon(0)
        );
    }
}
