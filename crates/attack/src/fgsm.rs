//! Fast gradient sign method (Goodfellow et al.), targeting output
//! variation.

use itne_nn::train::input_gradient;
use itne_nn::Network;

/// One-shot FGSM perturbation of `x` for output `j`: moves every input
/// coordinate `delta` in the direction `sign · sign(∂F_j/∂x)`, clamped to
/// `domain` when given. `sign = +1` pushes the output up, `-1` down.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn fgsm_perturb(
    net: &Network,
    x: &[f64],
    delta: f64,
    j: usize,
    sign: f64,
    domain: Option<&[(f64, f64)]>,
) -> Vec<f64> {
    assert_eq!(x.len(), net.input_dim(), "input dimension mismatch");
    let mut dl = vec![0.0; net.output_dim()];
    dl[j] = 1.0;
    let g = input_gradient(net, x, &dl);
    x.iter()
        .zip(&g)
        .enumerate()
        .map(|(d, (&v, &gv))| {
            let step = if gv > 0.0 {
                delta
            } else if gv < 0.0 {
                -delta
            } else {
                0.0
            };
            let out = v + sign * step;
            match domain {
                Some(dom) => out.clamp(dom[d].0, dom[d].1),
                None => out,
            }
        })
        .collect()
}

/// The largest output variation `|F(x̂)_j − F(x)_j|` achieved by FGSM in
/// either polarity. Returns `(variation, adversarial input)`.
pub fn fgsm_variation(
    net: &Network,
    x: &[f64],
    delta: f64,
    j: usize,
    domain: Option<&[(f64, f64)]>,
) -> (f64, Vec<f64>) {
    let f0 = net.forward(x)[j];
    let mut best = (0.0f64, x.to_vec());
    for sign in [1.0, -1.0] {
        let xh = fgsm_perturb(net, x, delta, j, sign, domain);
        let v = (net.forward(&xh)[j] - f0).abs();
        if v > best.0 {
            best = (v, xh);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use itne_nn::NetworkBuilder;

    fn linear_net() -> Network {
        // F(x) = 2x₀ - 3x₁ (no ReLU): FGSM is exactly optimal here.
        NetworkBuilder::input(2)
            .dense(&[&[2.0, -3.0]], &[0.0], false)
            .unwrap()
            .build()
    }

    #[test]
    fn fgsm_is_optimal_on_linear_networks() {
        let net = linear_net();
        let (v, _) = fgsm_variation(&net, &[0.2, 0.3], 0.1, 0, None);
        // Optimal variation = δ·‖w‖₁ = 0.1 · 5.
        assert!((v - 0.5).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn fgsm_respects_domain_clamp() {
        let net = linear_net();
        let dom = [(0.0, 1.0), (0.0, 1.0)];
        let xh = fgsm_perturb(&net, &[1.0, 0.0], 0.2, 0, 1.0, Some(&dom));
        assert!(xh
            .iter()
            .zip(&dom)
            .all(|(&v, &(lo, hi))| v >= lo && v <= hi));
        // x₀ already at the upper bound: gradient positive, step clamped.
        assert_eq!(xh[0], 1.0);
        assert_eq!(xh[1], 0.0); // negative gradient, already at lower bound
    }

    #[test]
    fn fgsm_beats_random_noise_on_trained_like_net() {
        // A ReLU net with mixed signs: FGSM should beat axis-aligned noise.
        let net = NetworkBuilder::input(3)
            .dense(
                &[&[1.0, -0.5, 0.2], &[-0.7, 0.9, 0.4]],
                &[0.05, -0.05],
                true,
            )
            .unwrap()
            .dense(&[&[1.2, -0.8]], &[0.0], false)
            .unwrap()
            .build();
        let x = [0.3, 0.4, 0.1];
        let delta = 0.05;
        let (v, _) = fgsm_variation(&net, &x, delta, 0, None);
        // Random ±δ patterns.
        let mut worst_random = 0.0f64;
        let f0 = net.forward(&x)[0];
        for mask in 0..8 {
            let xh: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(d, &xv)| xv + if (mask >> d) & 1 == 1 { delta } else { -delta })
                .collect();
            worst_random = worst_random.max((net.forward(&xh)[0] - f0).abs());
        }
        assert!(
            v + 1e-12 >= worst_random,
            "fgsm {v} < random corners {worst_random}"
        );
    }
}
