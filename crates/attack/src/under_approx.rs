//! Dataset-wise PGD under-approximation of global robustness — the paper's
//! `ε̲` (Table I): run PGD around every dataset sample and keep the worst
//! output variation per output. The true global `ε` satisfies
//! `ε̲ ≤ ε ≤ ε̄`, sandwiching the certified bound.

use crate::pgd::{pgd_variation, PgdOptions};
use itne_nn::Network;

/// Result of [`dataset_under_approximation`].
#[derive(Clone, Debug)]
pub struct UnderApproxReport {
    /// Worst observed output variation per output — a lower bound on `ε`.
    pub epsilons: Vec<f64>,
    /// Index of the dataset sample achieving each per-output worst case.
    pub witness: Vec<usize>,
    /// Samples attacked.
    pub samples: usize,
}

impl UnderApproxReport {
    /// The under-approximated bound for output `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn epsilon(&self, j: usize) -> f64 {
        self.epsilons[j]
    }
}

/// Attacks every sample in `inputs` with PGD (all outputs, both polarities)
/// and records the worst output variation per output.
///
/// `domain`, when given, keeps adversarial inputs inside the certifier's
/// input domain `X` so both bounds refer to the same problem.
///
/// # Panics
///
/// Panics if a sample's length differs from the network input dimension.
pub fn dataset_under_approximation(
    net: &Network,
    inputs: &[Vec<f64>],
    delta: f64,
    domain: Option<&[(f64, f64)]>,
    opts: &PgdOptions,
) -> UnderApproxReport {
    let out = net.output_dim();
    let mut epsilons = vec![0.0f64; out];
    let mut witness = vec![0usize; out];
    for (i, x) in inputs.iter().enumerate() {
        for j in 0..out {
            let (v, _) = pgd_variation(net, x, delta, j, domain, opts);
            if v > epsilons[j] {
                epsilons[j] = v;
                witness[j] = i;
            }
        }
    }
    UnderApproxReport {
        epsilons,
        witness,
        samples: inputs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itne_core::{certify_global, exact_global, CertifyOptions};
    use itne_milp::SolveOptions;
    use itne_nn::NetworkBuilder;

    fn small_net() -> Network {
        NetworkBuilder::input(2)
            .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)
            .unwrap()
            .dense(&[&[1.0, -1.0]], &[0.0], true)
            .unwrap()
            .build()
    }

    fn grid_inputs(n: usize) -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for a in 0..n {
            for b in 0..n {
                v.push(vec![
                    -1.0 + 2.0 * a as f64 / (n - 1) as f64,
                    -1.0 + 2.0 * b as f64 / (n - 1) as f64,
                ]);
            }
        }
        v
    }

    /// The Table-I sandwich: ε̲ ≤ ε_exact ≤ ε̄ on the illustrating example,
    /// and PGD comes close to exact from below.
    #[test]
    fn sandwich_on_fig1() {
        let net = small_net();
        let dom = [(-1.0, 1.0), (-1.0, 1.0)];
        let delta = 0.1;

        let under = dataset_under_approximation(
            &net,
            &grid_inputs(9),
            delta,
            Some(&dom),
            &PgdOptions::default(),
        );
        let exact = exact_global(&net, &dom, delta, SolveOptions::default()).unwrap();
        let over = certify_global(&net, &dom, delta, &CertifyOptions::default()).unwrap();

        assert!(
            under.epsilon(0) <= exact.epsilon(0) + 1e-7,
            "under {} above exact {}",
            under.epsilon(0),
            exact.epsilon(0)
        );
        assert!(exact.epsilon(0) <= over.epsilon(0) + 1e-7);
        // PGD should find at least 80% of the exact worst case here.
        assert!(
            under.epsilon(0) > 0.8 * exact.epsilon(0),
            "PGD too weak: {} vs exact {}",
            under.epsilon(0),
            exact.epsilon(0)
        );
    }

    #[test]
    fn witnesses_are_valid_indices() {
        let net = small_net();
        let inputs = grid_inputs(4);
        let r = dataset_under_approximation(
            &net,
            &inputs,
            0.05,
            None,
            &PgdOptions {
                steps: 5,
                restarts: 1,
                ..Default::default()
            },
        );
        assert_eq!(r.samples, inputs.len());
        assert!(r.witness.iter().all(|&w| w < inputs.len()));
    }
}
