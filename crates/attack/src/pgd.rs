//! Projected gradient descent (Madry et al.) maximizing output variation.

use itne_nn::train::input_gradient;
use itne_nn::Network;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// PGD attack configuration.
#[derive(Clone, Debug)]
pub struct PgdOptions {
    /// Gradient steps per restart.
    pub steps: usize,
    /// Step size as a fraction of `δ` (2.5/steps is the Madry heuristic).
    pub step_frac: f64,
    /// Random restarts (the first restart starts from zero perturbation).
    pub restarts: usize,
    /// Seed for restart initialization.
    pub seed: u64,
}

impl Default for PgdOptions {
    fn default() -> Self {
        PgdOptions {
            steps: 20,
            step_frac: 0.125,
            restarts: 3,
            seed: 0,
        }
    }
}

/// Runs PGD around `x` for output `j`, maximizing `|F(x + p)_j − F(x)_j|`
/// over `‖p‖∞ ≤ δ` (clamped to `domain` when given). Returns
/// `(best variation, adversarial input)`.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn pgd_variation(
    net: &Network,
    x: &[f64],
    delta: f64,
    j: usize,
    domain: Option<&[(f64, f64)]>,
    opts: &PgdOptions,
) -> (f64, Vec<f64>) {
    assert_eq!(x.len(), net.input_dim(), "input dimension mismatch");
    let f0 = net.forward(x)[j];
    let mut dl = vec![0.0; net.output_dim()];
    dl[j] = 1.0;
    let step = delta * opts.step_frac;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut best = (0.0f64, x.to_vec());

    let clamp = |d: usize, v: f64| -> f64 {
        let v = v.clamp(x[d] - delta, x[d] + delta);
        match domain {
            Some(dom) => v.clamp(dom[d].0, dom[d].1),
            None => v,
        }
    };

    for polarity in [1.0f64, -1.0] {
        for restart in 0..opts.restarts.max(1) {
            let mut xh: Vec<f64> = if restart == 0 {
                x.to_vec()
            } else {
                x.iter()
                    .enumerate()
                    .map(|(d, &v)| clamp(d, v + rng.random_range(-delta..delta)))
                    .collect()
            };
            for _ in 0..opts.steps {
                let g = input_gradient(net, &xh, &dl);
                for (d, v) in xh.iter_mut().enumerate() {
                    let dir = polarity * g[d];
                    let s = if dir > 0.0 {
                        step
                    } else if dir < 0.0 {
                        -step
                    } else {
                        0.0
                    };
                    *v = clamp(d, *v + s);
                }
            }
            let v = (net.forward(&xh)[j] - f0).abs();
            if v > best.0 {
                best = (v, xh);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use itne_nn::NetworkBuilder;

    #[test]
    fn pgd_matches_optimum_on_linear_net() {
        let net = NetworkBuilder::input(2)
            .dense(&[&[1.5, -2.5]], &[0.1], false)
            .unwrap()
            .build();
        let (v, _) = pgd_variation(&net, &[0.0, 0.0], 0.1, 0, None, &PgdOptions::default());
        assert!((v - 0.4).abs() < 1e-9, "got {v}"); // δ·‖w‖₁ = 0.1·4
    }

    #[test]
    fn pgd_at_least_as_strong_as_fgsm() {
        let net = NetworkBuilder::input(3)
            .dense(&[&[0.8, -1.1, 0.3], &[0.2, 0.5, -0.9]], &[0.1, -0.2], true)
            .unwrap()
            .dense(&[&[1.0, 1.0]], &[0.0], false)
            .unwrap()
            .build();
        let x = [0.25, -0.1, 0.4];
        let (fg, _) = crate::fgsm_variation(&net, &x, 0.08, 0, None);
        let (pg, _) = pgd_variation(
            &net,
            &x,
            0.08,
            0,
            None,
            &PgdOptions {
                steps: 40,
                restarts: 4,
                ..Default::default()
            },
        );
        assert!(pg + 1e-9 >= fg, "pgd {pg} weaker than fgsm {fg}");
    }

    #[test]
    fn adversarial_input_stays_in_ball_and_domain() {
        let net = NetworkBuilder::input(2)
            .dense(&[&[1.0, 1.0]], &[0.0], false)
            .unwrap()
            .build();
        let dom = [(0.0, 1.0), (0.0, 1.0)];
        let x = [0.95, 0.02];
        let (_, xh) = pgd_variation(&net, &x, 0.1, 0, Some(&dom), &PgdOptions::default());
        for d in 0..2 {
            assert!((xh[d] - x[d]).abs() <= 0.1 + 1e-12);
            assert!(xh[d] >= 0.0 && xh[d] <= 1.0);
        }
    }
}
