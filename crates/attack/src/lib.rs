//! Adversarial attacks and the dataset-wise global-robustness
//! *under*-approximation.
//!
//! The paper brackets its certified bounds from below (Table I's `ε̲`) by
//! running projected gradient descent around every dataset sample and taking
//! the worst observed output variation — the method of Ruan et al. [9]
//! adapted to output variation. The case study additionally perturbs camera
//! images in the loop with the fast gradient sign method (FGSM).
//!
//! Every attack maximizes the **output variation** `|F(x + p)_j − F(x)_j|`
//! over `‖p‖∞ ≤ δ` (optionally staying inside the input domain), which is
//! exactly the quantity global robustness bounds.

#![forbid(unsafe_code)]

mod fgsm;
mod pgd;
mod under_approx;

pub use fgsm::{fgsm_perturb, fgsm_variation};
pub use pgd::{pgd_variation, PgdOptions};
pub use under_approx::{dataset_under_approximation, UnderApproxReport};
