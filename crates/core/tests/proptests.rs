//! Property-based soundness and ordering checks for the certifier.
//!
//! These are the tests that would catch an unsound encoding: on random
//! networks, certified ranges must contain every sampled twin execution, and
//! the method hierarchy must order as theory says
//! (exact ≤ refined ≤ LPR ≤ IBP, ITNE ≤ BTNE).

use itne_core::split::{split_global, SplitOptions};
use itne_core::{certify_global, exact_global, CertifyOptions, EncodingKind, Relaxation};
use itne_milp::SolveOptions;
use itne_nn::{Network, NetworkBuilder};
use proptest::prelude::*;

/// A small random ReLU network (2-3 affine layers, widths ≤ 3).
fn random_net() -> impl Strategy<Value = Network> {
    (
        1usize..=3,                                   // input dim
        proptest::collection::vec(1usize..=3, 1..=2), // hidden widths
        1usize..=2,                                   // output dim
        proptest::collection::vec((-60i32..=60).prop_map(|v| v as f64 / 30.0), 120),
        any::<bool>(), // relu on output
    )
        .prop_map(|(input, hidden, out, pool, out_relu)| {
            let mut k = 0usize;
            let mut next = |n: usize| {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(pool[k % pool.len()]);
                    k += 1;
                }
                v
            };
            let mut b = NetworkBuilder::input(input);
            let mut prev = input;
            for &w in &hidden {
                let flat = next(w * prev);
                let bias = next(w);
                let rows: Vec<&[f64]> = flat.chunks(prev).collect();
                b = b.dense(&rows, &bias, true).expect("consistent shapes");
                prev = w;
            }
            let flat = next(out * prev);
            let bias = next(out);
            let rows: Vec<&[f64]> = flat.chunks(prev).collect();
            b.dense(&rows, &bias, out_relu)
                .expect("consistent shapes")
                .build()
        })
}

fn domain_for(net: &Network) -> Vec<(f64, f64)> {
    vec![(-1.0, 1.0); net.input_dim()]
}

/// Deterministic pseudo-random sample in [0,1).
fn unit(seed: &mut u64) -> f64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    (*seed >> 11) as f64 / (1u64 << 53) as f64
}

proptest! {
    // Fixed seed + bounded case count: CI runs are deterministic and any
    // failure reproduces locally with no persistence files.
    #![proptest_config(ProptestConfig {
        rng_seed: 0x17de_c0de_0001,
        ..ProptestConfig::with_cases(48)
    })]

    /// No sampled perturbation pair may exceed the certified ε, and every
    /// internal twin range must contain the sampled twin traces.
    #[test]
    fn certification_is_sound(net in random_net(), delta_pct in 1u32..=30) {
        let delta = delta_pct as f64 / 100.0;
        let dom = domain_for(&net);
        let report = certify_global(&net, &dom, delta, &CertifyOptions::default()).unwrap();

        let mut seed = 0xfeed_beefu64 | 1;
        for _ in 0..300 {
            let x: Vec<f64> =
                (0..net.input_dim()).map(|_| unit(&mut seed) * 2.0 - 1.0).collect();
            let xh: Vec<f64> = x
                .iter()
                .map(|&v| {
                    (v + (unit(&mut seed) * 2.0 - 1.0) * delta).clamp(-1.0, 1.0)
                })
                .collect();
            let fx = net.forward(&x);
            let fxh = net.forward(&xh);
            for j in 0..net.output_dim() {
                prop_assert!(
                    (fxh[j] - fx[j]).abs() <= report.epsilon(j) + 1e-7,
                    "pair violates certified ε_{j} = {}: |Δ| = {}",
                    report.epsilon(j),
                    (fxh[j] - fx[j]).abs()
                );
            }
        }
    }

    /// Exact (both solvers) ≤ refined LPR ≤ plain LPR, and ITNE ≤ BTNE.
    #[test]
    fn method_ordering_holds(net in random_net()) {
        let dom = domain_for(&net);
        let delta = 0.08;

        let exact =
            exact_global(&net, &dom, delta, SolveOptions::default()).unwrap();
        let split =
            split_global(&net, &dom, delta, &SplitOptions::default()).unwrap();
        prop_assert!(split.exact);

        let lpr = certify_global(&net, &dom, delta, &CertifyOptions::default()).unwrap();
        let refined = certify_global(
            &net,
            &dom,
            delta,
            &CertifyOptions { refine: 64, ..Default::default() },
        )
        .unwrap();
        let btne = certify_global(
            &net,
            &dom,
            delta,
            &CertifyOptions { encoding: EncodingKind::Btne, ..Default::default() },
        )
        .unwrap();

        for j in 0..net.output_dim() {
            let (e, s) = (exact.epsilon(j), split.epsilons[j]);
            prop_assert!((e - s).abs() < 1e-4,
                "exact MILP {e} vs split solver {s} disagree on output {j}");
            prop_assert!(e <= refined.epsilon(j) + 1e-6,
                "exact {e} > refined {} on output {j}", refined.epsilon(j));
            prop_assert!(refined.epsilon(j) <= lpr.epsilon(j) + 1e-6,
                "refined {} > lpr {} on output {j}", refined.epsilon(j), lpr.epsilon(j));
            // ITNE ≤ BTNE is the paper's *empirical* claim, not a pointwise
            // theorem (Eq. 6 ignores y-ranges; a coupled BTNE window can win
            // on degenerate neurons) — here we only require BTNE soundness.
            // The aggregate claim is demonstrated by `ablation_encoding`.
            prop_assert!(btne.epsilon(j) + 1e-6 >= e,
                "btne {} below exact {e} on output {j}", btne.epsilon(j));
        }
    }

    /// Exact certification with window-spanning MILPs equals the paper's ND
    /// with the full window regardless of ND window choice soundness-wise:
    /// every windowed configuration stays above the exact value.
    #[test]
    fn windowed_configs_stay_above_exact(net in random_net(), window in 1usize..=3) {
        let dom = domain_for(&net);
        let delta = 0.05;
        let exact = exact_global(&net, &dom, delta, SolveOptions::default()).unwrap();
        for relax in [Relaxation::Lpr, Relaxation::Exact] {
            let r = certify_global(
                &net,
                &dom,
                delta,
                &CertifyOptions { window, relaxation: relax, ..Default::default() },
            )
            .unwrap();
            for j in 0..net.output_dim() {
                prop_assert!(
                    r.epsilon(j) + 1e-6 >= exact.epsilon(j),
                    "window {window} {relax:?} bound {} below exact {}",
                    r.epsilon(j),
                    exact.epsilon(j)
                );
            }
        }
    }
}
