//! LP/MILP encoders for sub-networks under three encodings:
//!
//! * [`EncodingKind::Single`] — one network copy (plain output-range
//!   analysis; the local-robustness baseline of Fig. 4's upper half);
//! * [`EncodingKind::Btne`] — the basic twin-network encoding of Eq. 1: two
//!   independent copies, coupled only at the network input (and compared at
//!   the output);
//! * [`EncodingKind::Itne`] — the paper's interleaving twin-network encoding:
//!   distance variables `Δy⁽ⁱ⁾_j`, `Δx⁽ⁱ⁾_j` for every hidden neuron, the hat
//!   copy represented implicitly as `x + Δx`, and the ReLU *distance*
//!   relation relaxed by Eq. 6 instead of relaxing the hat copy's ReLU.
//!
//! Each unstable ReLU is encoded exactly (big-M with a binary indicator) when
//! the mode is [`Relaxation::Exact`] or the neuron is *selectively refined*;
//! otherwise it is relaxed (triangle for value relations, Eq. 6 for distance
//! relations). Stable neurons (sign of the pre-activation provably fixed)
//! always use exact linear equalities — the "degenerate" ReLU cases of §II-C.
//!
//! # One body, two sinks
//!
//! The encoder body is generic over a [`ModelSink`]: a [`FreshSink`] appends
//! variables and rows to a new [`Model`], while a [`ReuseSink`] replays the
//! identical sequence of emissions *onto an existing model*, overwriting
//! bounds, coefficients and right-hand sides in place and verifying at every
//! step that the stored structure (variable types, row supports, comparison
//! operators) matches what the replay produces. Because both sinks receive
//! the same values from the same code, a successful replay leaves the model
//! bit-identical to a fresh build — that is what lets the resident engine
//! cache encodings across queries and re-parameterize them for a new δ
//! instead of rebuilding. Every row is assembled in one reusable scratch
//! [`LinExpr`], so neither path allocates per constraint.

use crate::bounds::TwinBounds;
use crate::interval::{distance_relaxation_bounds, Interval};
use crate::refine::{select_refined, RefinedSet};
use crate::subnet::SubNetwork;
use itne_milp::{Cmp, LinExpr, Model, VarId, VarType};

/// Slack added to variable bounds and big-M constants so that LP tolerances
/// never cut off true optima.
const BOUND_EPS: f64 = 1e-9;

/// Degenerate-width threshold below which a distance relaxation collapses to
/// `Δx = 0`.
const DEGENERATE_TOL: f64 = 1e-12;

/// Which network copies are encoded.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EncodingKind {
    /// One copy only.
    Single,
    /// Two copies, coupled at the input layer only (the paper's baseline).
    Btne,
    /// Two copies with interleaved distance variables (the contribution).
    Itne,
}

/// How unstable ReLU relations are treated.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Relaxation {
    /// Every unstable ReLU gets an exact big-M encoding (MILP).
    Exact,
    /// LP relaxation, with the top-`refine` scored neurons kept exact.
    Lpr,
}

/// Encoder configuration.
#[derive(Clone, Debug)]
pub struct EncodeOptions {
    /// Copies encoded.
    pub kind: EncodingKind,
    /// Exact vs. relaxed unstable ReLUs.
    pub relax: Relaxation,
    /// Number of selectively-refined neurons under [`Relaxation::Lpr`]
    /// (ignored under `Exact`).
    pub refine: usize,
    /// Extension (off = paper-faithful): bound distance variables with the
    /// y-aware corner range and add the hat-copy inequalities
    /// `x̂ ≥ 0`, `x̂ ≥ ŷ` alongside Eq. 6.
    pub y_aware_distance: bool,
    /// Input perturbation bound δ (twin coupling at the input level).
    pub delta: f64,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        EncodeOptions {
            kind: EncodingKind::Itne,
            relax: Relaxation::Lpr,
            refine: 0,
            y_aware_distance: false,
            delta: 0.0,
        }
    }
}

/// Whether the target neuron is queried before or after its activation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// `F_w(y⁽ⁱ⁾_j)` — the `LpRelaxY` sub-problem (no ReLU on the target).
    PreActivation,
    /// `F_w(x⁽ⁱ⁾_j)` — the `LpRelaxX` sub-problem.
    PostActivation,
}

/// LP variables attached to one neuron of the encoding. Unused slots stay
/// `None` (e.g. `dy` under `Single`, `xh` under `Itne`).
#[derive(Copy, Clone, Debug, Default)]
pub struct NeuronVars {
    /// Pre-activation of the original copy.
    pub y: Option<VarId>,
    /// `ŷ − y` (ITNE only).
    pub dy: Option<VarId>,
    /// Post-activation of the original copy.
    pub x: Option<VarId>,
    /// `x̂ − x` (ITNE only).
    pub dx: Option<VarId>,
    /// Pre-activation of the hat copy (BTNE only).
    pub yh: Option<VarId>,
    /// Post-activation of the hat copy (BTNE only).
    pub xh: Option<VarId>,
}

/// An encoded sub-network: the optimization model plus the variable map.
#[derive(Clone, Debug)]
pub struct EncodedSubNet {
    /// The LP/MILP model (objective unset; queries set it).
    pub model: Model,
    /// `vars[k][pos]` = variables of `cone.levels[k][pos]`.
    pub vars: Vec<Vec<NeuronVars>>,
    /// Number of binary indicator variables introduced.
    pub binaries: usize,
    /// Number of neurons selectively refined.
    pub refined: usize,
    /// Number of ReLU relations relaxed (triangle or Eq. 6).
    pub relaxed: usize,
}

impl EncodedSubNet {
    /// Variables of the target neuron (last cone level).
    pub fn target_vars(&self) -> NeuronVars {
        self.vars[self.vars.len() - 1][0]
    }
}

/// Fresh `(y, Δy, x, Δx)` ranges for the target neuron, overriding the
/// stored bounds (Algorithm 1 feeds `LpRelaxY` results into `LpRelaxX`
/// without mutating the shared bound store).
#[derive(Copy, Clone, Debug)]
pub struct TargetOverride {
    /// Fresh pre-activation range.
    pub y: Interval,
    /// Fresh distance range.
    pub dy: Interval,
    /// Fresh post-activation range.
    pub x: Interval,
    /// Fresh post-activation distance range.
    pub dx: Interval,
}

/// The refined-neuron set the encoder would use for this sub-problem: empty
/// under [`Relaxation::Exact`] (everything is exact anyway), the selective-
/// refinement pick under [`Relaxation::Lpr`]. Hoisted out of the encoder so
/// callers keying encoding caches on the refined set compute it exactly once.
pub(crate) fn refined_for(
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    target: TargetKind,
    opts: &EncodeOptions,
) -> RefinedSet {
    match opts.relax {
        Relaxation::Exact => RefinedSet::new(),
        Relaxation::Lpr => select_refined(sub, bounds, target, opts),
    }
}

/// Encodes a sub-network against known `bounds`.
///
/// All variable bounds, big-M constants and relaxation ranges come from
/// `bounds`, which must hold sound ranges for every layer the cone touches
/// (the IBP pass guarantees this; Algorithm 1 tightens them as it walks).
pub fn encode_subnet(
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    target: TargetKind,
    opts: &EncodeOptions,
) -> EncodedSubNet {
    encode_subnet_with(sub, bounds, target, opts, None)
}

/// [`encode_subnet`] with fresh target ranges (see [`TargetOverride`]).
pub fn encode_subnet_with(
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    target: TargetKind,
    opts: &EncodeOptions,
    target_override: Option<TargetOverride>,
) -> EncodedSubNet {
    let refined = refined_for(sub, bounds, target, opts);
    encode_subnet_refined(sub, bounds, target, opts, target_override, &refined)
}

/// [`encode_subnet_with`] against a refined set the caller already computed
/// (cache-key reuse; see [`refined_for`]).
pub(crate) fn encode_subnet_refined(
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    target: TargetKind,
    opts: &EncodeOptions,
    target_override: Option<TargetOverride>,
    refined: &RefinedSet,
) -> EncodedSubNet {
    let mut sink = FreshSink {
        model: Model::new(),
    };
    let (vars, enc) = encode_into(
        &mut sink,
        sub,
        bounds,
        target,
        opts,
        target_override,
        refined,
    );
    EncodedSubNet {
        model: sink.model,
        vars,
        binaries: enc.binaries,
        refined: if opts.relax == Relaxation::Lpr {
            enc.refined
        } else {
            0
        },
        relaxed: enc.relaxed,
    }
}

/// Replays the encoding onto `prev`'s existing model, overwriting variable
/// bounds, row coefficients and right-hand sides in place. Returns `true` on
/// a structural match — the model is then bit-identical to a fresh
/// [`encode_subnet_refined`] build for the same inputs, without a single row
/// allocation. Returns `false` when the stored structure no longer matches
/// (a ReLU phase flipped, the refined set changed shape, a degenerate
/// relaxation appeared); **the model is garbage in that case** and the
/// caller must discard `prev` and encode fresh.
pub(crate) fn reencode_subnet(
    prev: &mut EncodedSubNet,
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    target: TargetKind,
    opts: &EncodeOptions,
    target_override: Option<TargetOverride>,
    refined: &RefinedSet,
) -> bool {
    let stored_vars = prev.model.num_vars();
    let stored_rows = prev.model.num_constraints();
    let mut sink = ReuseSink {
        model: &mut prev.model,
        vcur: 0,
        rcur: 0,
        ok: true,
    };
    let (vars, enc) = encode_into(
        &mut sink,
        sub,
        bounds,
        target,
        opts,
        target_override,
        refined,
    );
    if !(sink.ok && sink.vcur == stored_vars && sink.rcur == stored_rows) {
        return false;
    }
    prev.vars = vars;
    prev.binaries = enc.binaries;
    prev.refined = if opts.relax == Relaxation::Lpr {
        enc.refined
    } else {
        0
    };
    prev.relaxed = enc.relaxed;
    true
}

/// Destination of encoder emissions. Implementations must hand back variable
/// ids consistent with [`Model`] creation order; the encoder itself never
/// looks at the model.
trait ModelSink {
    /// Emits a continuous variable with the given bounds.
    fn var(&mut self, lo: f64, hi: f64) -> VarId;
    /// Emits a binary indicator variable.
    fn binary(&mut self) -> VarId;
    /// Overwrites the bounds of a variable emitted earlier this pass.
    fn bounds(&mut self, v: VarId, lo: f64, hi: f64);
    /// Emits the constraint `expr cmp rhs`, consuming the scratch buffer's
    /// contents (the buffer comes back cleared for the next row).
    fn row(&mut self, expr: &mut LinExpr, cmp: Cmp, rhs: f64);
}

/// Appends to a fresh model.
struct FreshSink {
    model: Model,
}

impl ModelSink for FreshSink {
    fn var(&mut self, lo: f64, hi: f64) -> VarId {
        self.model.add_var(lo, hi)
    }
    fn binary(&mut self) -> VarId {
        self.model.add_binary()
    }
    fn bounds(&mut self, v: VarId, lo: f64, hi: f64) {
        self.model.set_bounds(v, lo, hi);
    }
    fn row(&mut self, expr: &mut LinExpr, cmp: Cmp, rhs: f64) {
        self.model.add_constraint_buf(expr, cmp, rhs);
        expr.clear();
    }
}

/// Overwrites an existing model in creation order, verifying structure as it
/// goes. Any mismatch flips `ok` and degrades to appending (the model is
/// discarded on failure, so the appends only keep the replay's variable ids
/// coherent until it finishes).
struct ReuseSink<'m> {
    model: &'m mut Model,
    vcur: usize,
    rcur: usize,
    ok: bool,
}

impl ModelSink for ReuseSink<'_> {
    fn var(&mut self, lo: f64, hi: f64) -> VarId {
        let j = self.vcur;
        self.vcur += 1;
        match self.model.reparam_var(j, lo, hi, VarType::Continuous) {
            Some(v) => v,
            None => {
                self.ok = false;
                self.model.add_var(lo, hi)
            }
        }
    }
    fn binary(&mut self) -> VarId {
        let j = self.vcur;
        self.vcur += 1;
        match self.model.reparam_var(j, 0.0, 1.0, VarType::Integer) {
            Some(v) => v,
            None => {
                self.ok = false;
                self.model.add_binary()
            }
        }
    }
    fn bounds(&mut self, v: VarId, lo: f64, hi: f64) {
        self.model.set_bounds(v, lo, hi);
    }
    fn row(&mut self, expr: &mut LinExpr, cmp: Cmp, rhs: f64) {
        let r = self.rcur;
        self.rcur += 1;
        if !self.model.reparam_row_buf(r, expr, cmp, rhs) {
            self.ok = false;
            self.model.add_constraint_buf(expr, cmp, rhs);
        }
        expr.clear();
    }
}

/// The encoder body shared by both sinks. Emission order is the contract:
/// a [`ReuseSink`] replay matches a [`FreshSink`] build variable-for-
/// variable and row-for-row, or reports failure.
fn encode_into<S: ModelSink>(
    sink: &mut S,
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    target: TargetKind,
    opts: &EncodeOptions,
    target_override: Option<TargetOverride>,
    refined: &RefinedSet,
) -> (Vec<Vec<NeuronVars>>, Counters) {
    let w = sub.window();
    let mut vars: Vec<Vec<NeuronVars>> = Vec::with_capacity(w + 1);
    let mut enc = Counters::default();
    let mut buf = LinExpr::new();

    // --- Level 0: sub-network inputs. ---
    let in_layer = sub.layer_at(1); // affine layer consuming level 0
    let x_in = bounds.x_in(in_layer);
    let dx_in = bounds.dx_in(in_layer);
    let mut level0 = Vec::with_capacity(sub.cone.levels[0].len());
    for &idx in &sub.cone.levels[0] {
        let xr = x_in[idx].inflate(BOUND_EPS);
        let mut nv = NeuronVars::default();
        let x = sink.var(xr.lo, xr.hi);
        nv.x = Some(x);
        match opts.kind {
            EncodingKind::Single => {}
            EncodingKind::Itne => {
                let dr = dx_in[idx].inflate(BOUND_EPS);
                let dx = sink.var(dr.lo, dr.hi);
                nv.dx = Some(dx);
                if sub.starts_at_input() {
                    // x̂ = x + Δx must stay inside the input domain X.
                    let dom = bounds.input[idx];
                    buf.add_term(x, 1.0).add_term(dx, 1.0);
                    sink.row(&mut buf, Cmp::Le, dom.hi + BOUND_EPS);
                    buf.add_term(x, 1.0).add_term(dx, 1.0);
                    sink.row(&mut buf, Cmp::Ge, dom.lo - BOUND_EPS);
                }
            }
            EncodingKind::Btne => {
                let xh = sink.var(xr.lo, xr.hi);
                nv.xh = Some(xh);
                if sub.starts_at_input() {
                    // ‖x̂ − x‖∞ ≤ δ, elementwise.
                    buf.add_term(xh, 1.0).add_term(x, -1.0);
                    sink.row(&mut buf, Cmp::Le, opts.delta);
                    buf.add_term(xh, 1.0).add_term(x, -1.0);
                    sink.row(&mut buf, Cmp::Ge, -opts.delta);
                }
                // Mid-network BTNE windows get no coupling: the distance
                // information is lost, exactly as §II-D describes.
            }
        }
        level0.push(nv);
    }
    vars.push(level0);

    // --- Levels 1..=w: affine + ReLU relations. ---
    for k in 1..=w {
        let layer = sub.layer_at(k);
        let l = &sub.net.layers[layer];
        let prev_ids = &sub.cone.levels[k - 1];
        let mut level = Vec::with_capacity(sub.cone.levels[k].len());
        for &j in &sub.cone.levels[k] {
            let row = &l.rows[j];
            let is_target = k == w;
            let (yr0, dyr0, xr0, dxr0) = match (is_target, target_override) {
                (true, Some(o)) => (o.y, o.dy, o.x, o.dx),
                _ => (
                    bounds.y[layer][j],
                    bounds.dy[layer][j],
                    bounds.x[layer][j],
                    bounds.dx[layer][j],
                ),
            };
            let yr = yr0.inflate(BOUND_EPS);
            let dyr = dyr0.inflate(BOUND_EPS);
            let mut nv = NeuronVars::default();

            // y = Σ c·x_prev + b
            let y = sink.var(yr.lo, yr.hi);
            nv.y = Some(y);
            buf.add_term(y, 1.0);
            for &(pidx, c) in &row.terms {
                let pos = prev_ids.binary_search(&pidx).expect("term inside cone");
                buf.add_term(vars[k - 1][pos].x.expect("x always present"), -c);
            }
            sink.row(&mut buf, Cmp::Eq, row.bias);

            match opts.kind {
                EncodingKind::Itne => {
                    // Δy = Σ c·Δx_prev
                    let dy = sink.var(dyr.lo, dyr.hi);
                    nv.dy = Some(dy);
                    buf.add_term(dy, 1.0);
                    for &(pidx, c) in &row.terms {
                        let pos = prev_ids.binary_search(&pidx).expect("term inside cone");
                        buf.add_term(vars[k - 1][pos].dx.expect("dx present under ITNE"), -c);
                    }
                    sink.row(&mut buf, Cmp::Eq, 0.0);
                }
                EncodingKind::Btne => {
                    // ŷ = Σ c·x̂_prev + b. The hat copy ranges over the same
                    // domain X, so its marginal range equals the original
                    // copy's — BTNE knows nothing tighter (no Δ variables).
                    let yhr = yr;
                    let yh = sink.var(yhr.lo, yhr.hi);
                    nv.yh = Some(yh);
                    buf.add_term(yh, 1.0);
                    for &(pidx, c) in &row.terms {
                        let pos = prev_ids.binary_search(&pidx).expect("term inside cone");
                        buf.add_term(vars[k - 1][pos].xh.expect("xh present under BTNE"), -c);
                    }
                    sink.row(&mut buf, Cmp::Eq, row.bias);
                }
                EncodingKind::Single => {}
            }

            let needs_post = k < w || target == TargetKind::PostActivation;
            if needs_post {
                if !l.relu {
                    // Identity activation: alias the variables.
                    nv.x = nv.y;
                    nv.dx = nv.dy;
                    nv.xh = nv.yh;
                } else {
                    let exact = opts.relax == Relaxation::Exact || refined.contains(&(layer, j));
                    if exact {
                        enc.refined += 1;
                    }
                    encode_relu(
                        sink,
                        &mut buf,
                        &mut nv,
                        Ranges {
                            y: yr0,
                            dy: dyr0,
                            x: xr0,
                            dx: dxr0,
                        },
                        exact,
                        opts,
                        &mut enc,
                    );
                }
            }
            level.push(nv);
        }
        vars.push(level);
    }

    (vars, enc)
}

#[derive(Default)]
struct Counters {
    binaries: usize,
    refined: usize,
    relaxed: usize,
}

/// Phase of a ReLU given its pre-activation range.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Phase {
    Active,
    Inactive,
    Unstable,
}

fn phase(r: Interval) -> Phase {
    if r.stable_active() {
        Phase::Active
    } else if r.stable_inactive() {
        Phase::Inactive
    } else {
        Phase::Unstable
    }
}

/// Sound ranges of one neuron's twin quantities, as known at encode time.
#[derive(Copy, Clone, Debug)]
struct Ranges {
    y: Interval,
    dy: Interval,
    x: Interval,
    dx: Interval,
}

/// Encodes the activation of one neuron: `x = relu(y)` for the original copy
/// and — depending on the encoding — either `x̂ = relu(ŷ)` (BTNE) or the
/// distance relation `Δx = relu(y + Δy) − relu(y)` (ITNE).
#[allow(clippy::too_many_arguments)]
fn encode_relu<S: ModelSink>(
    sink: &mut S,
    buf: &mut LinExpr,
    nv: &mut NeuronVars,
    ranges: Ranges,
    exact: bool,
    opts: &EncodeOptions,
    enc: &mut Counters,
) {
    let yr = ranges.y;
    let dyr = ranges.dy;
    let xr = ranges.x.inflate(BOUND_EPS);
    let y = nv.y.expect("y exists");

    // --- Original copy: x = relu(y). ---
    let x = sink.var(xr.lo.max(0.0).min(xr.hi), xr.hi.max(0.0));
    nv.x = Some(x);
    encode_relu_value(sink, buf, x, y, yr, exact, enc);

    match opts.kind {
        EncodingKind::Single => {}
        EncodingKind::Btne => {
            // --- Hat copy: x̂ = relu(ŷ), fully independent relaxation over
            // the marginal range (see above). ---
            let yhr = yr;
            let xhr = yhr.relu().inflate(BOUND_EPS);
            let yh = nv.yh.expect("yh exists under BTNE");
            let xh = sink.var(xhr.lo.max(0.0).min(xhr.hi), xhr.hi.max(0.0));
            nv.xh = Some(xh);
            encode_relu_value(sink, buf, xh, yh, yhr, exact, enc);
        }
        EncodingKind::Itne => {
            // --- Distance relation: Δx = relu(y + Δy) − relu(y). ---
            let dy = nv.dy.expect("dy exists under ITNE");
            let yhr = yr.add(dyr);
            let dxr = if opts.y_aware_distance {
                crate::interval::relu_distance_range(yr, dyr)
            } else {
                let (l, u) = distance_relaxation_bounds(dyr);
                Interval::new(l, u)
            }
            .intersect(ranges.dx, 1e-9)
            .unwrap_or(ranges.dx)
            .inflate(BOUND_EPS);
            let dx = sink.var(dxr.lo, dxr.hi);
            nv.dx = Some(dx);

            match phase(yhr) {
                // Hat copy provably active: x̂ = ŷ, i.e. x + Δx = y + Δy.
                Phase::Active => {
                    buf.add_term(x, 1.0)
                        .add_term(dx, 1.0)
                        .add_term(y, -1.0)
                        .add_term(dy, -1.0);
                    sink.row(buf, Cmp::Eq, 0.0);
                }
                // Hat copy provably inactive: x̂ = 0, i.e. x + Δx = 0.
                Phase::Inactive => {
                    buf.add_term(x, 1.0).add_term(dx, 1.0);
                    sink.row(buf, Cmp::Eq, 0.0);
                }
                Phase::Unstable => {
                    if exact {
                        // Exact big-M ReLU on the implicit x̂ = x + Δx.
                        let zh = sink.binary();
                        enc.binaries += 1;
                        buf.add_term(x, 1.0).add_term(dx, 1.0);
                        sink.row(buf, Cmp::Ge, 0.0);
                        buf.add_term(x, 1.0)
                            .add_term(dx, 1.0)
                            .add_term(y, -1.0)
                            .add_term(dy, -1.0);
                        sink.row(buf, Cmp::Ge, 0.0);
                        // x̂ ≤ ŷ + M(1 − z) with M = −ŷ.lo, i.e.
                        // x̂ − ŷ + M·z ≤ M.
                        let m_lo = -yhr.lo + BOUND_EPS;
                        buf.add_term(x, 1.0)
                            .add_term(dx, 1.0)
                            .add_term(y, -1.0)
                            .add_term(dy, -1.0)
                            .add_term(zh, m_lo);
                        sink.row(buf, Cmp::Le, m_lo);
                        // x̂ ≤ ŷ.hi·z
                        buf.add_term(x, 1.0)
                            .add_term(dx, 1.0)
                            .add_term(zh, -(yhr.hi + BOUND_EPS));
                        sink.row(buf, Cmp::Le, 0.0);
                    } else {
                        // Paper Eq. 6: l(u−Δy)/(u−l) ≤ Δx ≤ u(Δy−l)/(u−l),
                        // written in the fraction-free scaled form.
                        enc.relaxed += 1;
                        let (l, u) = distance_relaxation_bounds(dyr);
                        if u - l < DEGENERATE_TOL {
                            sink.bounds(dx, -BOUND_EPS, BOUND_EPS);
                        } else {
                            let s = u - l;
                            buf.add_term(dx, s).add_term(dy, l);
                            sink.row(buf, Cmp::Ge, l * u);
                            buf.add_term(dx, s).add_term(dy, -u);
                            sink.row(buf, Cmp::Le, -u * l);
                        }
                        if opts.y_aware_distance {
                            // Hat-copy halves x̂ ≥ 0, x̂ ≥ ŷ (sound, tighter).
                            buf.add_term(x, 1.0).add_term(dx, 1.0);
                            sink.row(buf, Cmp::Ge, 0.0);
                            buf.add_term(x, 1.0)
                                .add_term(dx, 1.0)
                                .add_term(y, -1.0)
                                .add_term(dy, -1.0);
                            sink.row(buf, Cmp::Ge, 0.0);
                        }
                    }
                }
            }
        }
    }
}

/// Encodes `x = relu(y)` for one copy, given the pre-activation range:
/// stable phases become equalities, unstable ones big-M (exact) or triangle
/// (relaxed, paper Eq. 4).
fn encode_relu_value<S: ModelSink>(
    sink: &mut S,
    buf: &mut LinExpr,
    x: VarId,
    y: VarId,
    yr: Interval,
    exact: bool,
    enc: &mut Counters,
) {
    match phase(yr) {
        Phase::Active => {
            buf.add_term(x, 1.0).add_term(y, -1.0);
            sink.row(buf, Cmp::Eq, 0.0);
        }
        Phase::Inactive => {
            sink.bounds(x, 0.0, 0.0);
        }
        Phase::Unstable => {
            // x ≥ y and x ≥ 0 (the latter via the variable bound).
            buf.add_term(x, 1.0).add_term(y, -1.0);
            sink.row(buf, Cmp::Ge, 0.0);
            if exact {
                let z = sink.binary();
                enc.binaries += 1;
                // x ≤ y + M(1 − z) with M = −y.lo, i.e. x − y + M·z ≤ M.
                let m_lo = -yr.lo + BOUND_EPS;
                buf.add_term(x, 1.0).add_term(y, -1.0).add_term(z, m_lo);
                sink.row(buf, Cmp::Le, m_lo);
                // x ≤ y.hi·z
                buf.add_term(x, 1.0).add_term(z, -(yr.hi + BOUND_EPS));
                sink.row(buf, Cmp::Le, 0.0);
            } else {
                // Triangle chord: (hi−lo)·x − hi·y ≤ −hi·lo.
                enc.relaxed += 1;
                let s = yr.hi - yr.lo;
                buf.add_term(x, s).add_term(y, -yr.hi);
                sink.row(buf, Cmp::Le, -yr.hi * yr.lo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::fig1_affine;
    use crate::ibp::ibp_twin;
    use itne_milp::{Sense, SolveOptions};

    fn fig1_setup() -> (itne_nn::AffineNetwork, TwinBounds) {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let b = ibp_twin(&net, &domain, 0.1);
        (net, b)
    }

    /// Exact ITNE on the whole Fig. 1 net reproduces the exact global range
    /// Δx⁽²⁾ ∈ [-0.2, 0.2] from Fig. 4.
    #[test]
    fn exact_itne_whole_network_matches_paper() {
        let (net, bounds) = fig1_setup();
        let sub = SubNetwork::decompose(&net, 1, 0, 2);
        let opts = EncodeOptions {
            kind: EncodingKind::Itne,
            relax: Relaxation::Exact,
            delta: 0.1,
            ..Default::default()
        };
        let enc = encode_subnet(&sub, &bounds, TargetKind::PostActivation, &opts);
        let t = enc.target_vars();
        let mut m = enc.model;
        m.set_objective(Sense::Maximize, 1.0 * t.dx.unwrap());
        let hi = m.solve().unwrap().objective;
        m.set_objective(Sense::Minimize, 1.0 * t.dx.unwrap());
        let lo = m.solve().unwrap().objective;
        assert!((hi - 0.2).abs() < 1e-6, "max Δx = {hi}, paper says 0.2");
        assert!((lo + 0.2).abs() < 1e-6, "min Δx = {lo}, paper says -0.2");
    }

    /// Relaxed ITNE (LPR) on the whole net reproduces Fig. 4's
    /// Δx⁽²⁾ ∈ [-0.275, 0.275].
    #[test]
    fn itne_lpr_whole_network_matches_paper() {
        let (net, bounds) = fig1_setup();
        let sub = SubNetwork::decompose(&net, 1, 0, 2);
        let opts = EncodeOptions {
            kind: EncodingKind::Itne,
            relax: Relaxation::Lpr,
            refine: 0,
            delta: 0.1,
            ..Default::default()
        };
        let enc = encode_subnet(&sub, &bounds, TargetKind::PostActivation, &opts);
        assert_eq!(enc.binaries, 0, "pure LPR must be a plain LP");
        let t = enc.target_vars();
        let mut m = enc.model;
        m.set_objective(Sense::Maximize, 1.0 * t.dx.unwrap());
        let hi = m.solve().unwrap().objective;
        m.set_objective(Sense::Minimize, 1.0 * t.dx.unwrap());
        let lo = m.solve().unwrap().objective;
        assert!((hi - 0.275).abs() < 1e-6, "max Δx = {hi}, paper says 0.275");
        assert!(
            (lo + 0.275).abs() < 1e-6,
            "min Δx = {lo}, paper says -0.275"
        );
    }

    /// Relaxed BTNE on the whole net: the paper's Fig. 4 reports
    /// Δx⁽²⁾ ∈ [-2.85, 1.5] (10.9×) from one-sided bound composition; our
    /// fully-coupled LP over the same BTNE relaxation is tighter,
    /// [-1.34375, 1.34375] (6.7×). Either way BTNE is several times looser
    /// than ITNE-LPR's [-0.275, 0.275] (1.38×) — the paper's point. The
    /// exact values here are a regression lock; see EXPERIMENTS.md.
    #[test]
    fn btne_lpr_whole_network_matches_paper() {
        let (net, bounds) = fig1_setup();
        let sub = SubNetwork::decompose(&net, 1, 0, 2);
        let opts = EncodeOptions {
            kind: EncodingKind::Btne,
            relax: Relaxation::Lpr,
            refine: 0,
            delta: 0.1,
            ..Default::default()
        };
        let enc = encode_subnet(&sub, &bounds, TargetKind::PostActivation, &opts);
        let t = enc.target_vars();
        let mut m = enc.model;
        let dxe = || 1.0 * t.xh.unwrap() - 1.0 * t.x.unwrap();
        m.set_objective(Sense::Maximize, dxe());
        let hi = m.solve().unwrap().objective;
        m.set_objective(Sense::Minimize, dxe());
        let lo = m.solve().unwrap().objective;
        // Sound: must contain the exact [-0.2, 0.2].
        assert!(
            lo <= -0.2 + 1e-6 && hi >= 0.2 - 1e-6,
            "[{lo}, {hi}] not sound"
        );
        // Much looser than ITNE-LPR's ±0.275 — the encoding gap.
        assert!(
            hi > 1.0 && lo < -1.0,
            "BTNE unexpectedly tight: [{lo}, {hi}]"
        );
        // Regression lock on the coupled-LP value.
        assert!((hi - 1.34375).abs() < 1e-6, "max Δx = {hi}");
        assert!((lo + 1.34375).abs() < 1e-6, "min Δx = {lo}");
    }

    /// Exact BTNE equals exact ITNE (same feasible set, different encodings).
    #[test]
    fn exact_btne_agrees_with_exact_itne() {
        let (net, bounds) = fig1_setup();
        let sub = SubNetwork::decompose(&net, 1, 0, 2);
        let opts = EncodeOptions {
            kind: EncodingKind::Btne,
            relax: Relaxation::Exact,
            delta: 0.1,
            ..Default::default()
        };
        let enc = encode_subnet(&sub, &bounds, TargetKind::PostActivation, &opts);
        let t = enc.target_vars();
        let mut m = enc.model;
        m.set_objective(Sense::Maximize, 1.0 * t.xh.unwrap() - 1.0 * t.x.unwrap());
        let hi = m.solve().unwrap().objective;
        assert!((hi - 0.2).abs() < 1e-6, "exact BTNE max {hi} ≠ 0.2");
    }

    /// Single-copy exact range analysis over X reproduces x⁽²⁾ ∈ [0, 1.25]
    /// (Fig. 4 "Exact" x-range row).
    #[test]
    fn single_copy_exact_output_range() {
        let (net, bounds) = fig1_setup();
        let sub = SubNetwork::decompose(&net, 1, 0, 2);
        let opts = EncodeOptions {
            kind: EncodingKind::Single,
            relax: Relaxation::Exact,
            ..Default::default()
        };
        let enc = encode_subnet(&sub, &bounds, TargetKind::PostActivation, &opts);
        let t = enc.target_vars();
        let mut m = enc.model;
        m.set_objective(Sense::Maximize, 1.0 * t.x.unwrap());
        let hi = m.solve_with(&SolveOptions::default()).unwrap().objective;
        assert!((hi - 1.25).abs() < 1e-6, "max x⁽²⁾ = {hi}, paper says 1.25");
    }

    /// The reuse sink replay is bit-identical to a fresh build: encode under
    /// one δ, re-parameterize under another, and compare against the fresh
    /// encoding at the second δ, model datum by model datum.
    #[test]
    fn reencode_matches_fresh_encode_bitwise() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let sub = SubNetwork::decompose(&net, 1, 0, 2);
        for kind in [EncodingKind::Itne, EncodingKind::Btne, EncodingKind::Single] {
            let mut opts = EncodeOptions {
                kind,
                relax: Relaxation::Lpr,
                refine: 1,
                delta: 0.1,
                ..Default::default()
            };
            let b1 = ibp_twin(&net, &domain, 0.1);
            let refined = refined_for(&sub, &b1, TargetKind::PostActivation, &opts);
            let mut enc =
                encode_subnet_refined(&sub, &b1, TargetKind::PostActivation, &opts, None, &refined);

            // Same structure, new δ: replay must succeed and match fresh.
            opts.delta = 0.05;
            let b2 = ibp_twin(&net, &domain, 0.05);
            let refined2 = refined_for(&sub, &b2, TargetKind::PostActivation, &opts);
            if refined2 != refined {
                // Refinement pick changed — a cache layer above would miss;
                // nothing to assert here.
                continue;
            }
            assert!(
                reencode_subnet(
                    &mut enc,
                    &sub,
                    &b2,
                    TargetKind::PostActivation,
                    &opts,
                    None,
                    &refined2,
                ),
                "replay must succeed when the skeleton is unchanged ({kind:?})"
            );
            let fresh = encode_subnet_refined(
                &sub,
                &b2,
                TargetKind::PostActivation,
                &opts,
                None,
                &refined2,
            );
            assert_models_identical(&enc.model, &fresh.model);
            assert_eq!(enc.binaries, fresh.binaries);
            assert_eq!(enc.refined, fresh.refined);
            assert_eq!(enc.relaxed, fresh.relaxed);
        }
    }

    fn assert_models_identical(a: &Model, b: &Model) {
        assert_eq!(a.num_vars(), b.num_vars());
        assert_eq!(a.num_constraints(), b.num_constraints());
        for j in 0..a.num_vars() {
            let (alo, ahi) = a.bounds_at(j);
            let (blo, bhi) = b.bounds_at(j);
            assert_eq!(alo.to_bits(), blo.to_bits(), "var {j} lo");
            assert_eq!(ahi.to_bits(), bhi.to_bits(), "var {j} hi");
        }
        for r in 0..a.num_constraints() {
            assert_eq!(a.row_cmp(r), b.row_cmp(r), "row {r} cmp");
            assert_eq!(
                a.row_rhs(r).to_bits(),
                b.row_rhs(r).to_bits(),
                "row {r} rhs"
            );
            let (ta, tb) = (a.row_terms(r), b.row_terms(r));
            assert_eq!(ta.len(), tb.len(), "row {r} support");
            for (&(va, ca), &(vb, cb)) in ta.iter().zip(tb) {
                assert_eq!(va, vb, "row {r} var");
                assert_eq!(ca.to_bits(), cb.to_bits(), "row {r} coef");
            }
        }
    }
}
