//! Global robustness certification of ReLU networks via interleaving
//! twin-network encoding — the core contribution of the reproduced DATE 2022
//! paper.
//!
//! A network `F` is **(δ, ε)-globally robust** on domain `X` when every pair
//! of inputs `x, x̂ ∈ X` with `‖x̂ − x‖∞ ≤ δ` satisfies
//! `|F(x̂)_j − F(x)_j| ≤ ε` (Definition 1). This crate answers Problem 1 —
//! *how small an `ε` can be certified for a given `δ`* — with:
//!
//! * [`certify_global`] — the paper's Algorithm 1: interleaving twin-network
//!   encoding (ITNE) + network decomposition (ND) + LP relaxation (LPR) +
//!   selective refinement, returning a sound, deterministic `ε̄ ≥ ε`;
//! * [`exact_global`] — the exact MILP baseline (Eq. 1);
//! * [`split::split_global`] — a Reluplex-style lazy ReLU-splitting exact
//!   solver (the `tR` baseline);
//! * [`local::certify_local`] — local robustness around one input sample
//!   (the comparison in Fig. 4's upper half);
//! * [`ibp::ibp_twin`] — twin interval propagation, seeding and fall-back
//!   for everything above.
//!
//! # Quickstart
//!
//! ```
//! use itne_core::{certify_global, CertifyOptions};
//! use itne_nn::NetworkBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = NetworkBuilder::input(2)
//!     .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)?
//!     .dense(&[&[1.0, -1.0]], &[0.0], true)?
//!     .build();
//! let report = certify_global(
//!     &net,
//!     &[(-1.0, 1.0), (-1.0, 1.0)],
//!     0.1,
//!     &CertifyOptions::default(),
//! )?;
//! // Sound (≥ exact 0.2) and tight (well under IBP's 0.3).
//! assert!(report.epsilon(0) >= 0.2 - 1e-9 && report.epsilon(0) <= 0.3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod algorithm;
pub mod bounds;
pub mod deadline;
pub mod encode;
mod error;
pub mod example;
pub mod ibp;
pub mod interval;
pub mod local;
pub mod oneshot;
pub mod query;
pub mod refine;
pub mod resident;
mod schedule;
pub mod split;
pub mod subnet;

mod exact;

pub use algorithm::{
    certify_global, certify_global_affine, propagate, CertifyOptions, CertifyStats, GlobalReport,
};
pub use bounds::TwinBounds;
pub use encode::{EncodingKind, Relaxation};
pub use error::CertifyError;
pub use exact::{exact_global, exact_global_affine, sampled_lower_bound};
pub use ibp::{ibp_values, ValuePreBounds};
pub use interval::Interval;
pub use resident::{certify_global_resident, ResidentState};
