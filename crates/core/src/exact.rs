//! Exact global robustness baselines.
//!
//! * [`exact_global`] — the paper's Eq. 1: one MILP per output (twin network,
//!   every unstable ReLU binary). Complexity is exponential in the unstable
//!   ReLU count; this is the `tM` column of Table I.
//! * [`sampled_lower_bound`] — a cheap grid/perturbation search that
//!   *under*-approximates `ε` (used by tests to sandwich the certified
//!   bounds, and conceptually matching the paper's PGD under-approximation).

use crate::algorithm::{CertifyOptions, GlobalReport};
use crate::encode::{EncodingKind, Relaxation};
use crate::error::CertifyError;
use itne_milp::SolveOptions;
use itne_nn::{AffineNetwork, Network};

/// Computes the exact `(δ, ε)` bound per output by solving Eq. 1 as a MILP
/// over the whole twin network (window = depth, exact ReLUs, ITNE variables).
///
/// With a stop signal in `solver` (see [`crate::deadline`]), the result
/// degrades gracefully: expired
/// queries keep their sound over-approximation from the search frontier or
/// IBP, so the returned bounds are still valid — check
/// `report.stats.query.fallbacks` and the solve counters to detect timeouts.
///
/// # Errors
///
/// See [`CertifyError`].
pub fn exact_global(
    net: &Network,
    domain: &[(f64, f64)],
    delta: f64,
    solver: SolveOptions,
) -> Result<GlobalReport, CertifyError> {
    let aff = AffineNetwork::from_network(net)?;
    exact_global_affine(&aff, domain, delta, solver)
}

/// [`exact_global`] on an already-lowered network.
///
/// # Errors
///
/// See [`CertifyError`].
pub fn exact_global_affine(
    aff: &AffineNetwork,
    domain: &[(f64, f64)],
    delta: f64,
    solver: SolveOptions,
) -> Result<GlobalReport, CertifyError> {
    let opts = CertifyOptions {
        // Window spanning the whole network makes every sub-problem the full
        // twin MILP; intermediate layers' exact ranges come along for free.
        window: aff.layers.len(),
        encoding: EncodingKind::Itne,
        relaxation: Relaxation::Exact,
        refine: 0,
        closed_form_x: false,
        solver,
        ..Default::default()
    };
    crate::algorithm::certify_global_affine(aff, domain, delta, &opts)
}

/// Grid-samples pairs `(x, x̂)` with `‖x̂ − x‖∞ ≤ δ` and returns the largest
/// observed `|F(x̂)_j − F(x)_j|` per output — a lower bound on the true `ε`.
///
/// `grid` points per input dimension and `probes` perturbation directions
/// per point; exhaustive corners are always included. Only practical for
/// low-dimensional inputs (tests and the illustrating example).
pub fn sampled_lower_bound(
    net: &Network,
    domain: &[(f64, f64)],
    delta: f64,
    grid: usize,
    probes: usize,
) -> Vec<f64> {
    let dim = net.input_dim();
    let out = net.output_dim();
    assert_eq!(domain.len(), dim, "domain/input mismatch");
    let mut best = vec![0.0f64; out];
    let total = grid.pow(dim as u32);
    for idx in 0..total {
        let mut x = vec![0.0; dim];
        let mut rem = idx;
        for d in 0..dim {
            let t = (rem % grid) as f64 / (grid - 1).max(1) as f64;
            rem /= grid;
            x[d] = domain[d].0 + t * (domain[d].1 - domain[d].0);
        }
        let fx = net.forward(&x);
        // Perturbation probes: all corners of the δ-box plus axis patterns.
        let corner_count = 1usize << dim.min(12);
        for p in 0..(corner_count + probes) {
            let mut xh = x.clone();
            for (d, v) in xh.iter_mut().enumerate() {
                let s = if p < corner_count {
                    if (p >> d) & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    }
                } else {
                    // Pseudo-random direction for the probe rounds.
                    let h = (p.wrapping_mul(0x9e3779b9) ^ d.wrapping_mul(0x85eb_ca6b)) & 0xff;
                    (h as f64 / 127.5) - 1.0
                };
                *v = (*v + s * delta).clamp(domain[d].0, domain[d].1);
            }
            let fxh = net.forward(&xh);
            for j in 0..out {
                best[j] = best[j].max((fxh[j] - fx[j]).abs());
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::fig1_network;

    /// Fig. 4 "Exact" row: Δx⁽²⁾ ∈ [-0.2, 0.2] → ε = 0.2.
    #[test]
    fn fig1_exact_epsilon_matches_paper() {
        let net = fig1_network();
        let report = exact_global(
            &net,
            &[(-1.0, 1.0), (-1.0, 1.0)],
            0.1,
            SolveOptions::default(),
        )
        .unwrap();
        assert!(
            (report.epsilon(0) - 0.2).abs() < 1e-5,
            "ε = {}",
            report.epsilon(0)
        );
        assert_eq!(report.stats.query.fallbacks, 0);
    }

    /// The sampled lower bound must bracket the exact value from below and
    /// come close on this tiny example.
    #[test]
    fn sampling_sandwiches_exact() {
        let net = fig1_network();
        let lower = sampled_lower_bound(&net, &[(-1.0, 1.0), (-1.0, 1.0)], 0.1, 41, 8);
        assert!(lower[0] <= 0.2 + 1e-9);
        assert!(
            lower[0] > 0.19,
            "sampled lower bound too weak: {}",
            lower[0]
        );
    }
}
