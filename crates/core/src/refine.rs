//! Selective refinement: scoring relaxed ReLU relations and picking the
//! top-`r` neurons to encode exactly (§II-E "Selective Refinement").
//!
//! The score of a relaxation is its worst-case inaccuracy — the maximum
//! vertical distance between the relaxation's lower and upper bounding
//! functions:
//!
//! * triangle relaxation (Eq. 4): `−y.lo·y.hi / (y.hi − y.lo)`;
//! * distance relaxation (Eq. 6): `max(|Δy.lo|, |Δy.hi|)`.

use crate::bounds::TwinBounds;
use crate::encode::{EncodeOptions, EncodingKind, TargetKind};
use crate::interval::Interval;
use crate::subnet::SubNetwork;

/// A deterministically ordered set of refined `(affine layer, neuron)`
/// pairs.
///
/// Lint rule `hash-iter` bans iterable hash containers in the deterministic
/// crates: a `HashSet` here would only stay sound by the convention that
/// nobody ever iterates it. This set is a sorted `Vec` probed by binary
/// search instead, so membership is O(log n) and any future iteration (or
/// `Debug` rendering in a failing test) is reproducible by construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RefinedSet {
    pairs: Vec<(usize, usize)>,
}

impl RefinedSet {
    /// The empty set.
    pub fn new() -> Self {
        RefinedSet::default()
    }

    fn from_pairs(mut pairs: Vec<(usize, usize)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        RefinedSet { pairs }
    }

    /// Whether `pair` is refined.
    pub fn contains(&self, pair: &(usize, usize)) -> bool {
        self.pairs.binary_search(pair).is_ok()
    }

    /// Number of refined neurons.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no neuron is refined.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs in ascending `(layer, neuron)` order.
    pub fn as_slice(&self) -> &[(usize, usize)] {
        &self.pairs
    }
}

/// Worst-case inaccuracy of the triangle relaxation over `y ∈ [lo, hi]`
/// (0 when the ReLU is stable).
pub fn triangle_score(y: Interval) -> f64 {
    if y.stable_active() || y.stable_inactive() {
        0.0
    } else {
        -y.lo * y.hi / (y.hi - y.lo)
    }
}

/// Worst-case inaccuracy of the Eq. 6 distance relaxation over
/// `Δy ∈ [lo, hi]`.
pub fn distance_score(dy: Interval) -> f64 {
    dy.lo.abs().max(dy.hi.abs())
}

/// Scores one neuron under the given encoding; `None` when nothing about it
/// is relaxed (stable in every relevant phase).
fn neuron_score(kind: EncodingKind, y: Interval, dy: Interval) -> Option<f64> {
    let yh = y.add(dy);
    let y_unstable = !(y.stable_active() || y.stable_inactive());
    let yh_unstable = !(yh.stable_active() || yh.stable_inactive());
    let mut score = 0.0f64;
    let mut any = false;
    match kind {
        EncodingKind::Single => {
            if y_unstable {
                score = triangle_score(y);
                any = true;
            }
        }
        EncodingKind::Btne => {
            if y_unstable {
                score = score.max(triangle_score(y));
                any = true;
            }
            if yh_unstable {
                score = score.max(triangle_score(yh));
                any = true;
            }
        }
        EncodingKind::Itne => {
            if y_unstable {
                score = score.max(triangle_score(y));
                any = true;
            }
            if yh_unstable {
                score = score.max(distance_score(dy));
                any = true;
            }
        }
    }
    any.then_some(score)
}

/// Picks the top-`opts.refine` relaxable neurons of the sub-network by
/// score. Returns `(affine layer, neuron index)` pairs.
pub fn select_refined(
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    target: TargetKind,
    opts: &EncodeOptions,
) -> RefinedSet {
    if opts.refine == 0 {
        return RefinedSet::new();
    }
    let w = sub.window();
    let mut scored: Vec<(f64, usize, usize)> = Vec::new();
    for k in 1..=w {
        if k == w && target == TargetKind::PreActivation {
            break; // the target has no activation in LpRelaxY problems
        }
        let layer = sub.layer_at(k);
        if !sub.net.layers[layer].relu {
            continue;
        }
        for &j in &sub.cone.levels[k] {
            if let Some(s) = neuron_score(opts.kind, bounds.y[layer][j], bounds.dy[layer][j]) {
                scored.push((s, layer, j));
            }
        }
    }
    // Unstable sort is safe here: the comparator breaks score ties by
    // (layer, neuron), so it is already a total order — no two distinct
    // entries compare equal, and the result is identical to a stable sort.
    scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    RefinedSet::from_pairs(
        scored
            .into_iter()
            .take(opts.refine)
            .map(|(_, l, j)| (l, j))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::fig1_affine;
    use crate::ibp::ibp_twin;

    #[test]
    fn triangle_score_formula() {
        // y ∈ [-1, 1]: score = 1/2; stable ranges score 0.
        assert!((triangle_score(Interval::new(-1.0, 1.0)) - 0.5).abs() < 1e-12);
        assert_eq!(triangle_score(Interval::new(0.0, 2.0)), 0.0);
        assert_eq!(triangle_score(Interval::new(-2.0, 0.0)), 0.0);
    }

    #[test]
    fn distance_score_is_linf_of_dy() {
        assert_eq!(distance_score(Interval::new(-0.2, 0.1)), 0.2);
    }

    #[test]
    fn refinement_picks_highest_scores_first() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 1, 0, 2);
        let opts = EncodeOptions {
            refine: 1,
            delta: 0.1,
            ..Default::default()
        };
        let set = select_refined(&sub, &bounds, TargetKind::PostActivation, &opts);
        assert_eq!(set.len(), 1);
        // All three neurons have y ∈ [-1.5, 1.5] (score 0.75 each) and the
        // tie-break favours the earliest layer/index.
        assert!(set.contains(&(0, 0)), "got {set:?}");
    }

    #[test]
    fn zero_refine_selects_nothing() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 1, 0, 2);
        let opts = EncodeOptions {
            refine: 0,
            ..Default::default()
        };
        assert!(select_refined(&sub, &bounds, TargetKind::PostActivation, &opts).is_empty());
    }
}
