//! Closed intervals and the ReLU / ReLU-distance interval arithmetic that
//! underpins both the IBP seeding pass and every encoding's variable bounds.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed interval `[lo, hi]`.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `lo > hi` beyond rounding noise.
    pub fn new(lo: f64, hi: f64) -> Self {
        debug_assert!(lo <= hi + 1e-12, "interval [{lo}, {hi}] is inverted");
        Interval { lo, hi: hi.max(lo) }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: f64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The symmetric interval `[-r, r]`.
    pub fn symmetric(r: f64) -> Self {
        debug_assert!(r >= 0.0);
        Interval { lo: -r, hi: r }
    }

    /// Width `hi − lo`.
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn mid(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Largest absolute value in the interval.
    pub fn max_abs(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// True if `v` lies inside (with `tol` slack).
    pub fn contains(self, v: f64, tol: f64) -> bool {
        v >= self.lo - tol && v <= self.hi + tol
    }

    /// True if `other` is entirely inside (with `tol` slack).
    pub fn encloses(self, other: Interval, tol: f64) -> bool {
        other.lo >= self.lo - tol && other.hi <= self.hi + tol
    }

    /// Minkowski sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo + other.lo,
            hi: self.hi + other.hi,
        }
    }

    /// Shift by a scalar.
    pub fn shift(self, k: f64) -> Interval {
        Interval {
            lo: self.lo + k,
            hi: self.hi + k,
        }
    }

    /// Scale by a scalar (swaps ends when negative).
    pub fn scale(self, k: f64) -> Interval {
        if k >= 0.0 {
            Interval {
                lo: self.lo * k,
                hi: self.hi * k,
            }
        } else {
            Interval {
                lo: self.hi * k,
                hi: self.lo * k,
            }
        }
    }

    /// Exact image under `relu`.
    pub fn relu(self) -> Interval {
        Interval {
            lo: self.lo.max(0.0),
            hi: self.hi.max(0.0),
        }
    }

    /// Tightest interval containing both.
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection; `None` when disjoint beyond `tol`.
    pub fn intersect(self, other: Interval, tol: f64) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi + tol {
            Some(Interval { lo: lo.min(hi), hi })
        } else {
            None
        }
    }

    /// Widens both ends outward by `eps` (soundness slack).
    pub fn inflate(self, eps: f64) -> Interval {
        Interval {
            lo: self.lo - eps,
            hi: self.hi + eps,
        }
    }

    /// True if every point is ≥ 0 (ReLU provably identity).
    pub fn stable_active(self) -> bool {
        self.lo >= 0.0
    }

    /// True if every point is ≤ 0 (ReLU provably zero).
    pub fn stable_inactive(self) -> bool {
        self.hi <= 0.0
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.6}, {:.6}]", self.lo, self.hi)
    }
}

/// The ReLU distance function `g(y, d) = relu(y + d) − relu(y)` (paper
/// Eq. 5): the output difference of a twin ReLU pair whose pre-activations
/// differ by `d`.
pub fn relu_distance(y: f64, d: f64) -> f64 {
    (y + d).max(0.0) - y.max(0.0)
}

/// Tight range of [`relu_distance`] over the box `y × dy`.
///
/// `g` is non-decreasing in `d` for any `y`. For fixed `d ≥ 0` it is
/// non-decreasing in `y`; for fixed `d ≤ 0` it is non-increasing in `y`.
/// Extremes therefore sit at box corners:
///
/// * maximum at `d = dy.hi`, with `y = y.hi` if `dy.hi ≥ 0` else `y = y.lo`;
/// * minimum at `d = dy.lo`, with `y = y.lo` if `dy.lo ≥ 0` else `y = y.hi`.
///
/// This is *tighter* than the paper's Eq. 6 relaxation box `[min(0, dy.lo),
/// max(0, dy.hi)]` because it uses the `y` range; both are sound.
pub fn relu_distance_range(y: Interval, dy: Interval) -> Interval {
    let max = if dy.hi >= 0.0 {
        relu_distance(y.hi, dy.hi)
    } else {
        relu_distance(y.lo, dy.hi)
    };
    let min = if dy.lo >= 0.0 {
        relu_distance(y.lo, dy.lo)
    } else {
        relu_distance(y.hi, dy.lo)
    };
    Interval::new(min, max)
}

/// The paper's Eq. 6 relaxation bounds for the ReLU distance relation,
/// oblivious to the `y` range (valid for all `y ∈ R`): with
/// `l = min(0, dy.lo)` and `u = max(0, dy.hi)`,
///
/// ```text
/// l(u − Δy)/(u − l)  ≤  Δx  ≤  u(Δy − l)/(u − l)
/// ```
///
/// Returns `(l, u)`; the caller forms the two linear constraints. When
/// `u − l` vanishes the relation degenerates to `Δx = 0`.
pub fn distance_relaxation_bounds(dy: Interval) -> (f64, f64) {
    (dy.lo.min(0.0), dy.hi.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = Interval::new(-1.0, 2.0);
        assert_eq!(a.width(), 3.0);
        assert_eq!(a.max_abs(), 2.0);
        assert_eq!(a.scale(-2.0), Interval::new(-4.0, 2.0));
        assert_eq!(a.add(Interval::new(1.0, 1.5)), Interval::new(0.0, 3.5));
        assert_eq!(a.relu(), Interval::new(0.0, 2.0));
    }

    #[test]
    fn union_and_intersection() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.0, 3.0);
        assert_eq!(a.union(b), Interval::new(0.0, 3.0));
        assert_eq!(a.intersect(b, 0.0), Some(Interval::new(1.0, 2.0)));
        assert_eq!(a.intersect(Interval::new(5.0, 6.0), 0.0), None);
    }

    #[test]
    fn relu_distance_matches_definition() {
        assert_eq!(relu_distance(1.0, 0.5), 0.5); // both active
        assert_eq!(relu_distance(-1.0, 0.5), 0.0); // both inactive
        assert_eq!(relu_distance(-0.25, 0.5), 0.25); // crossing up
        assert_eq!(relu_distance(0.25, -0.5), -0.25); // crossing down
    }

    #[test]
    fn distance_range_brute_force_agreement() {
        // Exhaustive grid check of corner formulas on assorted boxes.
        let cases = [
            (Interval::new(-1.0, 1.0), Interval::new(-0.5, 0.5)),
            (Interval::new(0.2, 1.0), Interval::new(-0.5, 0.5)),
            (Interval::new(-1.0, -0.2), Interval::new(-0.5, 0.5)),
            (Interval::new(-1.0, 1.0), Interval::new(0.1, 0.5)),
            (Interval::new(-1.0, 1.0), Interval::new(-0.5, -0.1)),
            (Interval::new(5.0, 10.0), Interval::new(-1.0, -0.5)),
            (Interval::new(-0.3, 0.1), Interval::new(-0.2, 0.4)),
        ];
        for (y, dy) in cases {
            let r = relu_distance_range(y, dy);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            let n = 160;
            for i in 0..=n {
                for j in 0..=n {
                    let yv = y.lo + y.width() * i as f64 / n as f64;
                    let dv = dy.lo + dy.width() * j as f64 / n as f64;
                    let g = relu_distance(yv, dv);
                    lo = lo.min(g);
                    hi = hi.max(g);
                }
            }
            assert!(
                (r.lo - lo).abs() < 1e-9,
                "lo mismatch for {y} × {dy}: {} vs {lo}",
                r.lo
            );
            assert!(
                (r.hi - hi).abs() < 1e-9,
                "hi mismatch for {y} × {dy}: {} vs {hi}",
                r.hi
            );
        }
    }

    #[test]
    fn eq6_box_contains_tight_range() {
        let cases = [
            (Interval::new(-1.0, 1.0), Interval::new(-0.5, 0.5)),
            (Interval::new(3.0, 4.0), Interval::new(-2.0, -1.0)),
            (Interval::new(-4.0, -3.0), Interval::new(1.0, 2.0)),
        ];
        for (y, dy) in cases {
            let tight = relu_distance_range(y, dy);
            let (l, u) = distance_relaxation_bounds(dy);
            assert!(l <= tight.lo + 1e-12 && tight.hi <= u + 1e-12);
        }
    }
}
