//! The paper's Fig. 1 illustrating network, shared by tests, docs and the
//! Fig. 3/4 reproduction binaries.

use itne_nn::{AffineNetwork, Network, NetworkBuilder};

/// The 2-input, 2-hidden, 1-output ReLU network of the paper's Fig. 1:
///
/// ```text
/// y⁽¹⁾₁ = x₁ + 0.5·x₂    y⁽¹⁾₂ = -0.5·x₁ + x₂    (both ReLU)
/// y⁽²⁾  = x⁽¹⁾₁ − x⁽¹⁾₂                           (ReLU)
/// ```
///
/// All biases are zero. Used throughout §II-D with input domain
/// `X = [-1, 1]²` and perturbation bound `δ = 0.1`.
pub fn fig1_network() -> Network {
    NetworkBuilder::input(2)
        .dense(&[&[1.0, 0.5], &[-0.5, 1.0]], &[0.0, 0.0], true)
        .expect("static shapes are valid")
        .dense(&[&[1.0, -1.0]], &[0.0], true)
        .expect("static shapes are valid")
        .build()
}

/// [`fig1_network`] lowered to the affine IR.
pub fn fig1_affine() -> AffineNetwork {
    AffineNetwork::from_network(&fig1_network()).expect("fig1 network lowers")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_has_expected_shape() {
        let net = fig1_network();
        assert_eq!(net.input_dim(), 2);
        assert_eq!(net.output_dim(), 1);
        assert_eq!(net.hidden_neurons(), 2);
    }
}
