//! Deterministic work-stealing executor for the certification engine.
//!
//! The per-layer loop used to hand whole neurons to a static pool off a
//! shared counter; neurons of one layer can differ in cost by orders of
//! magnitude (a conv-window target vs an FC row), so the pool regularly sat
//! idle at the layer barrier behind one expensive neuron. This executor goes
//! finer: work is a list of *task units* — in the certifier, a neuron's
//! `LpRelaxY` objective-sweep chunk, which may spawn its `LpRelaxX` chunk as
//! a follow-up — distributed blockwise over per-worker deques. A worker pops
//! from the front of its own deque, pushes follow-ups to its own front
//! (depth-first locality: finish the neuron you started while its bounds are
//! hot), and when its deque runs dry **steals from the back of the next
//! non-empty victim**, so idle workers drain the expensive tail instead of
//! waiting.
//!
//! # Why stealing cannot change results
//!
//! Determinism never rests on the schedule. Every task unit is a pure
//! function of inputs fixed before the layer started (the previous layers'
//! bounds), each result carries its **slot index** and is merged by that
//! index after the join, and per-worker stat accumulators are combined in
//! worker order with order-insensitive operations (saturating sums and
//! maxes over a schedule-invariant multiset of per-task deltas). Which
//! worker ran which unit, and in what interleaving, is therefore
//! unobservable — the property the steal-schedule proptest drives with the
//! [`StealHook`] below.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What running one task unit produced: a finished result for `slot`, or a
/// follow-up unit (pushed to the running worker's own deque, where any other
/// worker may steal it).
pub(crate) enum Step<T, R> {
    Done { slot: usize, result: R },
    Follow(T),
}

/// Seeded fake-steal schedule injector, for tests only: before each pop, a
/// worker consults the hook and — on a pseudo-random subset of steps —
/// steals from a pseudo-random victim *even though its own deque is
/// non-empty*. Driving certification through many seeds exercises arbitrary
/// steal interleavings; because results merge by slot index, every seed must
/// produce bit-identical bounds (asserted by the scheduler proptests).
#[derive(Copy, Clone, Debug)]
pub(crate) struct StealHook {
    seed: u64,
}

impl StealHook {
    pub(crate) fn new(seed: u64) -> Self {
        StealHook { seed }
    }

    /// Deterministic per-(worker, step) decision: `Some(victim)` forces a
    /// steal attempt from that worker first, `None` runs the normal policy.
    fn steal_first(&self, worker: usize, step: u64, nworkers: usize) -> Option<usize> {
        let mut s = self
            .seed
            .wrapping_add((worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(step.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            | 1;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s & 3 == 0).then_some((s >> 2) as usize % nworkers)
    }
}

/// Global fake-steal seed used by [`run_steal`] when the caller passes no
/// hook — settable only from this crate's tests. Results are
/// schedule-invariant, so a seed leaking into a concurrently running test
/// changes nothing observable.
static TEST_SEED: Mutex<Option<u64>> = Mutex::new(None);

/// Installs (or clears) the process-wide fake-steal seed.
#[cfg(test)]
pub(crate) fn set_test_steal_seed(seed: Option<u64>) {
    *TEST_SEED.lock().expect("no panics hold this lock") = seed;
}

fn test_steal_hook() -> Option<StealHook> {
    TEST_SEED
        .lock()
        .expect("no panics hold this lock")
        .map(StealHook::new)
}

/// Runs `initial` task units (plus any follow-ups they spawn) across
/// `threads` workers and returns the `slots` results in slot order, together
/// with the per-worker accumulators in worker order.
///
/// Every chain of follow-ups must terminate in exactly one
/// [`Step::Done`], and each slot in `0..slots` must be finished exactly
/// once; the scheduler joins when all slots are filled. With `threads <= 1`
/// everything runs inline on the caller's thread in deque order — the
/// serial path and the parallel path are literally the same code.
///
/// # Panics
///
/// Panics if a task finishes an out-of-range slot, or (after the join) if
/// some slot was never finished — both are task-construction bugs.
pub(crate) fn run_steal<T, R, A, F>(
    threads: usize,
    initial: Vec<T>,
    slots: usize,
    run: F,
) -> (Vec<R>, Vec<A>)
where
    T: Send,
    R: Send,
    A: Default + Send,
    F: Fn(T, &mut A) -> Step<T, R> + Sync,
{
    let mut out: Vec<Option<R>> = Vec::with_capacity(slots);
    out.resize_with(slots, || None);

    if threads <= 1 {
        let mut acc = A::default();
        let mut queue: VecDeque<T> = initial.into();
        while let Some(task) = queue.pop_front() {
            match run(task, &mut acc) {
                Step::Done { slot, result } => {
                    debug_assert!(out[slot].is_none(), "slot {slot} finished twice");
                    out[slot] = Some(result);
                }
                Step::Follow(t) => queue.push_front(t),
            }
        }
        let results = out
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| panic!("slot {i} never finished")))
            .collect();
        return (results, vec![acc]);
    }

    let hook = test_steal_hook();
    let nworkers = threads;
    // Blockwise initial distribution: worker `w` owns a contiguous run of
    // units, so its depth-first pops walk neighboring neurons (shared
    // windows, warm caches) and steals take from the far end of a victim.
    let mut queues: Vec<Mutex<VecDeque<T>>> = Vec::with_capacity(nworkers);
    for _ in 0..nworkers {
        queues.push(Mutex::new(VecDeque::new()));
    }
    // `ntasks` is nonzero whenever this loop body runs.
    let ntasks = initial.len();
    for (i, task) in initial.into_iter().enumerate() {
        let w = i * nworkers / ntasks;
        queues[w.min(nworkers - 1)]
            .get_mut()
            .expect("queues are unshared during distribution")
            .push_back(task);
    }

    let remaining = AtomicUsize::new(slots);
    let merged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(slots));
    let mut accs: Vec<Option<A>> = Vec::with_capacity(nworkers);
    accs.resize_with(nworkers, || None);

    let queues = &queues;
    let remaining = &remaining;
    let merged_ref = &merged;
    let run = &run;
    let hook = hook.as_ref();
    std::thread::scope(|s| {
        for (w, acc_slot) in accs.iter_mut().enumerate() {
            s.spawn(move || {
                let mut acc = A::default();
                let mut local: Vec<(usize, R)> = Vec::new();
                let mut step = 0u64;
                while remaining.load(Ordering::Acquire) > 0 {
                    step += 1;
                    let forced = hook.and_then(|h| h.steal_first(w, step, nworkers));
                    let task = pop_or_steal(queues, w, forced);
                    let Some(task) = task else {
                        std::thread::yield_now();
                        continue;
                    };
                    match run(task, &mut acc) {
                        Step::Done { slot, result } => {
                            local.push((slot, result));
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        Step::Follow(t) => {
                            queues[w]
                                .lock()
                                .expect("no panics hold this lock")
                                .push_front(t);
                        }
                    }
                }
                merged_ref
                    .lock()
                    .expect("no panics hold this lock")
                    .append(&mut local);
                *acc_slot = Some(acc);
            });
        }
    });

    for (slot, result) in merged.into_inner().expect("scope joined all threads") {
        debug_assert!(out[slot].is_none(), "slot {slot} finished twice");
        out[slot] = Some(result);
    }
    let results = out
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("slot {i} never finished")))
        .collect();
    let accs = accs
        .into_iter()
        .map(|a| a.expect("scope joined every worker"))
        .collect();
    (results, accs)
}

/// One scheduling decision for worker `w`: the hook's forced victim first
/// (if any), then the worker's own front, then — own deque dry — the backs
/// of the other deques in the deterministic scan order `w+1, w+2, …` (mod
/// `n`). Which attempt wins still depends on timing; only *results* are
/// schedule-invariant.
fn pop_or_steal<T>(queues: &[Mutex<VecDeque<T>>], w: usize, forced: Option<usize>) -> Option<T> {
    if let Some(victim) = forced {
        if victim != w {
            if let Some(t) = queues[victim]
                .lock()
                .expect("no panics hold this lock")
                .pop_back()
            {
                return Some(t);
            }
        }
    }
    if let Some(t) = queues[w]
        .lock()
        .expect("no panics hold this lock")
        .pop_front()
    {
        return Some(t);
    }
    let n = queues.len();
    for d in 1..n {
        let victim = (w + d) % n;
        if let Some(t) = queues[victim]
            .lock()
            .expect("no panics hold this lock")
            .pop_back()
        {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squares 0..n with a follow-up hop per task (Sweep → Post shape):
    /// results must come back in slot order at every thread count, with the
    /// accumulators summing to the task count.
    #[test]
    fn merge_by_slot_is_schedule_invariant() {
        #[derive(Default)]
        struct Count(u64);
        enum Task {
            First(usize),
            Second(usize),
        }
        let run = |t: Task, acc: &mut Count| match t {
            Task::First(i) => {
                acc.0 += 1;
                Task::Second(i).into_follow()
            }
            Task::Second(i) => Step::Done {
                slot: i,
                result: (i * i) as u64,
            },
        };
        impl Task {
            fn into_follow(self) -> Step<Task, u64> {
                Step::Follow(self)
            }
        }
        let want: Vec<u64> = (0..97u64).map(|i| i * i).collect();
        for threads in [1usize, 2, 3, 8] {
            let initial: Vec<Task> = (0..97).map(Task::First).collect();
            let (got, accs) = run_steal(threads, initial, 97, run);
            assert_eq!(got, want, "threads = {threads}");
            assert_eq!(accs.len(), threads.max(1));
            assert_eq!(accs.iter().map(|c| c.0).sum::<u64>(), 97);
        }
    }

    /// Forced fake-steal schedules are invisible in the results.
    #[test]
    fn fake_steal_seeds_are_invisible() {
        let run = |i: usize, _: &mut ()| Step::Done::<usize, u64> {
            slot: i,
            result: (i as u64).wrapping_mul(0x9e37) ^ 0xabcd,
        };
        let (want, _) = run_steal(1, (0..64).collect(), 64, run);
        for seed in [0u64, 1, 42, u64::MAX] {
            set_test_steal_seed(Some(seed));
            let (got, _) = run_steal(4, (0..64).collect(), 64, run);
            set_test_steal_seed(None);
            assert_eq!(got, want, "seed = {seed}");
        }
    }

    /// More workers than tasks: surplus workers find empty deques
    /// everywhere and exit cleanly once the slots drain.
    #[test]
    fn more_workers_than_tasks() {
        let run = |i: usize, _: &mut ()| Step::Done::<usize, usize> { slot: i, result: i };
        let (got, accs) = run_steal(8, (0..3).collect(), 3, run);
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(accs.len(), 8);
    }
}
