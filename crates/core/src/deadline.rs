//! The sanctioned wall-clock sites behind every solver deadline.
//!
//! The LP/MILP kernel (`itne_milp`) never reads the clock — determinism
//! lint rule `wall-clock` bans `Instant::now` there outright, keeping each
//! solve a pure function of its inputs and stop signal. Time-based
//! cancellation therefore lives here: callers turn an [`Instant`] or a
//! [`Duration`] budget into a [`StopWhen`] built from the one audited clock
//! read below, and hand that to [`SolveOptions::stop`].

use itne_milp::{SolveOptions, StopWhen, TelemetryClock};
use std::time::{Duration, Instant};

/// A stop signal that fires once `deadline` has passed.
#[allow(clippy::disallowed_methods)]
pub fn stop_at(deadline: Instant) -> StopWhen {
    // lint:allow(wall-clock): the audited clock poll backing every solver deadline
    StopWhen::new(move || Instant::now() >= deadline)
}

/// A stop signal that fires once `budget` has elapsed, measured from now.
#[allow(clippy::disallowed_methods)]
pub fn stop_after(budget: Duration) -> StopWhen {
    // lint:allow(wall-clock): anchoring a relative budget to an absolute deadline
    stop_at(Instant::now() + budget)
}

/// Default [`SolveOptions`] with a wall-clock budget measured from now (the
/// successor of the retired `SolveOptions::with_budget`).
pub fn solver_with_budget(budget: Duration) -> SolveOptions {
    SolveOptions {
        stop: Some(stop_after(budget)),
        ..SolveOptions::default()
    }
}

/// A monotonic nanosecond clock for solver telemetry
/// ([`SolveOptions::telemetry`]): the solver accumulates refactorization and
/// FTRAN/BTRAN time through it without ever reading the wall clock itself,
/// so the determinism lint stays airtight — skipping the clock changes
/// timing counters, never pivots or bounds.
#[allow(clippy::disallowed_methods)]
pub fn telemetry_clock() -> TelemetryClock {
    // lint:allow(wall-clock): the audited clock read backing solver timing telemetry
    let epoch = Instant::now();
    // lint:allow(wall-clock): nanoseconds since the clock's own epoch, telemetry only
    TelemetryClock::new(move || epoch.elapsed().as_nanos() as u64)
}

/// An [`Instant`] guaranteed to be already past-or-present, for exercising
/// expired-deadline paths. `Instant::now() - Duration` can panic on
/// platforms whose monotonic clock starts near zero (the subtraction
/// underflows), so this backs off via `checked_sub` and falls back to "now"
/// — which every `now >= deadline` check also treats as expired.
#[allow(clippy::disallowed_methods)]
pub fn already_expired() -> Instant {
    // lint:allow(wall-clock): constructing an expired deadline for tests and benches
    let now = Instant::now();
    now.checked_sub(Duration::from_secs(1)).unwrap_or(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expired_instant_never_panics_and_is_expired() {
        let d = already_expired();
        assert!(stop_at(d).should_stop());
    }

    #[test]
    fn generous_budget_does_not_fire() {
        assert!(!stop_after(Duration::from_secs(3600)).should_stop());
        assert!(solver_with_budget(Duration::from_secs(3600))
            .stop
            .expect("budget installs a stop signal")
            .should_stop()
            .eq(&false));
    }

    #[test]
    fn telemetry_clock_is_monotonic_from_zero() {
        let c = telemetry_clock();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a, "telemetry clock went backwards: {a} then {b}");
    }

    #[test]
    fn or_combinator_fires_when_either_does() {
        let far = stop_after(Duration::from_secs(3600));
        assert!(far.clone().or(StopWhen::immediately()).should_stop());
        assert!(!far.clone().or(far).should_stop());
    }
}
