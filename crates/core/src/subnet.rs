//! Network decomposition (`NetDecompose` in the paper's Algorithm 1).
//!
//! A sub-network `F_w(·)` is the backward dependency cone of a single target
//! neuron across a window of `w` affine layers. For fully-connected layers
//! the cone spans whole layers; for convolutional layers it is the neuron's
//! receptive field, which is what keeps the per-neuron LPs small on conv
//! nets.

use itne_nn::{AffineNetwork, Cone};

/// A decomposed sub-network: the cone of `target` in affine layer `layer`
/// spanning `window` layers, with level 0 being the sub-network input
/// `x⁽ⁱ⁻ʷ⁾` (the network input when `layer + 1 == window`).
#[derive(Clone, Debug)]
pub struct SubNetwork<'a> {
    /// The full network this was cut from.
    pub net: &'a AffineNetwork,
    /// The dependency cone (levels of neuron indices).
    pub cone: Cone,
}

impl<'a> SubNetwork<'a> {
    /// Decomposes `net` around `target` in `layer` with the given window,
    /// clamping the window to the available prefix (`w = min(window,
    /// layer+1)` — the paper's Algorithm 1 line 4, with the `max` typo
    /// corrected; see DESIGN.md).
    ///
    /// # Panics
    ///
    /// Panics if `layer` or `target` are out of range or `window == 0`.
    pub fn decompose(net: &'a AffineNetwork, layer: usize, target: usize, window: usize) -> Self {
        assert!(window >= 1, "window must be positive");
        let w = window.min(layer + 1);
        SubNetwork {
            net,
            cone: net.cone(layer, target, w),
        }
    }

    /// Window depth `w`.
    pub fn window(&self) -> usize {
        self.cone.window
    }

    /// The affine layer feeding cone level `k ∈ 1..=w`.
    pub fn layer_at(&self, k: usize) -> usize {
        self.cone.layer_at(k)
    }

    /// True when level 0 of this sub-network is the *network* input, so the
    /// twin coupling constraints (`‖Δx⁽⁰⁾‖∞ ≤ δ`, `x̂⁽⁰⁾ ∈ X`) apply.
    pub fn starts_at_input(&self) -> bool {
        self.cone.layer + 1 == self.cone.window
    }

    /// The target neuron's index within the network layer.
    pub fn target(&self) -> usize {
        self.cone.levels[self.cone.window][0]
    }

    /// Total neurons across all levels (a proxy for LP size).
    pub fn size(&self) -> usize {
        self.cone.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::fig1_affine;

    #[test]
    fn window_clamps_to_prefix() {
        let net = fig1_affine();
        let s = SubNetwork::decompose(&net, 0, 1, 5);
        assert_eq!(s.window(), 1);
        assert!(s.starts_at_input());
        assert_eq!(s.target(), 1);
    }

    #[test]
    fn mid_network_window_does_not_reach_input() {
        let net = fig1_affine();
        let s = SubNetwork::decompose(&net, 1, 0, 1);
        assert!(!s.starts_at_input());
        assert_eq!(s.layer_at(1), 1);
        assert_eq!(s.cone.levels[0], vec![0, 1]);
    }

    #[test]
    fn full_window_reaches_input() {
        let net = fig1_affine();
        let s = SubNetwork::decompose(&net, 1, 0, 2);
        assert!(s.starts_at_input());
        assert_eq!(s.size(), 2 + 2 + 1);
    }
}
