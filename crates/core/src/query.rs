//! Range queries over encoded sub-networks: the paper's `LpRelaxY` and
//! `LpRelaxX` sub-problems.
//!
//! Every query returns a *sound* interval: LP/MILP relaxation optima are
//! outer bounds by construction; solver failures fall back to the caller's
//! interval (typically IBP), and successful results are intersected with
//! that fallback (both are sound, so the intersection is sound and tighter).
//!
//! Every LP optimum passes through one pipeline before it becomes a bound
//! ([`certified_bound`]): pad outward by [`SOUND_SLACK`] plus a relative
//! term, snap outward onto [`BOUND_GRID`], and — when certificate checking
//! is on — validate the *snapped* claim against the solve's
//! [`itne_milp::DualCertificate`] in exact rational arithmetic
//! (`itne_certcheck`). A bound whose certificate fails the check is
//! discarded in favor of the sound IBP fallback and counted in
//! [`QueryStats::cert_failures`].
//!
//! Each sub-problem encodes its skeleton **once** and sweeps all of its
//! objectives (min/max of the target's value and distance expressions)
//! through one [`BatchSolver`]: the first solve runs cold, every later one
//! warm-starts from the previous optimal basis and skips simplex phase 1.
//! Warm starting is a pure optimization — a basis that cannot be restored
//! falls back to a cold solve inside the batch layer — so certified ranges
//! are identical to the per-objective cold path (asserted bit-for-bit by the
//! golden regression suite; disable via [`SolveOptions::warm_start`]).

use crate::encode::EncodedSubNet;
use crate::interval::Interval;
use itne_certcheck::{verify_bound, RowCmp, RowRef};
use itne_milp::{
    Basis, BatchSolver, BatchStats, Cmp, LinExpr, Model, Sense, Solution, SolveOptions, StopWhen,
};

/// Slack added to LP optima before use as bounds, absorbing solver
/// tolerances.
const SOUND_SLACK: f64 = 1e-7;

/// Grid the padded optima are snapped *outward* onto (2⁻³⁰ ≈ 9.3e-10, two
/// orders below [`SOUND_SLACK`]). Different pivot paths to the same optimum
/// — cold vs warm-started, or a future alternative backend — land within a
/// few ulps of each other; snapping outward collapses them onto the same
/// representable bound *unless the two values straddle a grid line*, so
/// path-independence is overwhelmingly likely per solve rather than
/// absolute. For a fixed network it is deterministic either way, which is
/// what the golden suite locks; a straddle would surface there as a stable,
/// investigable diff, not flakiness. Snapping away from the feasible region
/// only ever *loosens* the bound, so soundness is unconditional.
const BOUND_GRID: f64 = 1.0 / (1024.0 * 1024.0 * 1024.0);

/// Magnitude past which grid snapping degenerates (the quotient leaves the
/// exactly-representable integer range); such bounds are kept un-snapped —
/// their relative slack term (`|v|·1e-9`) already dwarfs any path noise.
const GRID_LIMIT: f64 = 1e6;

/// Rounds a padded bound outward (`up` for upper bounds, down for lower) to
/// the [`BOUND_GRID`] lattice. `grid` is the per-interval snapping decision
/// from [`interval_grid`]; non-finite values always pass through.
fn snap_outward(v: f64, up: bool, grid: bool) -> f64 {
    if !grid || !v.is_finite() {
        return v;
    }
    let q = v / BOUND_GRID;
    let q = if up { q.ceil() } else { q.floor() };
    q * BOUND_GRID
}

/// Whether both bounds of an interval snap onto [`BOUND_GRID`]: only when
/// every present LP optimum sits strictly inside [`GRID_LIMIT`]. Decided
/// once per interval on the *raw* optima — before outward padding — so the
/// padding can never push one side across the cutoff while its twin stays
/// inside, which would snap one bound of the interval and not the other.
/// Absent sides (solver failure → IBP fallback) and non-finite optima
/// (which fall back anyway) don't participate in the decision.
fn interval_grid(sides: [Option<f64>; 2]) -> bool {
    sides
        .iter()
        .flatten()
        .all(|v| !v.is_finite() || v.abs() < GRID_LIMIT)
}

/// Work counters accumulated across queries.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// LP/MILP solves issued.
    pub solves: u64,
    /// Total simplex pivots.
    pub pivots: u64,
    /// Total branch-and-bound nodes.
    pub nodes: u64,
    /// Queries that fell back to the caller's interval (solver failure or
    /// early-out on a fired stop signal).
    pub fallbacks: u64,
    /// Solves completed from a warm-started simplex basis (phase 1 skipped).
    pub warm_hits: u64,
    /// Warm-start attempts that were rejected and re-ran cold.
    pub warm_misses: u64,
    /// Estimated simplex pivots avoided by warm starts (see
    /// [`BatchStats::pivots_saved`]).
    pub pivots_saved: u64,
    /// Total basis refactorizations across all solves (sparse-engine eta
    /// rebuilds plus warm-restore factorizations).
    pub refactorizations: u64,
    /// Peak product-form eta-file length observed in any single solve.
    pub eta_len: u64,
    /// Structural non-zeros of the largest constraint matrix solved — the
    /// sparsity the revised simplex exploits on that worst-case sub-problem.
    pub nnz: u64,
    /// Bounds validated against their dual certificate in exact rational
    /// arithmetic (certificate checking enabled and the solve emitted one).
    pub certs_checked: u64,
    /// Certificate checks that *failed*: the reported bound could not be
    /// re-derived from the solve's own duals. Each failure falls back to the
    /// sound IBP interval (also counted in `fallbacks`), so results stay
    /// sound; a non-zero count flags solver numerics worth investigating.
    pub cert_failures: u64,
    /// Nanoseconds spent refactorizing the basis, summed across all solves.
    /// Zero unless a [`itne_milp::TelemetryClock`] is installed on the
    /// solver options (see [`crate::deadline::telemetry_clock`]).
    pub refactor_time_ns: u64,
    /// Nanoseconds spent in FTRAN/BTRAN passes, summed across all solves.
    /// Zero without a telemetry clock.
    pub ftran_btran_time_ns: u64,
    /// Peak LU fill (`L` + `U` stored non-zeros) observed in any single
    /// solve ([`itne_milp::Engine::Lu`] only).
    pub lu_fill_nnz: u64,
    /// Resident sub-problem encodings reused in place: the cached constraint
    /// skeleton matched and only bounds/RHS were re-parameterized
    /// ([`crate::resident::ResidentState`]).
    pub encoding_cache_hits: u64,
    /// Resident encodings that could not be reused (first touch, refined-set
    /// change, or a structural mismatch during replay) and were rebuilt.
    pub encoding_cache_misses: u64,
    /// Warm starts seeded from a basis stored by a *previous* query (the
    /// resident basis store), as opposed to the within-sweep chain. A subset
    /// of `warm_hits`.
    pub cross_query_warm_hits: u64,
}

impl QueryStats {
    /// Accumulates another counter set. Saturating rather than wrapping:
    /// these are telemetry merged from per-worker accumulators at thread
    /// joins, and a pegged counter on a pathological run must degrade to
    /// "at least this much", never to a small wrapped lie (or a panic in
    /// debug builds) inside an otherwise-sound certification.
    pub fn absorb(&mut self, other: QueryStats) {
        self.solves = self.solves.saturating_add(other.solves);
        self.pivots = self.pivots.saturating_add(other.pivots);
        self.nodes = self.nodes.saturating_add(other.nodes);
        self.fallbacks = self.fallbacks.saturating_add(other.fallbacks);
        self.warm_hits = self.warm_hits.saturating_add(other.warm_hits);
        self.warm_misses = self.warm_misses.saturating_add(other.warm_misses);
        self.pivots_saved = self.pivots_saved.saturating_add(other.pivots_saved);
        self.refactorizations = self.refactorizations.saturating_add(other.refactorizations);
        self.eta_len = self.eta_len.max(other.eta_len);
        self.nnz = self.nnz.max(other.nnz);
        self.certs_checked = self.certs_checked.saturating_add(other.certs_checked);
        self.cert_failures = self.cert_failures.saturating_add(other.cert_failures);
        self.refactor_time_ns = self.refactor_time_ns.saturating_add(other.refactor_time_ns);
        self.ftran_btran_time_ns = self
            .ftran_btran_time_ns
            .saturating_add(other.ftran_btran_time_ns);
        self.lu_fill_nnz = self.lu_fill_nnz.max(other.lu_fill_nnz);
        self.encoding_cache_hits = self
            .encoding_cache_hits
            .saturating_add(other.encoding_cache_hits);
        self.encoding_cache_misses = self
            .encoding_cache_misses
            .saturating_add(other.encoding_cache_misses);
        self.cross_query_warm_hits = self
            .cross_query_warm_hits
            .saturating_add(other.cross_query_warm_hits);
    }

    /// Folds in the warm-start counters of one finished batch sweep. Solve
    /// and pivot counts are *not* taken from the batch — they are already
    /// accounted per query — only the counters unique to batching.
    fn absorb_batch(&mut self, batch: BatchStats) {
        self.warm_hits = self.warm_hits.saturating_add(batch.warm_hits);
        self.warm_misses = self.warm_misses.saturating_add(batch.warm_misses);
        self.pivots_saved = self.pivots_saved.saturating_add(batch.pivots_saved);
        // Seed hits are warm starts from a basis stored by an *earlier*
        // query over the same encoding (only `BatchSolver::with_seed` sweeps
        // can have them; plain batches report zero).
        self.cross_query_warm_hits = self.cross_query_warm_hits.saturating_add(batch.seed_hits);
    }
}

/// Default for [`crate::algorithm::CertifyOptions::check_certificates`]:
/// the `ITNE_CHECK_CERTS` environment variable, read once at first use.
/// Unset, empty, `0`, `false`, or `off` disable checking; anything else
/// enables it. Checking is a pure validation layer — it never tightens a
/// bound, only replaces an unverifiable one with the IBP fallback — so CI
/// can force it on without perturbing default results.
pub fn default_check_certificates() -> bool {
    static CHECK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CHECK.get_or_init(|| {
        std::env::var("ITNE_CHECK_CERTS")
            .map(|v| !matches!(v.trim(), "" | "0" | "false" | "off"))
            .unwrap_or(false)
    })
}

/// Minimizes and maximizes `expr` over the encoded model, returning a sound
/// interval clipped to `fallback`.
pub fn range_of_expr(
    enc: &mut EncodedSubNet,
    expr: LinExpr,
    fallback: Interval,
    solver: &SolveOptions,
    check: bool,
    stats: &mut QueryStats,
) -> Interval {
    let mut batch = BatchSolver::new(&mut enc.model);
    let r = range_in_batch(&mut batch, expr, fallback, solver, check, stats);
    stats.absorb_batch(batch.stats());
    r
}

/// [`range_of_expr`] inside an already-open batch sweep, so consecutive
/// ranges over the same skeleton share one warm-start chain.
fn range_in_batch(
    batch: &mut BatchSolver<'_>,
    expr: LinExpr,
    fallback: Interval,
    solver: &SolveOptions,
    check: bool,
    stats: &mut QueryStats,
) -> Interval {
    let lo_sol = directed_solve(batch, expr.clone(), Sense::Minimize, solver, stats);
    let hi_sol = directed_solve(batch, expr, Sense::Maximize, solver, stats);
    let grid = interval_grid([
        lo_sol.as_ref().map(Solution::bound_value),
        hi_sol.as_ref().map(Solution::bound_value),
    ]);
    // Both solves installed the same objective expression, so the model
    // data behind `batch.model()` matches both certificates (the sense is
    // passed per side below).
    let lo = certified_bound(
        batch.model(),
        lo_sol,
        Sense::Minimize,
        grid,
        check,
        fallback.lo,
        stats,
    );
    let hi = certified_bound(
        batch.model(),
        hi_sol,
        Sense::Maximize,
        grid,
        check,
        fallback.hi,
        stats,
    );
    // Both [lo, hi] and fallback are sound outer ranges; intersect.
    Interval::new(lo.min(hi), hi.max(lo))
        .intersect(fallback, 1e-9)
        .unwrap_or(fallback)
}

/// One directed solve. Returns `None` when the solver cannot produce a
/// solution (errors, or an early-out on a fired stop signal) — the caller
/// then uses its fallback bound.
fn directed_solve(
    batch: &mut BatchSolver<'_>,
    expr: LinExpr,
    sense: Sense,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> Option<Solution> {
    if solver.stop.as_ref().is_some_and(StopWhen::should_stop) {
        stats.fallbacks += 1;
        return None;
    }
    stats.solves += 1;
    match batch.solve(sense, expr, solver) {
        Ok(sol) => {
            stats.pivots += sol.stats.pivots;
            stats.nodes += sol.stats.nodes;
            stats.refactorizations += sol.stats.refactorizations;
            stats.eta_len = stats.eta_len.max(sol.stats.eta_len);
            stats.nnz = stats.nnz.max(sol.stats.nnz);
            stats.refactor_time_ns += sol.stats.refactor_time_ns;
            stats.ftran_btran_time_ns += sol.stats.ftran_btran_time_ns;
            stats.lu_fill_nnz = stats.lu_fill_nnz.max(sol.stats.lu_fill_nnz);
            Some(sol)
        }
        Err(_) => {
            stats.fallbacks += 1;
            None
        }
    }
}

/// Converts one directed solve into a *certified* sound bound — the single
/// gate every LP optimum passes before it is used as a bound (enforced by
/// the `cert-audit` lint rule):
///
/// 1. a non-optimal MILP incumbent is replaced by the search frontier's
///    relaxation bound ([`Solution::bound_value`] — an incumbent's own
///    objective is *not* an outer bound), and anything non-finite (a NaN
///    or overflowed objective proves nothing) falls back to IBP;
/// 2. the value is padded outward by [`SOUND_SLACK`] plus a relative term
///    and snapped outward onto [`BOUND_GRID`];
/// 3. when `check` is on and the solve carries a dual certificate, the
///    *snapped* claim is re-derived from the duals in exact rational
///    arithmetic; an unverifiable claim falls back to IBP and increments
///    [`QueryStats::cert_failures`].
#[allow(clippy::too_many_arguments)]
fn certified_bound(
    model: &Model,
    sol: Option<Solution>,
    sense: Sense,
    grid: bool,
    check: bool,
    fallback_bound: f64,
    stats: &mut QueryStats,
) -> f64 {
    let Some(sol) = sol else {
        return fallback_bound;
    };
    let v = sol.bound_value();
    if !v.is_finite() {
        stats.fallbacks += 1;
        return fallback_bound;
    }
    let snapped = match sense {
        Sense::Maximize => snap_outward(v + SOUND_SLACK + v.abs() * 1e-9, true, grid),
        Sense::Minimize => snap_outward(v - SOUND_SLACK - v.abs() * 1e-9, false, grid),
    };
    if check && sol.is_certified() {
        stats.certs_checked += 1;
        if !certificate_validates(model, &sol, sense, snapped) {
            stats.cert_failures += 1;
            stats.fallbacks += 1;
            return fallback_bound;
        }
    }
    snapped
}

/// Exact-rational validation of `reported` as a `sense`-directional bound on
/// `model`'s optimum, using the dual certificate attached to `sol`. The
/// model must still hold the objective the solve installed (guaranteed by
/// [`BatchSolver::model`] within a sweep).
fn certificate_validates(model: &Model, sol: &Solution, sense: Sense, reported: f64) -> bool {
    let Some(cert) = sol.certificate() else {
        return false;
    };
    let rows: Vec<RowRef<'_>> = (0..model.num_constraints())
        .map(|r| RowRef {
            terms: model.row_terms(r),
            cmp: match model.row_cmp(r) {
                Cmp::Le => RowCmp::Le,
                Cmp::Ge => RowCmp::Ge,
                Cmp::Eq => RowCmp::Eq,
            },
            rhs: model.row_rhs(r),
        })
        .collect();
    let bounds: Vec<(f64, f64)> = (0..model.num_vars()).map(|j| model.bounds_at(j)).collect();
    verify_bound(
        model.num_vars(),
        &rows,
        &bounds,
        model.objective_terms(),
        model.objective_constant(),
        sense == Sense::Maximize,
        &cert.row_duals,
        reported,
    )
    .is_valid()
}

/// `LpRelaxY`: ranges of the target's pre-activation and its distance,
/// `(y, Δy)`. For BTNE encodings the distance is the expression `ŷ − y`; for
/// single-copy encodings it is `[0, 0]`.
///
/// The encoding is built once by the caller; all four directed solves (min y,
/// max y, min Δy, max Δy) run as one warm-started sweep over it.
pub fn lp_relax_y(
    enc: &mut EncodedSubNet,
    fallback_y: Interval,
    fallback_dy: Interval,
    solver: &SolveOptions,
    check: bool,
    stats: &mut QueryStats,
) -> (Interval, Interval) {
    let t = enc.target_vars();
    let y = t.y.expect("target has a pre-activation variable");
    let mut batch = BatchSolver::new(&mut enc.model);
    let yr = range_in_batch(
        &mut batch,
        (1.0 * y).compact(),
        fallback_y,
        solver,
        check,
        stats,
    );
    let dyr = if let Some(dy) = t.dy {
        range_in_batch(
            &mut batch,
            (1.0 * dy).compact(),
            fallback_dy,
            solver,
            check,
            stats,
        )
    } else if let Some(yh) = t.yh {
        range_in_batch(
            &mut batch,
            1.0 * yh - 1.0 * y,
            fallback_dy,
            solver,
            check,
            stats,
        )
    } else {
        Interval::point(0.0)
    };
    stats.absorb_batch(batch.stats());
    (yr, dyr)
}

/// `LpRelaxX`: ranges of the target's post-activation and its distance,
/// `(x, Δx)`, swept warm-started over one encoding like [`lp_relax_y`].
pub fn lp_relax_x(
    enc: &mut EncodedSubNet,
    fallback_x: Interval,
    fallback_dx: Interval,
    solver: &SolveOptions,
    check: bool,
    stats: &mut QueryStats,
) -> (Interval, Interval) {
    let t = enc.target_vars();
    let x = t.x.expect("target has a post-activation variable");
    let mut batch = BatchSolver::new(&mut enc.model);
    let xr = range_in_batch(
        &mut batch,
        (1.0 * x).compact(),
        fallback_x,
        solver,
        check,
        stats,
    );
    let dxr = if let Some(dx) = t.dx {
        range_in_batch(
            &mut batch,
            (1.0 * dx).compact(),
            fallback_dx,
            solver,
            check,
            stats,
        )
    } else if let Some(xh) = t.xh {
        range_in_batch(
            &mut batch,
            1.0 * xh - 1.0 * x,
            fallback_dx,
            solver,
            check,
            stats,
        )
    } else {
        Interval::point(0.0)
    };
    stats.absorb_batch(batch.stats());
    (xr, dxr)
}

/// Number of persistent basis slots a resident sub-problem keeps: one per
/// directed objective, in the fixed order
/// `[value min, value max, distance min, distance max]`.
pub(crate) const BASIS_SLOTS: usize = 4;

/// [`lp_relax_y`] against a resident encoding: identical objectives and the
/// same certified-bound pipeline, but each directed solve starts from the
/// basis the *previous query* stored for the same objective
/// ([`BatchSolver::solve_slot`]) — already optimal when only δ moved, so hot
/// queries pivot rarely — and writes its final basis back for the next one.
/// The sweep shares one live engine: the first restore rebuilds it from its
/// snapshot, later restores rebase it in place, paying a basis
/// refactorization instead of a skeleton compile per solve. Results are
/// bit-identical to [`lp_relax_y`]: warm starting never changes certified
/// ranges.
pub(crate) fn lp_relax_y_resident(
    enc: &mut EncodedSubNet,
    fallback_y: Interval,
    fallback_dy: Interval,
    solver: &SolveOptions,
    check: bool,
    bases: &mut [Option<Basis>; BASIS_SLOTS],
    stats: &mut QueryStats,
) -> (Interval, Interval) {
    let t = enc.target_vars();
    let y = t.y.expect("target has a pre-activation variable");
    let dy_expr = if let Some(dy) = t.dy {
        Some((1.0 * dy).compact())
    } else {
        t.yh.map(|yh| 1.0 * yh - 1.0 * y)
    };
    let (value_slots, distance_slots) = bases.split_at_mut(2);
    let mut batch = BatchSolver::new(&mut enc.model);
    let yr = range_in_slots(
        &mut batch,
        (1.0 * y).compact(),
        fallback_y,
        solver,
        check,
        value_slots,
        stats,
    );
    let dyr = match dy_expr {
        Some(e) => range_in_slots(
            &mut batch,
            e,
            fallback_dy,
            solver,
            check,
            distance_slots,
            stats,
        ),
        None => Interval::point(0.0),
    };
    stats.absorb_batch(batch.stats());
    (yr, dyr)
}

/// [`lp_relax_x`] against a resident encoding (see [`lp_relax_y_resident`]).
pub(crate) fn lp_relax_x_resident(
    enc: &mut EncodedSubNet,
    fallback_x: Interval,
    fallback_dx: Interval,
    solver: &SolveOptions,
    check: bool,
    bases: &mut [Option<Basis>; BASIS_SLOTS],
    stats: &mut QueryStats,
) -> (Interval, Interval) {
    let t = enc.target_vars();
    let x = t.x.expect("target has a post-activation variable");
    let dx_expr = if let Some(dx) = t.dx {
        Some((1.0 * dx).compact())
    } else {
        t.xh.map(|xh| 1.0 * xh - 1.0 * x)
    };
    let (value_slots, distance_slots) = bases.split_at_mut(2);
    let mut batch = BatchSolver::new(&mut enc.model);
    let xr = range_in_slots(
        &mut batch,
        (1.0 * x).compact(),
        fallback_x,
        solver,
        check,
        value_slots,
        stats,
    );
    let dxr = match dx_expr {
        Some(e) => range_in_slots(
            &mut batch,
            e,
            fallback_dx,
            solver,
            check,
            distance_slots,
            stats,
        ),
        None => Interval::point(0.0),
    };
    stats.absorb_batch(batch.stats());
    (xr, dxr)
}

/// [`range_in_batch`] with persistent basis slots (`slots[0]` = min,
/// `slots[1]` = max): identical grid decision and [`certified_bound`] gate,
/// but each directed solve goes through [`BatchSolver::solve_slot`].
#[allow(clippy::too_many_arguments)]
fn range_in_slots(
    batch: &mut BatchSolver<'_>,
    expr: LinExpr,
    fallback: Interval,
    solver: &SolveOptions,
    check: bool,
    slots: &mut [Option<Basis>],
    stats: &mut QueryStats,
) -> Interval {
    let (slot_lo, rest) = slots.split_first_mut().expect("two basis slots");
    let (slot_hi, _) = rest.split_first_mut().expect("two basis slots");
    let lo_sol = directed_solve_slot(batch, expr.clone(), Sense::Minimize, solver, slot_lo, stats);
    let hi_sol = directed_solve_slot(batch, expr, Sense::Maximize, solver, slot_hi, stats);
    let grid = interval_grid([
        lo_sol.as_ref().map(Solution::bound_value),
        hi_sol.as_ref().map(Solution::bound_value),
    ]);
    // As in `range_in_batch`: both solves installed the same objective
    // expression, so the model data matches both certificates.
    let lo = certified_bound(
        batch.model(),
        lo_sol,
        Sense::Minimize,
        grid,
        check,
        fallback.lo,
        stats,
    );
    let hi = certified_bound(
        batch.model(),
        hi_sol,
        Sense::Maximize,
        grid,
        check,
        fallback.hi,
        stats,
    );
    Interval::new(lo.min(hi), hi.max(lo))
        .intersect(fallback, 1e-9)
        .unwrap_or(fallback)
}

/// [`directed_solve`] through [`BatchSolver::solve_slot`] — same stop-check
/// and stat accounting, plus the persistent slot.
fn directed_solve_slot(
    batch: &mut BatchSolver<'_>,
    expr: LinExpr,
    sense: Sense,
    solver: &SolveOptions,
    slot: &mut Option<Basis>,
    stats: &mut QueryStats,
) -> Option<Solution> {
    if solver.stop.as_ref().is_some_and(StopWhen::should_stop) {
        stats.fallbacks += 1;
        return None;
    }
    stats.solves += 1;
    match batch.solve_slot(sense, expr, solver, slot) {
        Ok(sol) => {
            stats.pivots += sol.stats.pivots;
            stats.nodes += sol.stats.nodes;
            stats.refactorizations += sol.stats.refactorizations;
            stats.eta_len = stats.eta_len.max(sol.stats.eta_len);
            stats.nnz = stats.nnz.max(sol.stats.nnz);
            stats.refactor_time_ns += sol.stats.refactor_time_ns;
            stats.ftran_btran_time_ns += sol.stats.ftran_btran_time_ns;
            stats.lu_fill_nnz = stats.lu_fill_nnz.max(sol.stats.lu_fill_nnz);
            Some(sol)
        }
        Err(_) => {
            stats.fallbacks += 1;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_subnet, EncodeOptions, EncodingKind, Relaxation, TargetKind};
    use crate::example::fig1_affine;
    use crate::ibp::ibp_twin;
    use crate::subnet::SubNetwork;

    #[test]
    fn query_clips_to_fallback() {
        // Query with an artificially tight fallback: result must stay inside.
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let tight = Interval::new(-0.5, 0.5);
        let mut stats = QueryStats::default();
        let (yr, _) = lp_relax_y(
            &mut enc,
            tight,
            Interval::symmetric(0.15),
            &SolveOptions::default(),
            true,
            &mut stats,
        );
        assert!(tight.encloses(yr, 1e-9));
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.solves >= 2);
        // Checking was on and every solve was a pure LP: every bound was
        // validated in exact arithmetic and none failed.
        assert_eq!(stats.certs_checked, stats.solves);
        assert_eq!(stats.cert_failures, 0);
    }

    #[test]
    fn first_layer_ranges_are_exact() {
        // Layer 1 of Fig. 1 is affine in the inputs: LP ranges must be exact:
        // y⁽¹⁾₁ ∈ [-1.5, 1.5], Δy⁽¹⁾₁ ∈ [-0.15, 0.15].
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            kind: EncodingKind::Itne,
            relax: Relaxation::Lpr,
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let mut stats = QueryStats::default();
        let (yr, dyr) = lp_relax_y(
            &mut enc,
            bounds.y[0][0],
            bounds.dy[0][0],
            &SolveOptions::default(),
            false,
            &mut stats,
        );
        assert!(
            (yr.lo + 1.5).abs() < 1e-5 && (yr.hi - 1.5).abs() < 1e-5,
            "{yr}"
        );
        assert!(
            (dyr.lo + 0.15).abs() < 1e-5 && (dyr.hi - 0.15).abs() < 1e-5,
            "{dyr}"
        );
        // Four directed solves over one skeleton: the first is cold, the
        // remaining three reuse the basis (or legitimately re-run cold, but
        // never silently vanish).
        assert_eq!(stats.solves, 4);
        assert!(
            stats.warm_hits + stats.warm_misses >= 3,
            "sweep did not attempt warm starts: {stats:?}"
        );
    }

    #[test]
    fn warm_and_cold_sweeps_agree_bitwise() {
        // The same sub-problem solved with and without warm starts must give
        // identical intervals — batching is a pure optimization.
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        for (li, j) in [(0usize, 0usize), (0, 1), (1, 0)] {
            let sub = SubNetwork::decompose(&net, li, j, 2);
            let opts = EncodeOptions {
                delta: 0.1,
                ..Default::default()
            };
            let run = |warm: bool| {
                let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
                let solver = SolveOptions {
                    warm_start: warm,
                    ..Default::default()
                };
                let mut stats = QueryStats::default();
                lp_relax_y(
                    &mut enc,
                    bounds.y[li][j],
                    bounds.dy[li][j],
                    &solver,
                    true,
                    &mut stats,
                )
            };
            let (wy, wdy) = run(true);
            let (cy, cdy) = run(false);
            assert_eq!(wy, cy, "y range diverged at ({li}, {j})");
            assert_eq!(wdy, cdy, "Δy range diverged at ({li}, {j})");
        }
    }

    #[test]
    fn resident_sweep_matches_batch_and_warm_starts_across_queries() {
        // The resident solve path (slot-seeded batch sweep) must reproduce
        // the batch path bit-for-bit, and a repeat query over the same
        // encoding must warm-start from the stored per-objective bases.
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        for (li, j) in [(0usize, 0usize), (0, 1), (1, 0)] {
            let sub = SubNetwork::decompose(&net, li, j, 2);
            let opts = EncodeOptions {
                delta: 0.1,
                ..Default::default()
            };
            let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
            let mut stats = QueryStats::default();
            let batch_r = lp_relax_y(
                &mut enc,
                bounds.y[li][j],
                bounds.dy[li][j],
                &SolveOptions::default(),
                true,
                &mut stats,
            );
            let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
            let mut bases: [Option<Basis>; BASIS_SLOTS] = Default::default();
            let mut s1 = QueryStats::default();
            let r1 = lp_relax_y_resident(
                &mut enc,
                bounds.y[li][j],
                bounds.dy[li][j],
                &SolveOptions::default(),
                true,
                &mut bases,
                &mut s1,
            );
            assert_eq!(r1, batch_r, "resident diverged from batch at ({li}, {j})");
            assert_eq!(
                s1.cross_query_warm_hits, 0,
                "first query has no stored basis"
            );
            assert_eq!(s1.cert_failures, 0);
            assert!(
                bases.iter().any(Option::is_some),
                "sweep stored no basis at ({li}, {j})"
            );
            // Second query over the same resident encoding: each directed
            // solve restores its own slot instead of running cold phase-1.
            let mut s2 = QueryStats::default();
            let r2 = lp_relax_y_resident(
                &mut enc,
                bounds.y[li][j],
                bounds.dy[li][j],
                &SolveOptions::default(),
                true,
                &mut bases,
                &mut s2,
            );
            assert_eq!(r2, batch_r, "repeat resident query diverged at ({li}, {j})");
            assert!(
                s2.cross_query_warm_hits > 0,
                "repeat query never used the stored basis: {s2:?}"
            );
            assert!(
                s2.pivots <= s1.pivots,
                "warm repeat did more pivots than cold: {} > {}",
                s2.pivots,
                s1.pivots
            );
        }
    }

    #[test]
    fn snapping_is_outward_and_idempotent() {
        for v in [0.0, 0.25, -0.25, 1.0e-3, -7.77e2, 123.456] {
            let up = snap_outward(v, true, true);
            let down = snap_outward(v, false, true);
            assert!(up >= v, "upper snap moved inward: {v} -> {up}");
            assert!(down <= v, "lower snap moved inward: {v} -> {down}");
            assert!(up - v <= BOUND_GRID, "upper snap too coarse");
            assert!(v - down <= BOUND_GRID, "lower snap too coarse");
            // Grid points are fixed points, so snapping twice is snapping once.
            assert_eq!(snap_outward(up, true, true), up);
            assert_eq!(snap_outward(down, false, true), down);
        }
        // Values within a grid cell of each other snap together (the warm vs
        // cold pivot-path property) unless they straddle a grid line.
        let a = 0.1234567891;
        let b = a + 1e-13;
        assert_eq!(snap_outward(a, true, true), snap_outward(b, true, true));
        // With snapping vetoed for the interval, values pass through.
        assert_eq!(snap_outward(3.0e7, true, false), 3.0e7);
        assert_eq!(snap_outward(0.25, true, false), 0.25);
        assert_eq!(snap_outward(f64::INFINITY, true, true), f64::INFINITY);
    }

    #[test]
    fn grid_cutoff_is_consistent_per_interval() {
        // The decision is made on the raw optima, so an interval's two sides
        // always agree — even when outward padding pushes one padded value
        // across GRID_LIMIT while the other stays below (the old per-value
        // check snapped one side and not the other in that regime).
        let pad = |v: f64, up: bool| {
            if up {
                v + SOUND_SLACK + v.abs() * 1e-9
            } else {
                v - SOUND_SLACK - v.abs() * 1e-9
            }
        };
        let near = GRID_LIMIT - 1e-9; // padded value crosses the cutoff
        let far = GRID_LIMIT - 1.0; // padded value stays inside
        for (lo, hi) in [
            (far, near),
            (-near, far),
            (-near, near),
            (near, near),
            (-near, -far),
        ] {
            assert!(lo.abs() < GRID_LIMIT && hi.abs() < GRID_LIMIT);
            let grid = interval_grid([Some(lo), Some(hi)]);
            let slo = snap_outward(pad(lo, false), false, grid);
            let shi = snap_outward(pad(hi, true), true, grid);
            // Outward and ordered, regardless of which regime we are in.
            assert!(slo <= pad(lo, false) && shi >= pad(hi, true));
            assert!(slo <= shi);
            // Consistency: both sides snapped, or neither did.
            let lo_snapped = slo != pad(lo, false);
            let hi_snapped = shi != pad(hi, true);
            assert!(
                !(lo_snapped ^ hi_snapped)
                    || pad(lo, false).abs() >= GRID_LIMIT
                    || pad(hi, true).abs() >= GRID_LIMIT,
                "asymmetric snap at ({lo}, {hi})"
            );
        }
        // At or past the cutoff (raw), the whole interval passes through.
        assert!(!interval_grid([Some(GRID_LIMIT), Some(0.0)]));
        assert!(!interval_grid([Some(0.0), Some(-2.0 * GRID_LIMIT)]));
        // Absent or non-finite sides don't veto the other side's snap.
        assert!(interval_grid([None, Some(0.5)]));
        assert!(interval_grid([Some(f64::NAN), Some(0.5)]));
        assert!(interval_grid([None, None]));
    }

    proptest::proptest! {
        /// Property sweep over the GRID_LIMIT boundary (both signs, values
        /// straddling the cutoff): the per-interval decision never snaps one
        /// side without the other, and snapping stays outward.
        #[test]
        fn grid_boundary_property(
            mag_lo in 0.0f64..2.0e6,
            mag_hi in 0.0f64..2.0e6,
            neg_lo in proptest::prelude::any::<bool>(),
            neg_hi in proptest::prelude::any::<bool>(),
        ) {
            let raw_lo = if neg_lo { -mag_lo } else { mag_lo };
            let raw_hi = if neg_hi { -mag_hi } else { mag_hi };
            let (raw_lo, raw_hi) = (raw_lo.min(raw_hi), raw_lo.max(raw_hi));
            let grid = interval_grid([Some(raw_lo), Some(raw_hi)]);
            proptest::prop_assert_eq!(
                grid,
                raw_lo.abs() < GRID_LIMIT && raw_hi.abs() < GRID_LIMIT
            );
            let plo = raw_lo - SOUND_SLACK - raw_lo.abs() * 1e-9;
            let phi = raw_hi + SOUND_SLACK + raw_hi.abs() * 1e-9;
            let slo = snap_outward(plo, false, grid);
            let shi = snap_outward(phi, true, grid);
            proptest::prop_assert!(slo <= plo);
            proptest::prop_assert!(shi >= phi);
            proptest::prop_assert!(slo <= shi);
            // Within a cell of the padded value, or untouched.
            proptest::prop_assert!(plo - slo <= BOUND_GRID);
            proptest::prop_assert!(shi - phi <= BOUND_GRID);
        }
    }

    #[test]
    fn solver_failures_never_invert_the_interval() {
        use itne_milp::{Cmp, Model};
        let fb = Interval::new(-1.0, 2.0);

        // Infeasible skeleton: both directed solves error; the fallback
        // comes back untouched and ordered.
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        m.add_constraint(1.0 * x, Cmp::Ge, 3.0);
        m.add_constraint(1.0 * x, Cmp::Le, 2.0);
        let mut batch = BatchSolver::new(&mut m);
        let mut stats = QueryStats::default();
        let r = range_in_batch(
            &mut batch,
            (1.0 * x).compact(),
            fb,
            &SolveOptions::default(),
            true,
            &mut stats,
        );
        assert_eq!(r, fb);
        assert!(r.lo <= r.hi);
        assert_eq!(stats.fallbacks, 2);
        assert_eq!(stats.cert_failures, 0);

        // Objective unbounded in both directions: same contract.
        let mut m = Model::new();
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY);
        let s = m.add_var(0.0, 1.0);
        m.add_constraint(1.0 * s, Cmp::Le, 1.0);
        let mut batch = BatchSolver::new(&mut m);
        let mut stats = QueryStats::default();
        let r = range_in_batch(
            &mut batch,
            (1.0 * x).compact(),
            fb,
            &SolveOptions::default(),
            true,
            &mut stats,
        );
        assert_eq!(r, fb);
        assert!(r.lo <= r.hi);
        assert!(stats.fallbacks >= 1);
    }

    #[test]
    fn nan_objective_falls_back_instead_of_inverting() {
        use itne_milp::{Cmp, Model};
        // Two variables fixed at ±1e308 with ±1e308 objective coefficients:
        // the float objective evaluates to inf − inf = NaN while the solve
        // itself terminates Optimal. The non-finite guard must discard it.
        let mut m = Model::new();
        let x = m.add_var(1.0e308, 1.0e308);
        let y = m.add_var(1.0e308, 1.0e308);
        m.add_constraint(1.0 * x - 1.0 * y, Cmp::Le, 1.0e308);
        let fb = Interval::new(-5.0, 5.0);
        let mut batch = BatchSolver::new(&mut m);
        let mut stats = QueryStats::default();
        let r = range_in_batch(
            &mut batch,
            (1.0e308 * x - 1.0e308 * y).compact(),
            fb,
            &SolveOptions::default(),
            true,
            &mut stats,
        );
        assert_eq!(r, fb);
        assert!(r.lo <= r.hi);
        assert!(
            stats.fallbacks >= 1,
            "NaN objective must fall back: {stats:?}"
        );
    }

    #[test]
    fn expired_deadline_falls_back() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let solver = SolveOptions {
            stop: Some(crate::deadline::stop_at(crate::deadline::already_expired())),
            ..Default::default()
        };
        let mut stats = QueryStats::default();
        let fb = Interval::new(-9.0, 9.0);
        let (yr, _) = lp_relax_y(&mut enc, fb, fb, &solver, true, &mut stats);
        assert_eq!(yr, fb);
        assert!(stats.fallbacks >= 2);
    }
}
