//! Range queries over encoded sub-networks: the paper's `LpRelaxY` and
//! `LpRelaxX` sub-problems.
//!
//! Every query returns a *sound* interval: LP/MILP relaxation optima are
//! outer bounds by construction; solver failures fall back to the caller's
//! interval (typically IBP), and successful results are intersected with
//! that fallback (both are sound, so the intersection is sound and tighter).

use crate::encode::EncodedSubNet;
use crate::interval::Interval;
use itne_milp::{LinExpr, Model, Sense, SolveOptions, Status};

/// Slack added to LP optima before use as bounds, absorbing solver
/// tolerances.
const SOUND_SLACK: f64 = 1e-7;

/// Work counters accumulated across queries.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// LP/MILP solves issued.
    pub solves: u64,
    /// Total simplex pivots.
    pub pivots: u64,
    /// Total branch-and-bound nodes.
    pub nodes: u64,
    /// Queries that fell back to the caller's interval (solver failure or
    /// early-out on deadline).
    pub fallbacks: u64,
}

impl QueryStats {
    /// Accumulates another counter set.
    pub fn absorb(&mut self, other: QueryStats) {
        self.solves += other.solves;
        self.pivots += other.pivots;
        self.nodes += other.nodes;
        self.fallbacks += other.fallbacks;
    }
}

/// Minimizes and maximizes `expr` over the encoded model, returning a sound
/// interval clipped to `fallback`.
pub fn range_of_expr(
    model: &mut Model,
    expr: LinExpr,
    fallback: Interval,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> Interval {
    let lo = directed_bound(
        model,
        expr.clone(),
        Sense::Minimize,
        fallback.lo,
        solver,
        stats,
    );
    let hi = directed_bound(model, expr, Sense::Maximize, fallback.hi, solver, stats);
    // Both [lo, hi] and fallback are sound outer ranges; intersect.
    Interval::new(lo.min(hi), hi.max(lo))
        .intersect(fallback, 1e-9)
        .unwrap_or(fallback)
}

/// One directed solve. Returns `fallback_bound` when the solver cannot
/// produce a *sound* bound (errors, or a timed-out MILP whose frontier bound
/// is unavailable).
fn directed_bound(
    model: &mut Model,
    expr: LinExpr,
    sense: Sense,
    fallback_bound: f64,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> f64 {
    if let Some(deadline) = solver.deadline {
        if std::time::Instant::now() >= deadline {
            stats.fallbacks += 1;
            return fallback_bound;
        }
    }
    model.set_objective(sense, expr);
    stats.solves += 1;
    match model.solve_with(solver) {
        Ok(sol) => {
            stats.pivots += sol.stats.pivots;
            stats.nodes += sol.stats.nodes;
            // A non-optimal MILP incumbent is *not* an outer bound; use the
            // search frontier's relaxation bound instead, which is.
            let v = match sol.status {
                Status::Optimal => sol.objective,
                Status::TimedOut | Status::NodeLimit => sol.stats.best_bound,
            };
            match sense {
                Sense::Maximize => v + SOUND_SLACK + v.abs() * 1e-9,
                Sense::Minimize => v - SOUND_SLACK - v.abs() * 1e-9,
            }
        }
        Err(_) => {
            stats.fallbacks += 1;
            fallback_bound
        }
    }
}

/// `LpRelaxY`: ranges of the target's pre-activation and its distance,
/// `(y, Δy)`. For BTNE encodings the distance is the expression `ŷ − y`; for
/// single-copy encodings it is `[0, 0]`.
pub fn lp_relax_y(
    enc: &mut EncodedSubNet,
    fallback_y: Interval,
    fallback_dy: Interval,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> (Interval, Interval) {
    let t = enc.target_vars();
    let y = t.y.expect("target has a pre-activation variable");
    let yr = range_of_expr(
        &mut enc.model,
        (1.0 * y).compact(),
        fallback_y,
        solver,
        stats,
    );
    let dyr = if let Some(dy) = t.dy {
        range_of_expr(
            &mut enc.model,
            (1.0 * dy).compact(),
            fallback_dy,
            solver,
            stats,
        )
    } else if let Some(yh) = t.yh {
        range_of_expr(
            &mut enc.model,
            1.0 * yh - 1.0 * y,
            fallback_dy,
            solver,
            stats,
        )
    } else {
        Interval::point(0.0)
    };
    (yr, dyr)
}

/// `LpRelaxX`: ranges of the target's post-activation and its distance,
/// `(x, Δx)`.
pub fn lp_relax_x(
    enc: &mut EncodedSubNet,
    fallback_x: Interval,
    fallback_dx: Interval,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> (Interval, Interval) {
    let t = enc.target_vars();
    let x = t.x.expect("target has a post-activation variable");
    let xr = range_of_expr(
        &mut enc.model,
        (1.0 * x).compact(),
        fallback_x,
        solver,
        stats,
    );
    let dxr = if let Some(dx) = t.dx {
        range_of_expr(
            &mut enc.model,
            (1.0 * dx).compact(),
            fallback_dx,
            solver,
            stats,
        )
    } else if let Some(xh) = t.xh {
        range_of_expr(
            &mut enc.model,
            1.0 * xh - 1.0 * x,
            fallback_dx,
            solver,
            stats,
        )
    } else {
        Interval::point(0.0)
    };
    (xr, dxr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_subnet, EncodeOptions, EncodingKind, Relaxation, TargetKind};
    use crate::example::fig1_affine;
    use crate::ibp::ibp_twin;
    use crate::subnet::SubNetwork;

    #[test]
    fn query_clips_to_fallback() {
        // Query with an artificially tight fallback: result must stay inside.
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let tight = Interval::new(-0.5, 0.5);
        let mut stats = QueryStats::default();
        let (yr, _) = lp_relax_y(
            &mut enc,
            tight,
            Interval::symmetric(0.15),
            &SolveOptions::default(),
            &mut stats,
        );
        assert!(tight.encloses(yr, 1e-9));
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.solves >= 2);
    }

    #[test]
    fn first_layer_ranges_are_exact() {
        // Layer 1 of Fig. 1 is affine in the inputs: LP ranges must be exact:
        // y⁽¹⁾₁ ∈ [-1.5, 1.5], Δy⁽¹⁾₁ ∈ [-0.15, 0.15].
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            kind: EncodingKind::Itne,
            relax: Relaxation::Lpr,
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let mut stats = QueryStats::default();
        let (yr, dyr) = lp_relax_y(
            &mut enc,
            bounds.y[0][0],
            bounds.dy[0][0],
            &SolveOptions::default(),
            &mut stats,
        );
        assert!(
            (yr.lo + 1.5).abs() < 1e-5 && (yr.hi - 1.5).abs() < 1e-5,
            "{yr}"
        );
        assert!(
            (dyr.lo + 0.15).abs() < 1e-5 && (dyr.hi - 0.15).abs() < 1e-5,
            "{dyr}"
        );
    }

    #[test]
    fn expired_deadline_falls_back() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let solver = SolveOptions {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
            ..Default::default()
        };
        let mut stats = QueryStats::default();
        let fb = Interval::new(-9.0, 9.0);
        let (yr, _) = lp_relax_y(&mut enc, fb, fb, &solver, &mut stats);
        assert_eq!(yr, fb);
        assert!(stats.fallbacks >= 2);
    }
}
