//! Range queries over encoded sub-networks: the paper's `LpRelaxY` and
//! `LpRelaxX` sub-problems.
//!
//! Every query returns a *sound* interval: LP/MILP relaxation optima are
//! outer bounds by construction; solver failures fall back to the caller's
//! interval (typically IBP), and successful results are intersected with
//! that fallback (both are sound, so the intersection is sound and tighter).
//!
//! Each sub-problem encodes its skeleton **once** and sweeps all of its
//! objectives (min/max of the target's value and distance expressions)
//! through one [`BatchSolver`]: the first solve runs cold, every later one
//! warm-starts from the previous optimal basis and skips simplex phase 1.
//! Warm starting is a pure optimization — a basis that cannot be restored
//! falls back to a cold solve inside the batch layer — so certified ranges
//! are identical to the per-objective cold path (asserted bit-for-bit by the
//! golden regression suite; disable via [`SolveOptions::warm_start`]).

use crate::encode::EncodedSubNet;
use crate::interval::Interval;
use itne_milp::{BatchSolver, BatchStats, LinExpr, Sense, SolveOptions, Status, StopWhen};

/// Slack added to LP optima before use as bounds, absorbing solver
/// tolerances.
const SOUND_SLACK: f64 = 1e-7;

/// Grid the padded optima are snapped *outward* onto (2⁻³⁰ ≈ 9.3e-10, two
/// orders below [`SOUND_SLACK`]). Different pivot paths to the same optimum
/// — cold vs warm-started, or a future alternative backend — land within a
/// few ulps of each other; snapping outward collapses them onto the same
/// representable bound *unless the two values straddle a grid line*, so
/// path-independence is overwhelmingly likely per solve rather than
/// absolute. For a fixed network it is deterministic either way, which is
/// what the golden suite locks; a straddle would surface there as a stable,
/// investigable diff, not flakiness. Snapping away from the feasible region
/// only ever *loosens* the bound, so soundness is unconditional.
const BOUND_GRID: f64 = 1.0 / (1024.0 * 1024.0 * 1024.0);

/// Magnitude past which grid snapping degenerates (the quotient leaves the
/// exactly-representable integer range); such bounds are kept un-snapped —
/// their relative slack term (`|v|·1e-9`) already dwarfs any path noise.
const GRID_LIMIT: f64 = 1e6;

/// Rounds a padded bound outward (`up` for upper bounds, down for lower) to
/// the [`BOUND_GRID`] lattice.
fn snap_outward(v: f64, up: bool) -> f64 {
    if !v.is_finite() || v.abs() >= GRID_LIMIT {
        return v;
    }
    let q = v / BOUND_GRID;
    let q = if up { q.ceil() } else { q.floor() };
    q * BOUND_GRID
}

/// Work counters accumulated across queries.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// LP/MILP solves issued.
    pub solves: u64,
    /// Total simplex pivots.
    pub pivots: u64,
    /// Total branch-and-bound nodes.
    pub nodes: u64,
    /// Queries that fell back to the caller's interval (solver failure or
    /// early-out on a fired stop signal).
    pub fallbacks: u64,
    /// Solves completed from a warm-started simplex basis (phase 1 skipped).
    pub warm_hits: u64,
    /// Warm-start attempts that were rejected and re-ran cold.
    pub warm_misses: u64,
    /// Estimated simplex pivots avoided by warm starts (see
    /// [`BatchStats::pivots_saved`]).
    pub pivots_saved: u64,
    /// Total basis refactorizations across all solves (sparse-engine eta
    /// rebuilds plus warm-restore factorizations).
    pub refactorizations: u64,
    /// Peak product-form eta-file length observed in any single solve.
    pub eta_len: u64,
    /// Structural non-zeros of the largest constraint matrix solved — the
    /// sparsity the revised simplex exploits on that worst-case sub-problem.
    pub nnz: u64,
}

impl QueryStats {
    /// Accumulates another counter set.
    pub fn absorb(&mut self, other: QueryStats) {
        self.solves += other.solves;
        self.pivots += other.pivots;
        self.nodes += other.nodes;
        self.fallbacks += other.fallbacks;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
        self.pivots_saved += other.pivots_saved;
        self.refactorizations += other.refactorizations;
        self.eta_len = self.eta_len.max(other.eta_len);
        self.nnz = self.nnz.max(other.nnz);
    }

    /// Folds in the warm-start counters of one finished batch sweep. Solve
    /// and pivot counts are *not* taken from the batch — they are already
    /// accounted per query — only the counters unique to batching.
    fn absorb_batch(&mut self, batch: BatchStats) {
        self.warm_hits += batch.warm_hits;
        self.warm_misses += batch.warm_misses;
        self.pivots_saved += batch.pivots_saved;
    }
}

/// Minimizes and maximizes `expr` over the encoded model, returning a sound
/// interval clipped to `fallback`.
pub fn range_of_expr(
    enc: &mut EncodedSubNet,
    expr: LinExpr,
    fallback: Interval,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> Interval {
    let mut batch = BatchSolver::new(&mut enc.model);
    let r = range_in_batch(&mut batch, expr, fallback, solver, stats);
    stats.absorb_batch(batch.stats());
    r
}

/// [`range_of_expr`] inside an already-open batch sweep, so consecutive
/// ranges over the same skeleton share one warm-start chain.
fn range_in_batch(
    batch: &mut BatchSolver<'_>,
    expr: LinExpr,
    fallback: Interval,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> Interval {
    let lo = directed_bound(
        batch,
        expr.clone(),
        Sense::Minimize,
        fallback.lo,
        solver,
        stats,
    );
    let hi = directed_bound(batch, expr, Sense::Maximize, fallback.hi, solver, stats);
    // Both [lo, hi] and fallback are sound outer ranges; intersect.
    Interval::new(lo.min(hi), hi.max(lo))
        .intersect(fallback, 1e-9)
        .unwrap_or(fallback)
}

/// One directed solve. Returns `fallback_bound` when the solver cannot
/// produce a *sound* bound (errors, or a timed-out MILP whose frontier bound
/// is unavailable).
fn directed_bound(
    batch: &mut BatchSolver<'_>,
    expr: LinExpr,
    sense: Sense,
    fallback_bound: f64,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> f64 {
    if solver.stop.as_ref().is_some_and(StopWhen::should_stop) {
        stats.fallbacks += 1;
        return fallback_bound;
    }
    stats.solves += 1;
    match batch.solve(sense, expr, solver) {
        Ok(sol) => {
            stats.pivots += sol.stats.pivots;
            stats.nodes += sol.stats.nodes;
            stats.refactorizations += sol.stats.refactorizations;
            stats.eta_len = stats.eta_len.max(sol.stats.eta_len);
            stats.nnz = stats.nnz.max(sol.stats.nnz);
            // A non-optimal MILP incumbent is *not* an outer bound; use the
            // search frontier's relaxation bound instead, which is.
            let v = match sol.status {
                Status::Optimal => sol.objective,
                Status::TimedOut | Status::NodeLimit => sol.stats.best_bound,
            };
            match sense {
                Sense::Maximize => snap_outward(v + SOUND_SLACK + v.abs() * 1e-9, true),
                Sense::Minimize => snap_outward(v - SOUND_SLACK - v.abs() * 1e-9, false),
            }
        }
        Err(_) => {
            stats.fallbacks += 1;
            fallback_bound
        }
    }
}

/// `LpRelaxY`: ranges of the target's pre-activation and its distance,
/// `(y, Δy)`. For BTNE encodings the distance is the expression `ŷ − y`; for
/// single-copy encodings it is `[0, 0]`.
///
/// The encoding is built once by the caller; all four directed solves (min y,
/// max y, min Δy, max Δy) run as one warm-started sweep over it.
pub fn lp_relax_y(
    enc: &mut EncodedSubNet,
    fallback_y: Interval,
    fallback_dy: Interval,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> (Interval, Interval) {
    let t = enc.target_vars();
    let y = t.y.expect("target has a pre-activation variable");
    let mut batch = BatchSolver::new(&mut enc.model);
    let yr = range_in_batch(&mut batch, (1.0 * y).compact(), fallback_y, solver, stats);
    let dyr = if let Some(dy) = t.dy {
        range_in_batch(&mut batch, (1.0 * dy).compact(), fallback_dy, solver, stats)
    } else if let Some(yh) = t.yh {
        range_in_batch(&mut batch, 1.0 * yh - 1.0 * y, fallback_dy, solver, stats)
    } else {
        Interval::point(0.0)
    };
    stats.absorb_batch(batch.stats());
    (yr, dyr)
}

/// `LpRelaxX`: ranges of the target's post-activation and its distance,
/// `(x, Δx)`, swept warm-started over one encoding like [`lp_relax_y`].
pub fn lp_relax_x(
    enc: &mut EncodedSubNet,
    fallback_x: Interval,
    fallback_dx: Interval,
    solver: &SolveOptions,
    stats: &mut QueryStats,
) -> (Interval, Interval) {
    let t = enc.target_vars();
    let x = t.x.expect("target has a post-activation variable");
    let mut batch = BatchSolver::new(&mut enc.model);
    let xr = range_in_batch(&mut batch, (1.0 * x).compact(), fallback_x, solver, stats);
    let dxr = if let Some(dx) = t.dx {
        range_in_batch(&mut batch, (1.0 * dx).compact(), fallback_dx, solver, stats)
    } else if let Some(xh) = t.xh {
        range_in_batch(&mut batch, 1.0 * xh - 1.0 * x, fallback_dx, solver, stats)
    } else {
        Interval::point(0.0)
    };
    stats.absorb_batch(batch.stats());
    (xr, dxr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{encode_subnet, EncodeOptions, EncodingKind, Relaxation, TargetKind};
    use crate::example::fig1_affine;
    use crate::ibp::ibp_twin;
    use crate::subnet::SubNetwork;

    #[test]
    fn query_clips_to_fallback() {
        // Query with an artificially tight fallback: result must stay inside.
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let tight = Interval::new(-0.5, 0.5);
        let mut stats = QueryStats::default();
        let (yr, _) = lp_relax_y(
            &mut enc,
            tight,
            Interval::symmetric(0.15),
            &SolveOptions::default(),
            &mut stats,
        );
        assert!(tight.encloses(yr, 1e-9));
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.solves >= 2);
    }

    #[test]
    fn first_layer_ranges_are_exact() {
        // Layer 1 of Fig. 1 is affine in the inputs: LP ranges must be exact:
        // y⁽¹⁾₁ ∈ [-1.5, 1.5], Δy⁽¹⁾₁ ∈ [-0.15, 0.15].
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            kind: EncodingKind::Itne,
            relax: Relaxation::Lpr,
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let mut stats = QueryStats::default();
        let (yr, dyr) = lp_relax_y(
            &mut enc,
            bounds.y[0][0],
            bounds.dy[0][0],
            &SolveOptions::default(),
            &mut stats,
        );
        assert!(
            (yr.lo + 1.5).abs() < 1e-5 && (yr.hi - 1.5).abs() < 1e-5,
            "{yr}"
        );
        assert!(
            (dyr.lo + 0.15).abs() < 1e-5 && (dyr.hi - 0.15).abs() < 1e-5,
            "{dyr}"
        );
        // Four directed solves over one skeleton: the first is cold, the
        // remaining three reuse the basis (or legitimately re-run cold, but
        // never silently vanish).
        assert_eq!(stats.solves, 4);
        assert!(
            stats.warm_hits + stats.warm_misses >= 3,
            "sweep did not attempt warm starts: {stats:?}"
        );
    }

    #[test]
    fn warm_and_cold_sweeps_agree_bitwise() {
        // The same sub-problem solved with and without warm starts must give
        // identical intervals — batching is a pure optimization.
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        for (li, j) in [(0usize, 0usize), (0, 1), (1, 0)] {
            let sub = SubNetwork::decompose(&net, li, j, 2);
            let opts = EncodeOptions {
                delta: 0.1,
                ..Default::default()
            };
            let run = |warm: bool| {
                let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
                let solver = SolveOptions {
                    warm_start: warm,
                    ..Default::default()
                };
                let mut stats = QueryStats::default();
                lp_relax_y(
                    &mut enc,
                    bounds.y[li][j],
                    bounds.dy[li][j],
                    &solver,
                    &mut stats,
                )
            };
            let (wy, wdy) = run(true);
            let (cy, cdy) = run(false);
            assert_eq!(wy, cy, "y range diverged at ({li}, {j})");
            assert_eq!(wdy, cdy, "Δy range diverged at ({li}, {j})");
        }
    }

    #[test]
    fn snapping_is_outward_and_idempotent() {
        for v in [0.0, 0.25, -0.25, 1.0e-3, -7.77e2, 123.456] {
            let up = snap_outward(v, true);
            let down = snap_outward(v, false);
            assert!(up >= v, "upper snap moved inward: {v} -> {up}");
            assert!(down <= v, "lower snap moved inward: {v} -> {down}");
            assert!(up - v <= BOUND_GRID, "upper snap too coarse");
            assert!(v - down <= BOUND_GRID, "lower snap too coarse");
            // Grid points are fixed points, so snapping twice is snapping once.
            assert_eq!(snap_outward(up, true), up);
            assert_eq!(snap_outward(down, false), down);
        }
        // Values within a grid cell of each other snap together (the warm vs
        // cold pivot-path property) unless they straddle a grid line.
        let a = 0.1234567891;
        let b = a + 1e-13;
        assert_eq!(snap_outward(a, true), snap_outward(b, true));
        // Huge magnitudes pass through untouched.
        assert_eq!(snap_outward(3.0e7, true), 3.0e7);
        assert_eq!(snap_outward(f64::INFINITY, true), f64::INFINITY);
    }

    #[test]
    fn expired_deadline_falls_back() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let bounds = ibp_twin(&net, &domain, 0.1);
        let sub = SubNetwork::decompose(&net, 0, 0, 1);
        let opts = EncodeOptions {
            delta: 0.1,
            ..Default::default()
        };
        let mut enc = encode_subnet(&sub, &bounds, TargetKind::PreActivation, &opts);
        let solver = SolveOptions {
            stop: Some(crate::deadline::stop_at(crate::deadline::already_expired())),
            ..Default::default()
        };
        let mut stats = QueryStats::default();
        let fb = Interval::new(-9.0, 9.0);
        let (yr, _) = lp_relax_y(&mut enc, fb, fb, &solver, &mut stats);
        assert_eq!(yr, fb);
        assert!(stats.fallbacks >= 2);
    }
}
