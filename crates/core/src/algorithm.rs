//! The efficient global robustness over-approximation algorithm
//! (paper Algorithm 1), generalized over encoding kind, window, relaxation
//! and refinement so that every baseline and ablation shares one engine.
//!
//! Layer by layer, neuron by neuron (optionally in parallel — the paper's
//! stated future work), the engine decomposes the network into window-`W`
//! sub-networks, encodes them, and derives the ranges `(y, Δy)` via
//! `LpRelaxY` then `(x, Δx)` via `LpRelaxX`. The final layer's `Δx` ranges
//! yield `ε̄ = max(|Δx⁽ⁿ⁾.lo|, |Δx⁽ⁿ⁾.hi|)` per output.
//!
//! Parallelism runs on the deterministic work-stealing executor in
//! [`crate::schedule`]: each neuron contributes an `LpRelaxY` sweep task
//! that may spawn its `LpRelaxX` follow-up, idle workers steal units from
//! busy ones (so one expensive conv-window neuron no longer idles the rest
//! of the pool at the layer barrier), and results merge back by neuron
//! index — bit-identical bounds at every thread count and steal schedule.

use crate::bounds::TwinBounds;
use crate::encode::{
    encode_subnet, encode_subnet_with, refined_for, EncodeOptions, EncodingKind, Relaxation,
    TargetKind, TargetOverride,
};
use crate::error::CertifyError;
use crate::ibp::{ibp_twin, ibp_twin_from_values, ValuePreBounds};
use crate::interval::{distance_relaxation_bounds, relu_distance_range, Interval};
use crate::query::{lp_relax_x, lp_relax_x_resident, lp_relax_y, lp_relax_y_resident, QueryStats};
use crate::refine::select_refined;
use crate::resident::{NeuronCache, ResidentState};
use crate::schedule::{run_steal, Step};
use crate::subnet::SubNetwork;
use itne_milp::{Engine, SolveOptions};
use itne_nn::{AffineNetwork, Network};
use std::time::{Duration, Instant};

/// Configuration of the certification engine.
#[derive(Clone, Debug)]
pub struct CertifyOptions {
    /// Window size `W` (sub-network depth). The effective window for layer
    /// `i` is `min(W, i+1)`.
    pub window: usize,
    /// Twin encoding for the certification (the contribution is
    /// [`EncodingKind::Itne`]; [`EncodingKind::Btne`] reproduces the
    /// baseline).
    pub encoding: EncodingKind,
    /// Exact (MILP) or relaxed (LP) treatment of unstable ReLUs per
    /// sub-problem. `Exact` + small window = the paper's "ND"; `Lpr` +
    /// window = Algorithm 1.
    pub relaxation: Relaxation,
    /// Number of selectively-refined neurons per sub-problem (under `Lpr`).
    pub refine: usize,
    /// Extension (default off = paper-faithful): y-aware distance bounds.
    pub y_aware_distance: bool,
    /// Skip `LpRelaxX` solves whose LP optimum has a provably equal closed
    /// form (pure engineering; results are identical — see the
    /// `closed_form_equals_lp` test).
    pub closed_form_x: bool,
    /// Worker threads for the per-neuron loop (1 = serial). Work runs on
    /// the deterministic work-stealing executor ([`crate::schedule`]): each
    /// neuron's `LpRelaxY` sweep and `LpRelaxX` follow-up are separate task
    /// units, idle workers steal queued units from busy ones, and results
    /// merge back by neuron index — so bounds are bit-identical for every
    /// thread count and steal schedule. Neurons of a layer only read the
    /// previous layers' bounds, and each worker runs its own warm-start
    /// chains, so batching composes with parallelism with no shared solver
    /// state.
    ///
    /// [`CertifyOptions::default`] reads the `ITNE_TEST_THREADS` environment
    /// variable (once, at first use) so CI can pin the whole test suite to a
    /// specific count; unset or invalid falls back to the machine's
    /// available parallelism, capped at 8.
    pub threads: usize,
    /// Validate every certified LP bound in exact rational arithmetic
    /// against the solver's dual certificate before trusting it; a failed
    /// check falls back to the sound IBP range (counted in
    /// [`crate::query::QueryStats::cert_failures`]).
    ///
    /// [`CertifyOptions::default`] reads the `ITNE_CHECK_CERTS` environment
    /// variable (once, at first use); unset, `0`, `false`, or `off` means
    /// disabled.
    pub check_certificates: bool,
    /// Per-solve limits and tolerances.
    pub solver: SolveOptions,
    /// Overall wall-clock deadline; on expiry remaining neurons keep their
    /// sound IBP ranges (the result stays sound, only looser).
    pub deadline: Option<Instant>,
}

/// Default worker-thread count: `ITNE_TEST_THREADS` when set to a sane
/// value, else the machine's available parallelism capped at 8 (the
/// per-neuron loop saturates around there on the paper's workloads; beyond
/// it the extra workers mostly contend for memory bandwidth). Read once —
/// the certifier is deterministic across thread counts, so this only
/// changes *how* a run executes, never its results.
fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("ITNE_TEST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&t| (1..=64).contains(&t))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get().min(8))
                    .unwrap_or(1)
            })
    })
}

/// Default LP engine: `ITNE_TEST_ENGINE` (`lu`, `eta`, or `dense`) when set,
/// else the solver's own default ([`Engine::Lu`]). Read once — the golden
/// and metamorphic suites certify identical ε̄ bits whichever engine runs,
/// so CI forces each legacy engine through the whole pipeline this way.
fn default_engine() -> Engine {
    static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
    *ENGINE.get_or_init(|| match std::env::var("ITNE_TEST_ENGINE").as_deref() {
        Ok("lu") => Engine::Lu,
        Ok("eta") => Engine::Eta,
        Ok("dense") => Engine::Dense,
        _ => Engine::default(),
    })
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            window: 2,
            encoding: EncodingKind::Itne,
            relaxation: Relaxation::Lpr,
            refine: 0,
            y_aware_distance: false,
            closed_form_x: true,
            threads: default_threads(),
            check_certificates: crate::query::default_check_certificates(),
            solver: SolveOptions {
                // Per-query budget: a rare degenerate-stalling LP must not
                // dominate the run — it falls back to the sound IBP range
                // (counted in `CertifyStats::query::fallbacks`).
                max_pivots: 30_000,
                engine: default_engine(),
                ..SolveOptions::default()
            },
            deadline: None,
        }
    }
}

impl CertifyOptions {
    /// The paper's headline configuration: ITNE + LPR with the given window
    /// and per-sub-problem refinement count.
    pub fn paper(window: usize, refine: usize) -> Self {
        CertifyOptions {
            window,
            refine,
            ..Default::default()
        }
    }

    fn encode_options(&self, delta: f64) -> EncodeOptions {
        EncodeOptions {
            kind: self.encoding,
            relax: self.relaxation,
            refine: self.refine,
            y_aware_distance: self.y_aware_distance,
            delta,
        }
    }

    fn solver_options(&self) -> SolveOptions {
        let mut s = self.solver.clone();
        if let Some(d) = self.deadline {
            let at_deadline = crate::deadline::stop_at(d);
            s.stop = Some(match s.stop.take() {
                Some(prior) => prior.or(at_deadline),
                None => at_deadline,
            });
        }
        s
    }
}

/// Work counters and timing for one certification run.
#[derive(Copy, Clone, Debug, Default)]
pub struct CertifyStats {
    /// Accumulated query counters: LP solves, pivots, nodes, IBP fallbacks,
    /// the warm-start sweep telemetry (`warm_hits`, `warm_misses`,
    /// `pivots_saved`) of the batched LP subsystem, and the sparse-engine
    /// factorization telemetry (`refactorizations`, peak `eta_len`, and the
    /// worst-case matrix `nnz`).
    pub query: QueryStats,
    /// Sub-problems processed (one per neuron per pass).
    pub subproblems: u64,
    /// `LpRelaxX` solves replaced by their provably-equal closed form.
    pub closed_form_hits: u64,
    /// Wall-clock time.
    pub wall: Duration,
}

/// The result of a global robustness certification.
#[derive(Clone, Debug)]
pub struct GlobalReport {
    /// `ε̄` per network output: the certified output variation bound.
    pub epsilons: Vec<f64>,
    /// All derived ranges (inputs to further analysis, e.g. the case study).
    pub bounds: TwinBounds,
    /// Work counters.
    pub stats: CertifyStats,
}

impl GlobalReport {
    /// The certified bound for output `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn epsilon(&self, j: usize) -> f64 {
        self.epsilons[j]
    }

    /// The largest certified bound across outputs.
    pub fn max_epsilon(&self) -> f64 {
        self.epsilons.iter().fold(0.0f64, |m, &e| m.max(e))
    }
}

/// Certifies `(δ, ε)`-global robustness of `net` over the box `domain`,
/// returning the minimal certified `ε̄` per output (Problem 1).
///
/// # Errors
///
/// [`CertifyError::InvalidInput`] for dimension mismatches or a negative
/// `delta`; [`CertifyError::Lower`] if the network cannot be lowered.
pub fn certify_global(
    net: &Network,
    domain: &[(f64, f64)],
    delta: f64,
    opts: &CertifyOptions,
) -> Result<GlobalReport, CertifyError> {
    let aff = AffineNetwork::from_network(net).map_err(CertifyError::Lower)?;
    certify_global_affine(&aff, domain, delta, opts)
}

/// [`certify_global`] on an already-lowered network.
///
/// # Errors
///
/// See [`certify_global`].
pub fn certify_global_affine(
    aff: &AffineNetwork,
    domain: &[(f64, f64)],
    delta: f64,
    opts: &CertifyOptions,
) -> Result<GlobalReport, CertifyError> {
    validate(aff, domain, delta, opts)?;
    let domain: Vec<Interval> = domain
        .iter()
        .map(|&(lo, hi)| Interval::new(lo, hi))
        .collect();
    #[allow(clippy::disallowed_methods)]
    // lint:allow(wall-clock): telemetry only — wall time never feeds certified bounds
    let t0 = Instant::now();
    let (bounds, mut stats) = propagate(aff, &domain, delta, opts);
    // lint:allow(wall-clock): telemetry only — wall time never feeds certified bounds
    stats.wall = t0.elapsed();
    Ok(GlobalReport {
        epsilons: bounds.epsilons(),
        bounds,
        stats,
    })
}

pub(crate) fn validate(
    aff: &AffineNetwork,
    domain: &[(f64, f64)],
    delta: f64,
    opts: &CertifyOptions,
) -> Result<(), CertifyError> {
    if domain.len() != aff.input_dim {
        return Err(CertifyError::InvalidInput(format!(
            "domain has {} dimensions, network input is {}",
            domain.len(),
            aff.input_dim
        )));
    }
    if domain
        .iter()
        .any(|&(lo, hi)| !lo.is_finite() || !hi.is_finite() || lo > hi)
    {
        return Err(CertifyError::InvalidInput(
            "domain box must be finite and ordered".into(),
        ));
    }
    if delta.is_nan() || delta < 0.0 {
        return Err(CertifyError::InvalidInput(format!(
            "delta must be ≥ 0, got {delta}"
        )));
    }
    if opts.window == 0 {
        return Err(CertifyError::InvalidInput("window must be ≥ 1".into()));
    }
    if aff.layers.is_empty() {
        return Err(CertifyError::InvalidInput("network has no layers".into()));
    }
    Ok(())
}

/// The engine: runs the layered range derivation and returns the tightened
/// bounds. This is Algorithm 1 when `opts` = ITNE/LPR, the ND baseline when
/// `opts.relaxation = Exact`, and the BTNE baseline when
/// `opts.encoding = Btne`.
pub fn propagate(
    aff: &AffineNetwork,
    domain: &[Interval],
    delta: f64,
    opts: &CertifyOptions,
) -> (TwinBounds, CertifyStats) {
    propagate_cached(aff, domain, delta, opts, None, None)
}

/// [`propagate`] with optional resident cache state. With `pre = None` and
/// `resident = None` this *is* the one-shot path, bit for bit. `pre` skips
/// the δ-independent half of the IBP seed (it must come from
/// [`crate::ibp::ibp_values`] over the same network and domain); `resident`
/// reuses per-neuron encodings and basis snapshots across calls and stores
/// the updated state back, which is the engine behind
/// [`crate::resident::certify_global_resident`].
pub(crate) fn propagate_cached(
    aff: &AffineNetwork,
    domain: &[Interval],
    delta: f64,
    opts: &CertifyOptions,
    pre: Option<&ValuePreBounds>,
    mut resident: Option<&mut ResidentState>,
) -> (TwinBounds, CertifyStats) {
    // IBP seeds every range soundly (Algorithm 1 lines 1-2 plus the
    // pre-pass that makes the relaxation ranges and big-M constants valid).
    let mut bounds = match pre {
        Some(p) => ibp_twin_from_values(aff, domain, delta, p),
        None => ibp_twin(aff, domain, delta),
    };
    if opts.encoding == EncodingKind::Btne {
        bounds.decouple_distances();
    }
    let caching = resident.is_some();
    let mut stats = CertifyStats::default();
    let solver = opts.solver_options();

    for li in 0..aff.layers.len() {
        let width = aff.layers[li].width();
        let caches: Vec<Option<Box<NeuronCache>>> = match resident.as_deref_mut() {
            Some(r) => r.take_layer(li, width),
            None => (0..width).map(|_| None).collect(),
        };
        let initial: Vec<LayerTask<'_>> = caches
            .into_iter()
            .enumerate()
            .map(|(j, cache)| LayerTask::Sweep { j, cache })
            .collect();
        let (results, accs) = run_steal(opts.threads, initial, width, |task, acc| {
            run_task(aff, &bounds, li, delta, opts, &solver, caching, task, acc)
        });
        for (j, r) in results.into_iter().enumerate() {
            bounds.y[li][j] = r.y;
            bounds.dy[li][j] = r.dy;
            bounds.x[li][j] = r.x;
            bounds.dx[li][j] = r.dx;
            if let Some(rs) = resident.as_deref_mut() {
                rs.put(li, j, r.cache);
            }
        }
        // Worker order, but every merge is order-insensitive (saturating
        // sums / maxes), so the totals are schedule-invariant.
        for acc in accs {
            stats.query.absorb(acc.stats);
            stats.subproblems = stats.subproblems.saturating_add(acc.subproblems);
            stats.closed_form_hits = stats.closed_form_hits.saturating_add(acc.closed_form);
        }
    }
    (bounds, stats)
}

/// One schedulable unit of the per-layer loop: a neuron's `LpRelaxY` sweep,
/// or the `LpRelaxX` follow-up it spawned (kept separate so an idle worker
/// can steal the X part of a neighboring neuron while its Y owner is still
/// deep in another unit). Each unit carries the neuron's resident cache by
/// value (`None` on the one-shot path), so cached state needs no locking:
/// exactly one worker owns a neuron's cache at any time.
enum LayerTask<'a> {
    Sweep {
        j: usize,
        cache: Option<Box<NeuronCache>>,
    },
    Post {
        j: usize,
        sub: SubNetwork<'a>,
        yr: Interval,
        dyr: Interval,
        cache: Option<Box<NeuronCache>>,
    },
}

/// The per-neuron ranges a task chain finishes with; merged into
/// [`TwinBounds`] by neuron index (the task's slot), the cache handed back
/// to the [`ResidentState`].
struct NeuronResult {
    y: Interval,
    dy: Interval,
    x: Interval,
    dx: Interval,
    cache: Option<Box<NeuronCache>>,
}

/// Per-worker telemetry accumulator, merged once at the join instead of
/// per-neuron through a shared lock.
#[derive(Default)]
struct WorkerAcc {
    stats: QueryStats,
    subproblems: u64,
    closed_form: u64,
}

/// Lines 5-11 of Algorithm 1 as scheduler steps. `Sweep` decomposes,
/// encodes and runs `LpRelaxY`; it finishes the neuron inline when no
/// `LpRelaxX` solve is needed (affine layer, or the provably-equal closed
/// form) and otherwise spawns the `Post` follow-up carrying the fresh
/// `(y, Δy)` ranges into the `LpRelaxX` solve.
#[allow(clippy::too_many_arguments)]
fn run_task<'a>(
    aff: &'a AffineNetwork,
    bounds: &TwinBounds,
    li: usize,
    delta: f64,
    opts: &CertifyOptions,
    solver: &SolveOptions,
    caching: bool,
    task: LayerTask<'a>,
    acc: &mut WorkerAcc,
) -> Step<LayerTask<'a>, NeuronResult> {
    let enc_opts = opts.encode_options(delta);
    match task {
        LayerTask::Sweep { j, mut cache } => {
            let sub = SubNetwork::decompose(aff, li, j, opts.window);

            // --- LpRelaxY: ranges of (y, Δy). ---
            let (yr, dyr) = if caching {
                let nc = cache.get_or_insert_with(Default::default);
                let refined = refined_for(&sub, bounds, TargetKind::PreActivation, &enc_opts);
                let sc = crate::resident::prepare_subcache(
                    &mut nc.y,
                    &sub,
                    bounds,
                    TargetKind::PreActivation,
                    &enc_opts,
                    None,
                    refined,
                    &mut acc.stats,
                );
                lp_relax_y_resident(
                    &mut sc.enc,
                    bounds.y[li][j],
                    bounds.dy[li][j],
                    solver,
                    opts.check_certificates,
                    &mut sc.bases,
                    &mut acc.stats,
                )
            } else {
                let mut enc_y = encode_subnet(&sub, bounds, TargetKind::PreActivation, &enc_opts);
                lp_relax_y(
                    &mut enc_y,
                    bounds.y[li][j],
                    bounds.dy[li][j],
                    solver,
                    opts.check_certificates,
                    &mut acc.stats,
                )
            };
            acc.subproblems = acc.subproblems.saturating_add(1);

            let relu = aff.layers[li].relu;
            if !relu {
                Step::Done {
                    slot: j,
                    result: NeuronResult {
                        y: yr,
                        dy: dyr,
                        x: yr,
                        dx: dyr,
                        cache,
                    },
                }
            } else if opts.closed_form_x
                && closed_form_applies(&sub, bounds, yr, dyr, opts, &enc_opts)
            {
                acc.closed_form = acc.closed_form.saturating_add(1);
                let (x, dx) = closed_form_x(yr, dyr, opts.encoding);
                Step::Done {
                    slot: j,
                    result: NeuronResult {
                        y: yr,
                        dy: dyr,
                        x,
                        dx,
                        cache,
                    },
                }
            } else {
                Step::Follow(LayerTask::Post {
                    j,
                    sub,
                    yr,
                    dyr,
                    cache,
                })
            }
        }

        // --- LpRelaxX: ranges of (x, Δx). ---
        LayerTask::Post {
            j,
            sub,
            yr,
            dyr,
            mut cache,
        } => {
            acc.subproblems = acc.subproblems.saturating_add(1);
            // Thread the freshly-derived target ranges through so the
            // target's own relaxation uses them rather than the stale
            // stored ones.
            let over = TargetOverride {
                y: yr,
                dy: dyr,
                x: yr.relu(),
                dx: fallback_dx(yr, dyr, opts.encoding),
            };
            let (x, dx) = if caching {
                let nc = cache.get_or_insert_with(Default::default);
                let refined = refined_for(&sub, bounds, TargetKind::PostActivation, &enc_opts);
                let sc = crate::resident::prepare_subcache(
                    &mut nc.x,
                    &sub,
                    bounds,
                    TargetKind::PostActivation,
                    &enc_opts,
                    Some(over),
                    refined,
                    &mut acc.stats,
                );
                lp_relax_x_resident(
                    &mut sc.enc,
                    over.x,
                    over.dx,
                    solver,
                    opts.check_certificates,
                    &mut sc.bases,
                    &mut acc.stats,
                )
            } else {
                let mut enc_x = encode_subnet_with(
                    &sub,
                    bounds,
                    TargetKind::PostActivation,
                    &enc_opts,
                    Some(over),
                );
                lp_relax_x(
                    &mut enc_x,
                    over.x,
                    over.dx,
                    solver,
                    opts.check_certificates,
                    &mut acc.stats,
                )
            };
            Step::Done {
                slot: j,
                result: NeuronResult {
                    y: yr,
                    dy: dyr,
                    x,
                    dx,
                    cache,
                },
            }
        }
    }
}

/// Sound fallback for the target's `Δx` given fresh `(y, Δy)` ranges.
fn fallback_dx(yr: Interval, dyr: Interval, kind: EncodingKind) -> Interval {
    match kind {
        EncodingKind::Single => Interval::point(0.0),
        EncodingKind::Itne => relu_distance_range(yr, dyr),
        EncodingKind::Btne => {
            // Decoupled copies: Δx ranges over x̂_range − x_range.
            let x = yr.relu();
            Interval::new(x.lo - x.hi, x.hi - x.lo)
        }
    }
}

/// Whether the `LpRelaxX` optimum equals the closed form (ITNE/Single, LPR,
/// target unrefined, paper-faithful distance relaxation, and a phase
/// combination whose relaxed LP optimum is attained at the range corners).
fn closed_form_applies(
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    yr: Interval,
    dyr: Interval,
    opts: &CertifyOptions,
    enc_opts: &EncodeOptions,
) -> bool {
    if opts.relaxation != Relaxation::Lpr || opts.y_aware_distance {
        return false;
    }
    if opts.encoding == EncodingKind::Btne {
        return false; // input-coupled windows make the LP strictly tighter
    }
    // The target itself must not be selectively refined.
    if opts.refine > 0 {
        let layer = sub.cone.layer;
        let target = sub.target();
        let refined = select_refined(sub, bounds, TargetKind::PostActivation, enc_opts);
        if refined.contains(&(layer, target)) {
            return false;
        }
    }
    match opts.encoding {
        EncodingKind::Single => true,
        EncodingKind::Itne => {
            let yhr = yr.add(dyr);
            let both_stable = (yr.stable_active() && yhr.stable_active())
                || (yr.stable_inactive() && yhr.stable_inactive());
            let both_unstable = !(yr.stable_active()
                || yr.stable_inactive()
                || yhr.stable_active()
                || yhr.stable_inactive());
            // Mixed phases admit exact linear couplings (x̂ = ŷ etc.) that
            // make the LP strictly tighter than the corner formula, so only
            // the two symmetric cases use the closed form.
            both_stable || both_unstable
        }
        EncodingKind::Btne => false,
    }
}

/// The closed form of the `LpRelaxX` LP optimum (see
/// [`closed_form_applies`]): `x = relu(y)` ranges and the Eq. 6 corner box
/// for `Δx` (or `Δy` when both copies are provably active).
fn closed_form_x(yr: Interval, dyr: Interval, kind: EncodingKind) -> (Interval, Interval) {
    let xr = yr.relu();
    match kind {
        EncodingKind::Single => (xr, Interval::point(0.0)),
        EncodingKind::Itne => {
            let yhr = yr.add(dyr);
            if yr.stable_active() && yhr.stable_active() {
                (xr, dyr)
            } else if yr.stable_inactive() && yhr.stable_inactive() {
                (Interval::point(0.0), Interval::point(0.0))
            } else {
                let (l, u) = distance_relaxation_bounds(dyr);
                (xr, Interval::new(l, u))
            }
        }
        EncodingKind::Btne => unreachable!("closed form never applies to BTNE"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::{fig1_affine, fig1_network};

    const DOM: [(f64, f64); 2] = [(-1.0, 1.0), (-1.0, 1.0)];

    /// Fig. 4 "Interleaving ND" row: window-1 exact sub-networks give
    /// Δx⁽¹⁾ ∈ [-0.15, 0.15]², Δx⁽²⁾ ∈ [-0.3, 0.3] → ε = 0.3 (1.5× exact).
    #[test]
    fn fig4_itne_nd_row() {
        let net = fig1_network();
        let opts = CertifyOptions {
            window: 1,
            relaxation: Relaxation::Exact,
            ..Default::default()
        };
        let r = certify_global(&net, &DOM, 0.1, &opts).unwrap();
        for j in 0..2 {
            let d = r.bounds.dx[0][j];
            assert!(
                (d.lo + 0.15).abs() < 1e-5 && (d.hi - 0.15).abs() < 1e-5,
                "Δx⁽¹⁾ {d}"
            );
        }
        assert!((r.epsilon(0) - 0.3).abs() < 1e-5, "ε = {}", r.epsilon(0));
    }

    /// Fig. 4 "Basic Encoding ND" row: distance information is lost between
    /// sub-networks, giving Δx⁽²⁾ ∈ [-1.5, 1.5] → ε = 1.5 (7.5× exact).
    #[test]
    fn fig4_btne_nd_row() {
        let net = fig1_network();
        let opts = CertifyOptions {
            window: 1,
            encoding: EncodingKind::Btne,
            relaxation: Relaxation::Exact,
            ..Default::default()
        };
        let r = certify_global(&net, &DOM, 0.1, &opts).unwrap();
        assert!((r.epsilon(0) - 1.5).abs() < 1e-5, "ε = {}", r.epsilon(0));
        // Per-copy ranges stay exact: x⁽¹⁾ ∈ [0, 1.5].
        assert!((r.bounds.x[0][0].hi - 1.5).abs() < 1e-5);
    }

    /// Algorithm 1 defaults (ITNE + LPR, W = 2) on the example give
    /// ε = 0.25 — *tighter* than Fig. 4's one-shot LPR value 0.275, because
    /// `LpRelaxX` reuses the fresh `Δy⁽²⁾ ∈ [-0.25, 0.25]` from `LpRelaxY`
    /// (Algorithm 1 lines 8 → 11) instead of the IBP range `[-0.3, 0.3]`
    /// that the §II-D illustration relaxes against.
    #[test]
    fn algorithm1_default_matches_lpr() {
        let net = fig1_network();
        let r = certify_global(&net, &DOM, 0.1, &CertifyOptions::default()).unwrap();
        assert!((r.epsilon(0) - 0.25).abs() < 1e-5, "ε = {}", r.epsilon(0));
        let dy_out = r.bounds.dy[1][0];
        assert!((dy_out.hi - 0.25).abs() < 1e-5, "Δy⁽²⁾ {dy_out}");
        assert!(r.stats.query.fallbacks == 0);
    }

    /// The closed-form LpRelaxX fast path is bit-identical to solving the LP.
    #[test]
    fn closed_form_equals_lp() {
        let net = fig1_network();
        for refine in [0usize, 1, 2] {
            let mk = |closed: bool| CertifyOptions {
                closed_form_x: closed,
                refine,
                ..Default::default()
            };
            let a = certify_global(&net, &DOM, 0.1, &mk(true)).unwrap();
            let b = certify_global(&net, &DOM, 0.1, &mk(false)).unwrap();
            for (da, db) in a
                .bounds
                .dx
                .iter()
                .flatten()
                .zip(b.bounds.dx.iter().flatten())
            {
                assert!(
                    (da.lo - db.lo).abs() < 1e-6 && (da.hi - db.hi).abs() < 1e-6,
                    "closed form {da} vs LP {db} (refine {refine})"
                );
            }
            assert!(a.stats.closed_form_hits > 0 || refine > 0);
        }
    }

    /// Parallel execution returns bit-identical bounds at every thread
    /// count, with schedule-invariant work counters.
    #[test]
    fn parallel_matches_serial() {
        let net = fig1_network();
        let serial_opts = CertifyOptions {
            threads: 1,
            ..Default::default()
        };
        let serial = certify_global(&net, &DOM, 0.1, &serial_opts).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = certify_global(
                &net,
                &DOM,
                0.1,
                &CertifyOptions {
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            for (a, b) in serial.epsilons.iter().zip(&parallel.epsilons) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads = {threads}");
            }
            assert_eq!(
                serial.stats.subproblems, parallel.stats.subproblems,
                "threads = {threads}"
            );
            assert_eq!(
                serial.stats.query.solves, parallel.stats.query.solves,
                "threads = {threads}"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(12))]
        /// Forced randomized steal schedules (the scheduler's fake-steal
        /// hook) are invisible: ε̄ bits and all bound bits equal the serial
        /// run for every seed.
        #[test]
        fn randomized_steal_schedules_are_invisible(seed in 0u64..u64::MAX) {
            let net = fig1_network();
            let serial = certify_global(
                &net,
                &DOM,
                0.1,
                &CertifyOptions {
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            crate::schedule::set_test_steal_seed(Some(seed));
            let stolen = certify_global(
                &net,
                &DOM,
                0.1,
                &CertifyOptions {
                    threads: 3,
                    ..Default::default()
                },
            );
            crate::schedule::set_test_steal_seed(None);
            let stolen = stolen.unwrap();
            for (a, b) in serial.epsilons.iter().zip(&stolen.epsilons) {
                proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            for (sa, sb) in [
                (&serial.bounds.dx, &stolen.bounds.dx),
                (&serial.bounds.dy, &stolen.bounds.dy),
            ] {
                for (ia, ib) in sa.iter().flatten().zip(sb.iter().flatten()) {
                    proptest::prop_assert_eq!(ia.lo.to_bits(), ib.lo.to_bits());
                    proptest::prop_assert_eq!(ia.hi.to_bits(), ib.hi.to_bits());
                }
            }
        }
    }

    /// Refinement tightens monotonically toward the exact 0.2.
    #[test]
    fn refinement_tightens_layered_bound() {
        let net = fig1_network();
        let eps = |r: usize| {
            certify_global(
                &net,
                &DOM,
                0.1,
                &CertifyOptions {
                    refine: r,
                    ..Default::default()
                },
            )
            .unwrap()
            .epsilon(0)
        };
        let (e0, e3) = (eps(0), eps(3));
        assert!(e3 <= e0 + 1e-9, "refined {e3} worse than unrefined {e0}");
        assert!(e3 >= 0.2 - 1e-6, "refined bound {e3} below exact");
    }

    /// A wider perturbation bound can only widen the certified ε.
    #[test]
    fn epsilon_monotone_in_delta() {
        let net = fig1_network();
        let mut last = 0.0;
        for delta in [0.01, 0.05, 0.1, 0.2] {
            let e = certify_global(&net, &DOM, delta, &CertifyOptions::default())
                .unwrap()
                .epsilon(0);
            assert!(e + 1e-9 >= last, "ε not monotone in δ");
            last = e;
        }
    }

    /// Invalid inputs are rejected with informative errors.
    #[test]
    fn invalid_inputs_rejected() {
        let aff = fig1_affine();
        let opts = CertifyOptions::default();
        assert!(certify_global_affine(&aff, &[(-1.0, 1.0)], 0.1, &opts).is_err());
        assert!(certify_global_affine(&aff, &DOM, -0.1, &opts).is_err());
        assert!(certify_global_affine(
            &aff,
            &DOM,
            0.1,
            &CertifyOptions {
                window: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(certify_global_affine(&aff, &[(1.0, -1.0), (0.0, 1.0)], 0.1, &opts).is_err());
    }

    /// An expired global deadline degrades to (sound) IBP ranges.
    #[test]
    fn expired_deadline_returns_ibp() {
        let net = fig1_network();
        let opts = CertifyOptions {
            deadline: Some(crate::deadline::already_expired()),
            ..Default::default()
        };
        let r = certify_global(&net, &DOM, 0.1, &opts).unwrap();
        // IBP ε for the example is 0.3; sound and loose.
        assert!((r.epsilon(0) - 0.3).abs() < 1e-9);
        assert!(r.stats.query.fallbacks > 0);
    }
}
