//! Local robustness certification around a single input sample.
//!
//! Local robustness bounds `|F(x̂)_j − F(x₀)_j|` for all `x̂` with
//! `‖x̂ − x₀‖∞ ≤ δ` (optionally clipped to the domain). It is a single-copy
//! output-range analysis over a small box — the setting of the upper half of
//! the paper's Fig. 4, included here both as that reproduction and as the
//! building block the paper generalizes away from.

use crate::algorithm::{propagate, CertifyOptions, CertifyStats};
use crate::bounds::TwinBounds;
use crate::encode::EncodingKind;
use crate::error::CertifyError;
use crate::interval::Interval;
use itne_nn::{AffineNetwork, Network};
use std::time::Instant;

/// Result of a local robustness certification.
#[derive(Clone, Debug)]
pub struct LocalReport {
    /// Certified `|F(x̂)_j − F(x₀)_j|` bound per output.
    pub epsilons: Vec<f64>,
    /// Certified output ranges (the `x̂⁽ⁿ⁾` rows of Fig. 4).
    pub output_ranges: Vec<Interval>,
    /// The network value at the sample.
    pub reference: Vec<f64>,
    /// All internal ranges.
    pub bounds: TwinBounds,
    /// Work counters.
    pub stats: CertifyStats,
}

impl LocalReport {
    /// The certified local bound for output `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn epsilon(&self, j: usize) -> f64 {
        self.epsilons[j]
    }
}

/// Certifies local robustness of `net` at `x0` under perturbation bound
/// `delta`, clipping the perturbation box to `domain` when provided.
///
/// The `opts` select the method exactly as for the global engine: exact
/// whole-network MILP (`Relaxation::Exact`, window ≥ depth), ND
/// (`Relaxation::Exact`, small window) or LPR (`Relaxation::Lpr`). The
/// encoding is forced to [`EncodingKind::Single`]: local robustness has one
/// network copy.
///
/// # Errors
///
/// See [`CertifyError`].
pub fn certify_local(
    net: &Network,
    x0: &[f64],
    delta: f64,
    domain: Option<&[(f64, f64)]>,
    opts: &CertifyOptions,
) -> Result<LocalReport, CertifyError> {
    let aff = AffineNetwork::from_network(net)?;
    if x0.len() != aff.input_dim {
        return Err(CertifyError::InvalidInput(format!(
            "sample has {} dims, network input is {}",
            x0.len(),
            aff.input_dim
        )));
    }
    if delta.is_nan() || delta < 0.0 {
        return Err(CertifyError::InvalidInput(format!(
            "delta must be ≥ 0, got {delta}"
        )));
    }
    let mut box_: Vec<Interval> = x0
        .iter()
        .map(|&v| Interval::new(v - delta, v + delta))
        .collect();
    if let Some(dom) = domain {
        if dom.len() != x0.len() {
            return Err(CertifyError::InvalidInput(
                "domain/sample dimension mismatch".into(),
            ));
        }
        for (b, &(lo, hi)) in box_.iter_mut().zip(dom) {
            *b = b
                .intersect(Interval::new(lo, hi), 0.0)
                .ok_or_else(|| CertifyError::InvalidInput("sample outside domain".into()))?;
        }
    }

    let local_opts = CertifyOptions {
        encoding: EncodingKind::Single,
        ..opts.clone()
    };
    #[allow(clippy::disallowed_methods)]
    // lint:allow(wall-clock): telemetry only — wall time never feeds certified bounds
    let t0 = Instant::now();
    let (bounds, mut stats) = propagate(&aff, &box_, 0.0, &local_opts);
    // lint:allow(wall-clock): telemetry only — wall time never feeds certified bounds
    stats.wall = t0.elapsed();

    let reference = net.forward(x0);
    let output_ranges: Vec<Interval> = bounds.x.last().expect("network has layers").clone();
    let epsilons = output_ranges
        .iter()
        .zip(&reference)
        .map(|(r, &f)| (r.hi - f).max(f - r.lo).max(0.0))
        .collect();

    Ok(LocalReport {
        epsilons,
        output_ranges,
        reference,
        bounds,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Relaxation;
    use crate::example::fig1_network;

    /// Fig. 4 local rows at x₀ = (0, 0), δ = 0.1:
    /// exact x̂⁽²⁾ ∈ [0, 0.125]; ND (W=1) gives [0, 0.15]; LPR [0, 0.144].
    #[test]
    fn fig4_local_rows() {
        let net = fig1_network();
        let x0 = [0.0, 0.0];

        let exact = certify_local(
            &net,
            &x0,
            0.1,
            None,
            &CertifyOptions {
                relaxation: Relaxation::Exact,
                window: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let r = exact.output_ranges[0];
        assert!(
            r.lo.abs() < 1e-6 && (r.hi - 0.125).abs() < 1e-6,
            "exact {r}"
        );

        let nd = certify_local(
            &net,
            &x0,
            0.1,
            None,
            &CertifyOptions {
                relaxation: Relaxation::Exact,
                window: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let r = nd.output_ranges[0];
        assert!(r.lo.abs() < 1e-6 && (r.hi - 0.15).abs() < 1e-6, "nd {r}");

        let lpr = certify_local(
            &net,
            &x0,
            0.1,
            None,
            &CertifyOptions {
                relaxation: Relaxation::Lpr,
                window: 2,
                refine: 0,
                ..Default::default()
            },
        )
        .unwrap();
        // The paper's one-shot LPR gives [0, 0.144] (see
        // `oneshot::tests::fig4_local_lpr_row`); the layered engine
        // re-derives the output pre-activation range before applying the
        // ReLU, which tightens this to [0, 0.1375].
        let r = lpr.output_ranges[0];
        assert!(r.lo.abs() < 1e-6 && (r.hi - 0.1375).abs() < 1e-6, "lpr {r}");
    }

    #[test]
    fn local_epsilon_is_sound_against_sampling() {
        let net = fig1_network();
        let x0 = [0.3, -0.4];
        let rep = certify_local(&net, &x0, 0.05, None, &CertifyOptions::default()).unwrap();
        let f0 = net.forward(&x0);
        // Dense corner + grid sampling inside the box.
        for a in -4i32..=4 {
            for b in -4i32..=4 {
                let xh = [x0[0] + 0.05 * a as f64 / 4.0, x0[1] + 0.05 * b as f64 / 4.0];
                let fh = net.forward(&xh);
                assert!((fh[0] - f0[0]).abs() <= rep.epsilon(0) + 1e-9);
            }
        }
    }

    #[test]
    fn sample_outside_domain_is_rejected() {
        let net = fig1_network();
        let r = certify_local(
            &net,
            &[5.0, 5.0],
            0.1,
            Some(&[(-1.0, 1.0), (-1.0, 1.0)]),
            &CertifyOptions::default(),
        );
        assert!(r.is_err());
    }
}
