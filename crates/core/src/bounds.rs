//! Per-layer twin-network range storage shared by the IBP pass and
//! Algorithm 1.

use crate::interval::Interval;
use itne_nn::AffineNetwork;
use serde::{Deserialize, Serialize};

/// Ranges of all twin-encoding quantities across a network:
/// per layer `i`, the pre-activation `y⁽ⁱ⁾`, post-activation `x⁽ⁱ⁾`, and the
/// twin distances `Δy⁽ⁱ⁾`, `Δx⁽ⁱ⁾`; plus the input box and input distance.
///
/// All intervals are *sound outer bounds*: every reachable value (under the
/// input domain and perturbation bound used to produce them) lies inside.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TwinBounds {
    /// Input domain box `X` (per input dimension).
    pub input: Vec<Interval>,
    /// Input distance box, `[-δ, δ]` for the paper's L∞ perturbation.
    pub dinput: Vec<Interval>,
    /// `y[i][j]` = range of pre-activation of neuron `j` in affine layer `i`.
    pub y: Vec<Vec<Interval>>,
    /// `dy[i][j]` = range of `ŷ − y`.
    pub dy: Vec<Vec<Interval>>,
    /// `x[i][j]` = range of post-activation.
    pub x: Vec<Vec<Interval>>,
    /// `dx[i][j]` = range of `x̂ − x`.
    pub dx: Vec<Vec<Interval>>,
}

impl TwinBounds {
    /// Empty bound storage shaped like `net`, with every interval set to the
    /// (unusable) empty placeholder `[+∞, -∞]` union identity.
    pub fn empty_like(net: &AffineNetwork, input: Vec<Interval>, dinput: Vec<Interval>) -> Self {
        let placeholder = Interval {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        };
        let shape = |_: usize| placeholder;
        TwinBounds {
            input,
            dinput,
            y: net
                .layers
                .iter()
                .map(|l| (0..l.width()).map(shape).collect())
                .collect(),
            dy: net
                .layers
                .iter()
                .map(|l| (0..l.width()).map(shape).collect())
                .collect(),
            x: net
                .layers
                .iter()
                .map(|l| (0..l.width()).map(shape).collect())
                .collect(),
            dx: net
                .layers
                .iter()
                .map(|l| (0..l.width()).map(shape).collect())
                .collect(),
        }
    }

    /// Post-activation ranges of the layer feeding affine layer `i` (the
    /// input box when `i == 0`).
    pub fn x_in(&self, i: usize) -> &[Interval] {
        if i == 0 {
            &self.input
        } else {
            &self.x[i - 1]
        }
    }

    /// Distance ranges of the layer feeding affine layer `i`.
    pub fn dx_in(&self, i: usize) -> &[Interval] {
        if i == 0 {
            &self.dinput
        } else {
            &self.dx[i - 1]
        }
    }

    /// The per-output `ε̄` implied by the final layer's distance ranges —
    /// Algorithm 1's line 14: `ε̄ = max(|Δx⁽ⁿ⁾.lo|, |Δx⁽ⁿ⁾.hi|)`.
    pub fn epsilons(&self) -> Vec<f64> {
        self.dx
            .last()
            .map(|last| last.iter().map(|i| i.max_abs()).collect())
            .unwrap_or_default()
    }

    /// Replaces the interleaved distance ranges by what the *basic*
    /// twin-network encoding actually knows: with no hidden distance
    /// variables, a `Δ` range is only the decoupled difference of the
    /// per-copy ranges (§II-D: "the distance information between the two
    /// network copies is lost"). Used when running BTNE baselines so they
    /// are not secretly seeded with interleaved information.
    pub fn decouple_distances(&mut self) {
        for i in 0..self.y.len() {
            for j in 0..self.y[i].len() {
                let y = self.y[i][j];
                let x = self.x[i][j];
                self.dy[i][j] = Interval::new(y.lo - y.hi, y.hi - y.lo);
                self.dx[i][j] = Interval::new(x.lo - x.hi, x.hi - x.lo);
            }
        }
    }
}
