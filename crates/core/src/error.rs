//! Certification error type.

use itne_nn::NnError;
use std::error::Error;
use std::fmt;

/// Errors raised by the certification entry points.
///
/// Solver trouble never surfaces here: the engine falls back to sound IBP
/// ranges instead, recording the event in the run's statistics.
#[derive(Clone, Debug, PartialEq)]
pub enum CertifyError {
    /// Mismatched dimensions, malformed domain box, negative `δ`, or invalid
    /// options.
    InvalidInput(String),
    /// The network could not be lowered to the affine IR.
    Lower(NnError),
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertifyError::InvalidInput(why) => write!(f, "invalid input: {why}"),
            CertifyError::Lower(e) => write!(f, "cannot lower network: {e}"),
        }
    }
}

impl Error for CertifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CertifyError::Lower(e) => Some(e),
            CertifyError::InvalidInput(_) => None,
        }
    }
}

impl From<NnError> for CertifyError {
    fn from(e: NnError) -> Self {
        CertifyError::Lower(e)
    }
}
