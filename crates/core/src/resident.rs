//! Resident certification state: the per-network caches that let repeated
//! certification queries skip work a one-shot run redoes every time.
//!
//! A [`ResidentState`] owns, per neuron and per pass (`LpRelaxY` /
//! `LpRelaxX`), a [`SubCache`]: the encoded sub-network, the refined-neuron
//! set it was built for, and one simplex [`Basis`] per directed objective
//! from the previous query's sweep. Across queries the engine then
//!
//! 1. **re-parameterizes instead of re-encoding**: a new δ (or a small
//!    weight update) changes relaxation coefficients and RHS values but
//!    usually not the constraint *skeleton*; the cached encoding is replayed
//!    in place ([`crate::encode::reencode_subnet`]) and only rebuilt from
//!    scratch when the structure actually changed (counted in
//!    [`QueryStats::encoding_cache_misses`]);
//! 2. **warm-starts across queries**: each directed solve restores the basis
//!    the *previous query* stored for the same objective
//!    ([`QueryStats::cross_query_warm_hits`]) — already optimal when only δ
//!    moved, so hot queries pivot rarely — and, because a
//!    [`ResidentState`] can be cloned from a predecessor network's session,
//!    to **delta re-certification** after a fine-tuning step.
//!
//! Both reuse layers are pure optimizations: replay verifies the skeleton
//! bit-for-bit and falls back to a fresh encode, and warm starts fall back
//! to cold solves, so resident results are bit-identical to the one-shot
//! path (asserted by the tests below and the golden suite).

use crate::algorithm::{propagate_cached, validate, CertifyOptions, GlobalReport};
use crate::bounds::TwinBounds;
use crate::encode::{
    encode_subnet_refined, reencode_subnet, EncodeOptions, EncodedSubNet, TargetKind,
    TargetOverride,
};
use crate::error::CertifyError;
use crate::ibp::ValuePreBounds;
use crate::interval::Interval;
use crate::query::{QueryStats, BASIS_SLOTS};
use crate::refine::RefinedSet;
use crate::subnet::SubNetwork;
use itne_milp::Basis;
use itne_nn::AffineNetwork;

/// One pass's resident artifacts for one neuron: the encoded sub-network,
/// the refined set that keys its structure, and the per-objective [`Basis`]
/// slots the previous query's sweep stored — the seeds the next query's
/// directed solves restore ([`crate::query::lp_relax_y_resident`]).
#[derive(Clone)]
pub(crate) struct SubCache {
    pub(crate) enc: EncodedSubNet,
    pub(crate) refined: RefinedSet,
    pub(crate) bases: [Option<Basis>; BASIS_SLOTS],
}

/// Resident artifacts of one neuron: the `LpRelaxY` encoding and, when the
/// neuron ever needed an LP `LpRelaxX` pass, that encoding too.
#[derive(Clone, Default)]
pub(crate) struct NeuronCache {
    pub(crate) y: Option<SubCache>,
    pub(crate) x: Option<SubCache>,
}

/// All cached per-neuron state of one resident certification session.
///
/// A state is implicitly keyed by the `(network, domain, options)` triple it
/// was populated under; the serve layer keys its session map accordingly.
/// Using it with *changed* options or a perturbed network is safe — every
/// reuse is verified structurally and falls back to fresh work — it only
/// costs cache misses. Cloning a predecessor network's state before the
/// first query against an updated network is exactly the delta
/// re-certification warm start.
#[derive(Clone, Default)]
pub struct ResidentState {
    layers: Vec<Vec<Option<Box<NeuronCache>>>>,
}

impl ResidentState {
    /// An empty state: the first query populates it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detaches layer `li`'s caches so the scheduler can move each neuron's
    /// cache into its task (single owner, no locking). Resizes to `width`
    /// (dropping stale caches) when the stored shape disagrees.
    pub(crate) fn take_layer(&mut self, li: usize, width: usize) -> Vec<Option<Box<NeuronCache>>> {
        if self.layers.len() <= li {
            self.layers.resize_with(li + 1, Vec::new);
        }
        let layer = &mut self.layers[li];
        if layer.len() != width {
            layer.clear();
            layer.resize_with(width, || None);
        }
        std::mem::take(layer)
    }

    /// Returns neuron `(li, j)`'s cache after its task chain finished.
    /// Results merge back in slot order, so this is a push.
    pub(crate) fn put(&mut self, li: usize, j: usize, cache: Option<Box<NeuronCache>>) {
        let layer = &mut self.layers[li];
        debug_assert_eq!(layer.len(), j, "cache returned out of slot order");
        layer.push(cache);
    }
}

/// Readies `slot` for a solve against the current `bounds`: replays the
/// cached encoding in place when its structure (refined set + skeleton)
/// still matches, else encodes fresh. The stored bases survive either way —
/// a basis restore is shape-checked downstream and at worst re-runs cold.
#[allow(clippy::too_many_arguments)]
pub(crate) fn prepare_subcache<'c>(
    slot: &'c mut Option<SubCache>,
    sub: &SubNetwork<'_>,
    bounds: &TwinBounds,
    target: TargetKind,
    opts: &EncodeOptions,
    over: Option<TargetOverride>,
    refined: RefinedSet,
    stats: &mut QueryStats,
) -> &'c mut SubCache {
    let hit = match slot.as_mut() {
        Some(sc) if sc.refined == refined => {
            reencode_subnet(&mut sc.enc, sub, bounds, target, opts, over, &refined)
        }
        _ => false,
    };
    if hit {
        stats.encoding_cache_hits += 1;
    } else {
        stats.encoding_cache_misses += 1;
        let bases = slot.take().map(|sc| sc.bases).unwrap_or_default();
        *slot = Some(SubCache {
            enc: encode_subnet_refined(sub, bounds, target, opts, over, &refined),
            refined,
            bases,
        });
    }
    slot.as_mut().expect("slot was just filled")
}

/// [`crate::algorithm::certify_global_affine`] against resident state:
/// identical inputs produce bit-identical [`GlobalReport`]s, but repeated
/// queries reuse `state`'s encodings and bases (and `pre`, when given, skips
/// the δ-independent half of the IBP seed — it must come from
/// [`crate::ibp::ibp_values`] over the same network and domain).
///
/// # Errors
///
/// See [`crate::algorithm::certify_global`].
pub fn certify_global_resident(
    aff: &AffineNetwork,
    domain: &[(f64, f64)],
    delta: f64,
    opts: &CertifyOptions,
    pre: Option<&ValuePreBounds>,
    state: &mut ResidentState,
) -> Result<GlobalReport, CertifyError> {
    validate(aff, domain, delta, opts)?;
    let domain: Vec<Interval> = domain
        .iter()
        .map(|&(lo, hi)| Interval::new(lo, hi))
        .collect();
    #[allow(clippy::disallowed_methods)]
    // lint:allow(wall-clock): telemetry only — wall time never feeds certified bounds
    let t0 = std::time::Instant::now();
    let (bounds, mut stats) = propagate_cached(aff, &domain, delta, opts, pre, Some(state));
    // lint:allow(wall-clock): telemetry only — wall time never feeds certified bounds
    stats.wall = t0.elapsed();
    Ok(GlobalReport {
        epsilons: bounds.epsilons(),
        bounds,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::certify_global_affine;
    use crate::example::fig1_affine;
    use crate::ibp::ibp_values;
    use itne_nn::{AffineLayer, SparseRow};

    /// A deterministic dense `4 → 8 → 8 → 2` ReLU net, big enough that its
    /// LPs take real pivots (fig. 1's LPs are near-trivial).
    fn dense_net(seed: u64) -> AffineNetwork {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut layer = |inputs: usize, width: usize, relu: bool| AffineLayer {
            rows: (0..width)
                .map(|_| SparseRow {
                    terms: (0..inputs).map(|k| (k, next())).collect(),
                    bias: 0.25 * next(),
                })
                .collect(),
            relu,
        };
        AffineNetwork {
            input_dim: 4,
            layers: vec![layer(4, 8, true), layer(8, 8, true), layer(8, 2, false)],
        }
    }

    fn perturbed(net: &AffineNetwork, magnitude: f64) -> AffineNetwork {
        let mut out = net.clone();
        let mut sign = 1.0;
        for l in &mut out.layers {
            for r in &mut l.rows {
                for t in &mut r.terms {
                    t.1 += sign * magnitude;
                    sign = -sign;
                }
                r.bias += sign * magnitude;
            }
        }
        out
    }

    fn bits(r: &GlobalReport) -> Vec<u64> {
        r.epsilons.iter().map(|e| e.to_bits()).collect()
    }

    #[test]
    fn resident_queries_match_cold_bitwise() {
        let net = dense_net(0xC0FFEE);
        let domain = [(-1.0, 1.0); 4];
        let opts = CertifyOptions {
            threads: 1,
            ..Default::default()
        };
        let dom_iv: Vec<Interval> = domain.iter().map(|&(l, h)| Interval::new(l, h)).collect();
        let pre = ibp_values(&net, &dom_iv);
        let mut state = ResidentState::new();
        for (i, delta) in [0.001, 0.002, 0.001, 0.0005].into_iter().enumerate() {
            let cold = certify_global_affine(&net, &domain, delta, &opts).unwrap();
            let res = certify_global_resident(&net, &domain, delta, &opts, Some(&pre), &mut state)
                .unwrap();
            assert_eq!(bits(&cold), bits(&res), "ε̄ bits diverged at query {i}");
            assert_eq!(res.stats.query.cert_failures, 0);
            if i == 0 {
                assert!(res.stats.query.encoding_cache_misses > 0);
            } else {
                assert!(
                    res.stats.query.encoding_cache_hits > 0,
                    "repeat query never reused an encoding: {:?}",
                    res.stats.query
                );
                assert!(
                    res.stats.query.cross_query_warm_hits > 0,
                    "repeat query never warm-started from the basis store: {:?}",
                    res.stats.query
                );
            }
        }
        // Revisiting an earlier δ must also still match its cold run.
        let cold = certify_global_affine(&net, &domain, 0.002, &opts).unwrap();
        let res =
            certify_global_resident(&net, &domain, 0.002, &opts, Some(&pre), &mut state).unwrap();
        assert_eq!(bits(&cold), bits(&res));
    }

    /// The ISSUE acceptance criterion: after a ≤ 1e-3 weight perturbation,
    /// re-certifying with the predecessor's cloned resident state takes
    /// strictly fewer total pivots than a cold run of the perturbed net —
    /// while producing bit-identical bounds.
    #[test]
    fn delta_recertification_pivots_strictly_fewer_than_cold() {
        let net = dense_net(0xBADA55);
        let domain = [(-1.0, 1.0); 4];
        let opts = CertifyOptions {
            threads: 1,
            ..Default::default()
        };
        let dom_iv: Vec<Interval> = domain.iter().map(|&(l, h)| Interval::new(l, h)).collect();

        // Build up resident state on the original net.
        let pre = ibp_values(&net, &dom_iv);
        let mut state = ResidentState::new();
        certify_global_resident(&net, &domain, 0.001, &opts, Some(&pre), &mut state).unwrap();

        // Fine-tuning step: perturb every weight by 1e-4 (≤ 1e-3).
        let tuned = perturbed(&net, 1e-4);
        let cold = certify_global_affine(&tuned, &domain, 0.001, &opts).unwrap();

        // Delta path: clone the predecessor session's state, rebuild only
        // bounds/RHS, warm-start every sweep from its stored bases.
        let tuned_pre = ibp_values(&tuned, &dom_iv);
        let mut delta_state = state.clone();
        let warm = certify_global_resident(
            &tuned,
            &domain,
            0.001,
            &opts,
            Some(&tuned_pre),
            &mut delta_state,
        )
        .unwrap();

        assert_eq!(
            bits(&cold),
            bits(&warm),
            "delta path changed certified bits"
        );
        assert_eq!(warm.stats.query.cert_failures, 0);
        assert!(
            warm.stats.query.pivots < cold.stats.query.pivots,
            "delta re-certification did not save pivots: warm {} vs cold {}",
            warm.stats.query.pivots,
            cold.stats.query.pivots
        );
        assert!(
            warm.stats.query.cross_query_warm_hits > 0,
            "delta path never used the predecessor's bases: {:?}",
            warm.stats.query
        );
    }

    /// Resident certification is thread-count invariant like the one-shot
    /// path: 4 workers produce the serial bits, with caches intact.
    #[test]
    fn resident_parallel_matches_serial() {
        let net = fig1_affine();
        let domain = [(-1.0, 1.0); 2];
        for threads in [1usize, 4] {
            let opts = CertifyOptions {
                threads,
                ..Default::default()
            };
            let mut state = ResidentState::new();
            let first =
                certify_global_resident(&net, &domain, 0.1, &opts, None, &mut state).unwrap();
            let second =
                certify_global_resident(&net, &domain, 0.1, &opts, None, &mut state).unwrap();
            let cold = certify_global_affine(&net, &domain, 0.1, &opts).unwrap();
            assert_eq!(bits(&cold), bits(&first), "threads = {threads}");
            assert_eq!(bits(&cold), bits(&second), "threads = {threads}");
            assert!(second.stats.query.encoding_cache_hits > 0);
        }
    }
}
