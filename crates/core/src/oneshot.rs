//! One-shot whole-network queries with IBP-seeded relaxation ranges.
//!
//! This is the procedure the paper's §II-D illustrates for "LPR" (and the
//! exact/BTNE variants): relax *every* ReLU using the pre-computed interval
//! ranges, then solve min/max of each output quantity in a single LP/MILP —
//! no layer-by-layer tightening. Algorithm 1 (see [`crate::propagate`]) is
//! usually tighter because it re-derives ranges as it walks; this module
//! exists to reproduce Fig. 4 faithfully and as the simplest exact encoder.

use crate::bounds::TwinBounds;
use crate::encode::{encode_subnet, EncodeOptions, EncodingKind, Relaxation, TargetKind};
use crate::error::CertifyError;
use crate::ibp::ibp_twin;
use crate::interval::Interval;
use crate::query::{lp_relax_x, QueryStats};
use crate::subnet::SubNetwork;
use itne_milp::SolveOptions;
use itne_nn::AffineNetwork;

/// Output ranges from a one-shot whole-network solve.
#[derive(Clone, Debug)]
pub struct OneshotReport {
    /// Certified range of each output `x⁽ⁿ⁾_j`.
    pub x: Vec<Interval>,
    /// Certified range of each output distance `Δx⁽ⁿ⁾_j` (`[0, 0]` for
    /// single-copy runs).
    pub dx: Vec<Interval>,
    /// Work counters.
    pub stats: QueryStats,
}

impl OneshotReport {
    /// `ε̄` per output.
    pub fn epsilons(&self) -> Vec<f64> {
        self.dx.iter().map(|i| i.max_abs()).collect()
    }
}

/// One-shot global robustness query: encodes the full twin network once per
/// output with `kind`/`relax` and IBP ranges, and solves for the output
/// distance ranges.
///
/// # Errors
///
/// See [`CertifyError`].
pub fn oneshot_global(
    aff: &AffineNetwork,
    domain: &[(f64, f64)],
    delta: f64,
    kind: EncodingKind,
    relax: Relaxation,
    refine: usize,
    solver: &SolveOptions,
) -> Result<OneshotReport, CertifyError> {
    if domain.len() != aff.input_dim {
        return Err(CertifyError::InvalidInput(
            "domain/input dimension mismatch".into(),
        ));
    }
    let dom: Vec<Interval> = domain.iter().map(|&(l, h)| Interval::new(l, h)).collect();
    let mut bounds = ibp_twin(aff, &dom, delta);
    if kind == EncodingKind::Btne {
        bounds.decouple_distances();
    }
    Ok(query_outputs(
        aff, &bounds, kind, relax, refine, delta, solver,
    ))
}

/// One-shot local robustness query around `x0`: single-copy encoding over
/// the (optionally domain-clipped) perturbation box. Returns output ranges;
/// `dx` is all-zero.
///
/// # Errors
///
/// See [`CertifyError`].
pub fn oneshot_local(
    aff: &AffineNetwork,
    x0: &[f64],
    delta: f64,
    domain: Option<&[(f64, f64)]>,
    relax: Relaxation,
    refine: usize,
    solver: &SolveOptions,
) -> Result<OneshotReport, CertifyError> {
    if x0.len() != aff.input_dim {
        return Err(CertifyError::InvalidInput(
            "sample/input dimension mismatch".into(),
        ));
    }
    let mut box_: Vec<Interval> = x0
        .iter()
        .map(|&v| Interval::new(v - delta, v + delta))
        .collect();
    if let Some(dom) = domain {
        for (b, &(lo, hi)) in box_.iter_mut().zip(dom) {
            *b = b
                .intersect(Interval::new(lo, hi), 0.0)
                .ok_or_else(|| CertifyError::InvalidInput("sample outside domain".into()))?;
        }
    }
    let bounds = ibp_twin(aff, &box_, 0.0);
    Ok(query_outputs(
        aff,
        &bounds,
        EncodingKind::Single,
        relax,
        refine,
        0.0,
        solver,
    ))
}

fn query_outputs(
    aff: &AffineNetwork,
    bounds: &TwinBounds,
    kind: EncodingKind,
    relax: Relaxation,
    refine: usize,
    delta: f64,
    solver: &SolveOptions,
) -> OneshotReport {
    let last = aff.layers.len() - 1;
    let opts = EncodeOptions {
        kind,
        relax,
        refine,
        y_aware_distance: false,
        delta,
    };
    let mut stats = QueryStats::default();
    let mut xs = Vec::with_capacity(aff.output_dim());
    let mut dxs = Vec::with_capacity(aff.output_dim());
    for j in 0..aff.output_dim() {
        let sub = SubNetwork::decompose(aff, last, j, aff.layers.len());
        let mut enc = encode_subnet(&sub, bounds, TargetKind::PostActivation, &opts);
        let fb_x = bounds.x[last][j];
        let fb_dx = bounds.dx[last][j];
        let check = crate::query::default_check_certificates();
        let (x, dx) = lp_relax_x(&mut enc, fb_x, fb_dx, solver, check, &mut stats);
        xs.push(x);
        dxs.push(dx);
    }
    OneshotReport {
        x: xs,
        dx: dxs,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::fig1_affine;

    const DOM: [(f64, f64); 2] = [(-1.0, 1.0), (-1.0, 1.0)];

    /// The four global rows of Fig. 4 in one place (ITNE values exact to the
    /// paper; BTNE-LPR per the coupled-LP regression — see EXPERIMENTS.md).
    #[test]
    fn fig4_global_oneshot_rows() {
        let aff = fig1_affine();
        let s = SolveOptions::default();

        let exact = oneshot_global(
            &aff,
            &DOM,
            0.1,
            EncodingKind::Itne,
            Relaxation::Exact,
            0,
            &s,
        )
        .unwrap();
        assert!((exact.dx[0].lo + 0.2).abs() < 1e-6 && (exact.dx[0].hi - 0.2).abs() < 1e-6);
        // Exact x⁽²⁾ range [0, 1.25].
        assert!((exact.x[0].hi - 1.25).abs() < 1e-6, "{}", exact.x[0]);

        let itne_lpr =
            oneshot_global(&aff, &DOM, 0.1, EncodingKind::Itne, Relaxation::Lpr, 0, &s).unwrap();
        assert!(
            (itne_lpr.dx[0].hi - 0.275).abs() < 1e-6,
            "{}",
            itne_lpr.dx[0]
        );
        // LPR x̂⁽²⁾ upper 1.44 (well, 1.4375) from Fig. 4.
        assert!(
            (itne_lpr.x[0].hi - 1.4375).abs() < 1e-6,
            "{}",
            itne_lpr.x[0]
        );

        let btne_lpr =
            oneshot_global(&aff, &DOM, 0.1, EncodingKind::Btne, Relaxation::Lpr, 0, &s).unwrap();
        assert!(
            btne_lpr.dx[0].hi > 1.0,
            "BTNE should be loose: {}",
            btne_lpr.dx[0]
        );

        let btne_exact = oneshot_global(
            &aff,
            &DOM,
            0.1,
            EncodingKind::Btne,
            Relaxation::Exact,
            0,
            &s,
        )
        .unwrap();
        assert!(
            (btne_exact.dx[0].hi - 0.2).abs() < 1e-6,
            "{}",
            btne_exact.dx[0]
        );
    }

    /// Fig. 4 local LPR row: x̂⁽²⁾ ∈ [0, 0.144] at x₀ = 0, δ = 0.1.
    #[test]
    fn fig4_local_lpr_row() {
        let aff = fig1_affine();
        let r = oneshot_local(
            &aff,
            &[0.0, 0.0],
            0.1,
            None,
            Relaxation::Lpr,
            0,
            &SolveOptions::default(),
        )
        .unwrap();
        assert!(
            r.x[0].lo.abs() < 1e-6 && (r.x[0].hi - 0.14375).abs() < 1e-6,
            "{}",
            r.x[0]
        );
    }

    /// Refining all neurons turns LPR back into the exact answer.
    #[test]
    fn full_refinement_recovers_exact() {
        let aff = fig1_affine();
        let r = oneshot_global(
            &aff,
            &DOM,
            0.1,
            EncodingKind::Itne,
            Relaxation::Lpr,
            3,
            &SolveOptions::default(),
        )
        .unwrap();
        assert!(
            (r.dx[0].hi - 0.2).abs() < 1e-6 && (r.dx[0].lo + 0.2).abs() < 1e-6,
            "{}",
            r.dx[0]
        );
    }

    /// Partial refinement sits between LPR and exact.
    #[test]
    fn partial_refinement_is_monotone() {
        let aff = fig1_affine();
        let s = SolveOptions::default();
        let e0 = oneshot_global(&aff, &DOM, 0.1, EncodingKind::Itne, Relaxation::Lpr, 0, &s)
            .unwrap()
            .epsilons()[0];
        let e1 = oneshot_global(&aff, &DOM, 0.1, EncodingKind::Itne, Relaxation::Lpr, 1, &s)
            .unwrap()
            .epsilons()[0];
        let e3 = oneshot_global(&aff, &DOM, 0.1, EncodingKind::Itne, Relaxation::Lpr, 3, &s)
            .unwrap()
            .epsilons()[0];
        assert!(
            e0 + 1e-9 >= e1 && e1 + 1e-9 >= e3,
            "not monotone: {e0} {e1} {e3}"
        );
        assert!((e3 - 0.2).abs() < 1e-6);
    }
}
