//! Twin interval bound propagation (IBP).
//!
//! A cheap O(edges) pass that produces sound ranges for every `y`, `x`, `Δy`,
//! `Δx` in the network. The certifier uses it three ways:
//!
//! 1. to seed big-M constants and relaxation ranges before any LP runs;
//! 2. as the sound fallback when an LP solve fails;
//! 3. as the coarsest point on the tightness spectrum in the ablations.

use crate::bounds::TwinBounds;
use crate::interval::{relu_distance_range, Interval};
use itne_nn::AffineNetwork;

/// Propagates the input box `domain` and distance box `[-δ, δ]` through the
/// network with interval arithmetic, including the interleaved distance
/// ranges (`Δy` via the rows' linearity, `Δx` via the tight ReLU-distance
/// corner formula).
///
/// # Panics
///
/// Panics if `domain.len()` differs from the network input dimension.
pub fn ibp_twin(net: &AffineNetwork, domain: &[Interval], delta: f64) -> TwinBounds {
    assert_eq!(
        domain.len(),
        net.input_dim,
        "domain/input dimension mismatch"
    );
    let dinput = vec![Interval::symmetric(delta); net.input_dim];
    let mut b = TwinBounds::empty_like(net, domain.to_vec(), dinput);

    for i in 0..net.layers.len() {
        let relu = net.layers[i].relu;
        // Split borrows: read layer i-1 (or input), write layer i.
        let (x_prev, dx_prev): (Vec<Interval>, Vec<Interval>) =
            (b.x_in(i).to_vec(), b.dx_in(i).to_vec());
        for (j, row) in net.layers[i].rows.iter().enumerate() {
            let mut y = Interval::point(row.bias);
            let mut dy = Interval::point(0.0);
            for &(k, c) in &row.terms {
                y = y.add(x_prev[k].scale(c));
                dy = dy.add(dx_prev[k].scale(c));
            }
            let (x, dx) = if relu {
                (y.relu(), relu_distance_range(y, dy))
            } else {
                (y, dy)
            };
            b.y[i][j] = y;
            b.dy[i][j] = dy;
            b.x[i][j] = x;
            b.dx[i][j] = dx;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::fig1_affine;

    /// The paper's §II-D numbers: X = [-1,1]², δ = 0.1 gives
    /// y⁽¹⁾ ∈ [-1.5, 1.5], Δy⁽¹⁾ ∈ [-0.15, 0.15], Δy⁽²⁾ ∈ [-0.3, 0.3].
    #[test]
    fn fig1_ibp_matches_paper_ranges() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let b = ibp_twin(&net, &domain, 0.1);

        let close = |a: Interval, b: Interval| {
            assert!(
                (a.lo - b.lo).abs() < 1e-12 && (a.hi - b.hi).abs() < 1e-12,
                "{a} vs {b}"
            );
        };
        for j in 0..2 {
            close(b.y[0][j], Interval::new(-1.5, 1.5));
            close(b.dy[0][j], Interval::new(-0.15, 0.15));
            close(b.x[0][j], Interval::new(0.0, 1.5));
            close(b.dx[0][j], Interval::new(-0.15, 0.15));
        }
        close(b.y[1][0], Interval::new(-1.5, 1.5));
        close(b.dy[1][0], Interval::new(-0.3, 0.3));
        close(b.dx[1][0], Interval::new(-0.3, 0.3));
        assert!((b.epsilons()[0] - 0.3).abs() < 1e-12);
    }

    /// IBP must contain the values of any concrete twin execution.
    #[test]
    fn ibp_is_sound_on_random_points() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let delta = 0.1;
        let b = ibp_twin(&net, &domain, delta);

        let mut s = 0x12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..500 {
            let x = [next() * 2.0 - 1.0, next() * 2.0 - 1.0];
            let p = [(next() * 2.0 - 1.0) * delta, (next() * 2.0 - 1.0) * delta];
            let xh = [
                (x[0] + p[0]).clamp(-1.0, 1.0),
                (x[1] + p[1]).clamp(-1.0, 1.0),
            ];
            // Forward both copies layer by layer, checking containment.
            let mut a = x.to_vec();
            let mut ah = xh.to_vec();
            for i in 0..net.layers.len() {
                let mut na = Vec::new();
                let mut nah = Vec::new();
                for (j, row) in net.layers[i].rows.iter().enumerate() {
                    let y = row.eval(&a);
                    let yh = row.eval(&ah);
                    assert!(b.y[i][j].contains(y, 1e-9));
                    assert!(b.dy[i][j].contains(yh - y, 1e-9));
                    let (xv, xvh) = if net.layers[i].relu {
                        (y.max(0.0), yh.max(0.0))
                    } else {
                        (y, yh)
                    };
                    assert!(b.x[i][j].contains(xv, 1e-9));
                    assert!(b.dx[i][j].contains(xvh - xv, 1e-9));
                    na.push(xv);
                    nah.push(xvh);
                }
                a = na;
                ah = nah;
            }
        }
    }
}
