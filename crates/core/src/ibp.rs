//! Twin interval bound propagation (IBP).
//!
//! A cheap O(edges) pass that produces sound ranges for every `y`, `x`, `Δy`,
//! `Δx` in the network. The certifier uses it three ways:
//!
//! 1. to seed big-M constants and relaxation ranges before any LP runs;
//! 2. as the sound fallback when an LP solve fails;
//! 3. as the coarsest point on the tightness spectrum in the ablations.

use crate::bounds::TwinBounds;
use crate::interval::{relu_distance_range, Interval};
use itne_nn::AffineNetwork;

/// The δ-independent half of the twin IBP pass: per-layer value ranges
/// `y⁽ⁱ⁾`, `x⁽ⁱ⁾` under the input box alone. In [`ibp_twin`]'s recurrence the
/// value chain never reads a distance interval, so it can be computed once
/// per `(network, domain)` and reused across every perturbation bound δ —
/// this is what the resident engine's model registry caches at registration
/// time.
#[derive(Clone, Debug, PartialEq)]
pub struct ValuePreBounds {
    /// Pre-activation value ranges, `y[i][j]`.
    pub y: Vec<Vec<Interval>>,
    /// Post-activation value ranges, `x[i][j]`.
    pub x: Vec<Vec<Interval>>,
}

/// Computes the δ-independent value pre-bounds of `net` over `domain`
/// (see [`ValuePreBounds`]). Bit-identical to the `y`/`x` planes that
/// [`ibp_twin`] produces — the latter is now literally this pass followed by
/// the distance pass.
///
/// # Panics
///
/// Panics if `domain.len()` differs from the network input dimension.
pub fn ibp_values(net: &AffineNetwork, domain: &[Interval]) -> ValuePreBounds {
    assert_eq!(
        domain.len(),
        net.input_dim,
        "domain/input dimension mismatch"
    );
    let mut pre = ValuePreBounds {
        y: Vec::with_capacity(net.layers.len()),
        x: Vec::with_capacity(net.layers.len()),
    };
    for i in 0..net.layers.len() {
        let relu = net.layers[i].relu;
        let x_prev: &[Interval] = if i == 0 { domain } else { &pre.x[i - 1] };
        let mut ys = Vec::with_capacity(net.layers[i].rows.len());
        let mut xs = Vec::with_capacity(net.layers[i].rows.len());
        for row in &net.layers[i].rows {
            let mut y = Interval::point(row.bias);
            for &(k, c) in &row.terms {
                y = y.add(x_prev[k].scale(c));
            }
            xs.push(if relu { y.relu() } else { y });
            ys.push(y);
        }
        pre.y.push(ys);
        pre.x.push(xs);
    }
    pre
}

/// Propagates the input box `domain` and distance box `[-δ, δ]` through the
/// network with interval arithmetic, including the interleaved distance
/// ranges (`Δy` via the rows' linearity, `Δx` via the tight ReLU-distance
/// corner formula).
///
/// # Panics
///
/// Panics if `domain.len()` differs from the network input dimension.
pub fn ibp_twin(net: &AffineNetwork, domain: &[Interval], delta: f64) -> TwinBounds {
    let pre = ibp_values(net, domain);
    ibp_twin_from_values(net, domain, delta, &pre)
}

/// [`ibp_twin`] with the δ-independent value half supplied by the caller:
/// runs only the distance recurrence (`Δy` from the previous layer's `Δx`,
/// `Δx` via the ReLU-distance corner formula against the cached `y`).
/// With `pre = ibp_values(net, domain)` this is bit-identical to
/// [`ibp_twin`]; supplying pre-bounds computed for a *different* network or
/// domain is a caller bug and yields unsound results.
///
/// # Panics
///
/// Panics if `domain.len()` differs from the network input dimension or
/// `pre` is shaped unlike `net`.
pub fn ibp_twin_from_values(
    net: &AffineNetwork,
    domain: &[Interval],
    delta: f64,
    pre: &ValuePreBounds,
) -> TwinBounds {
    assert_eq!(
        domain.len(),
        net.input_dim,
        "domain/input dimension mismatch"
    );
    assert_eq!(pre.y.len(), net.layers.len(), "pre-bounds/network mismatch");
    let dinput = vec![Interval::symmetric(delta); net.input_dim];
    let mut b = TwinBounds::empty_like(net, domain.to_vec(), dinput);

    for i in 0..net.layers.len() {
        let relu = net.layers[i].relu;
        assert_eq!(
            pre.y[i].len(),
            net.layers[i].width(),
            "pre-bounds/network mismatch"
        );
        // Split borrows: read layer i-1 (or input), write layer i.
        let dx_prev: Vec<Interval> = b.dx_in(i).to_vec();
        for (j, row) in net.layers[i].rows.iter().enumerate() {
            let y = pre.y[i][j];
            let mut dy = Interval::point(0.0);
            for &(k, c) in &row.terms {
                dy = dy.add(dx_prev[k].scale(c));
            }
            let (x, dx) = if relu {
                (pre.x[i][j], relu_distance_range(y, dy))
            } else {
                (pre.x[i][j], dy)
            };
            b.y[i][j] = y;
            b.dy[i][j] = dy;
            b.x[i][j] = x;
            b.dx[i][j] = dx;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::fig1_affine;

    /// The paper's §II-D numbers: X = [-1,1]², δ = 0.1 gives
    /// y⁽¹⁾ ∈ [-1.5, 1.5], Δy⁽¹⁾ ∈ [-0.15, 0.15], Δy⁽²⁾ ∈ [-0.3, 0.3].
    #[test]
    fn fig1_ibp_matches_paper_ranges() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let b = ibp_twin(&net, &domain, 0.1);

        let close = |a: Interval, b: Interval| {
            assert!(
                (a.lo - b.lo).abs() < 1e-12 && (a.hi - b.hi).abs() < 1e-12,
                "{a} vs {b}"
            );
        };
        for j in 0..2 {
            close(b.y[0][j], Interval::new(-1.5, 1.5));
            close(b.dy[0][j], Interval::new(-0.15, 0.15));
            close(b.x[0][j], Interval::new(0.0, 1.5));
            close(b.dx[0][j], Interval::new(-0.15, 0.15));
        }
        close(b.y[1][0], Interval::new(-1.5, 1.5));
        close(b.dy[1][0], Interval::new(-0.3, 0.3));
        close(b.dx[1][0], Interval::new(-0.3, 0.3));
        assert!((b.epsilons()[0] - 0.3).abs() < 1e-12);
    }

    /// The split passes (cached δ-independent values + distance recurrence)
    /// must reproduce the original single-pass recurrence bit-for-bit: the
    /// registry serves `ValuePreBounds` computed once to every δ-query.
    #[test]
    fn value_prebound_split_is_bitwise_identical() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        // The historical one-pass recurrence, kept inline as the reference.
        let one_pass = |delta: f64| {
            let dinput = vec![Interval::symmetric(delta); net.input_dim];
            let mut b = TwinBounds::empty_like(&net, domain.clone(), dinput);
            for i in 0..net.layers.len() {
                let relu = net.layers[i].relu;
                let (x_prev, dx_prev): (Vec<Interval>, Vec<Interval>) =
                    (b.x_in(i).to_vec(), b.dx_in(i).to_vec());
                for (j, row) in net.layers[i].rows.iter().enumerate() {
                    let mut y = Interval::point(row.bias);
                    let mut dy = Interval::point(0.0);
                    for &(k, c) in &row.terms {
                        y = y.add(x_prev[k].scale(c));
                        dy = dy.add(dx_prev[k].scale(c));
                    }
                    let (x, dx) = if relu {
                        (y.relu(), relu_distance_range(y, dy))
                    } else {
                        (y, dy)
                    };
                    b.y[i][j] = y;
                    b.dy[i][j] = dy;
                    b.x[i][j] = x;
                    b.dx[i][j] = dx;
                }
            }
            b
        };
        let pre = ibp_values(&net, &domain);
        let bits = |v: &Vec<Vec<Interval>>| -> Vec<(u64, u64)> {
            v.iter()
                .flatten()
                .map(|i| (i.lo.to_bits(), i.hi.to_bits()))
                .collect()
        };
        for delta in [0.0, 1e-6, 0.05, 0.1, 0.73] {
            let split = ibp_twin_from_values(&net, &domain, delta, &pre);
            let reference = one_pass(delta);
            assert_eq!(
                bits(&split.y),
                bits(&reference.y),
                "y diverged at δ={delta}"
            );
            assert_eq!(
                bits(&split.dy),
                bits(&reference.dy),
                "dy diverged at δ={delta}"
            );
            assert_eq!(
                bits(&split.x),
                bits(&reference.x),
                "x diverged at δ={delta}"
            );
            assert_eq!(
                bits(&split.dx),
                bits(&reference.dx),
                "dx diverged at δ={delta}"
            );
            // And the public entry point is the same composition.
            assert_eq!(ibp_twin(&net, &domain, delta), reference);
        }
    }

    /// IBP must contain the values of any concrete twin execution.
    #[test]
    fn ibp_is_sound_on_random_points() {
        let net = fig1_affine();
        let domain = vec![Interval::new(-1.0, 1.0); 2];
        let delta = 0.1;
        let b = ibp_twin(&net, &domain, delta);

        let mut s = 0x12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..500 {
            let x = [next() * 2.0 - 1.0, next() * 2.0 - 1.0];
            let p = [(next() * 2.0 - 1.0) * delta, (next() * 2.0 - 1.0) * delta];
            let xh = [
                (x[0] + p[0]).clamp(-1.0, 1.0),
                (x[1] + p[1]).clamp(-1.0, 1.0),
            ];
            // Forward both copies layer by layer, checking containment.
            let mut a = x.to_vec();
            let mut ah = xh.to_vec();
            for i in 0..net.layers.len() {
                let mut na = Vec::new();
                let mut nah = Vec::new();
                for (j, row) in net.layers[i].rows.iter().enumerate() {
                    let y = row.eval(&a);
                    let yh = row.eval(&ah);
                    assert!(b.y[i][j].contains(y, 1e-9));
                    assert!(b.dy[i][j].contains(yh - y, 1e-9));
                    let (xv, xvh) = if net.layers[i].relu {
                        (y.max(0.0), yh.max(0.0))
                    } else {
                        (y, yh)
                    };
                    assert!(b.x[i][j].contains(xv, 1e-9));
                    assert!(b.dx[i][j].contains(xvh - xv, 1e-9));
                    na.push(xv);
                    nah.push(xvh);
                }
                a = na;
                ah = nah;
            }
        }
    }
}
