//! A Reluplex-style exact global robustness solver.
//!
//! The paper's `tR` baseline is Reluplex/Marabou: a simplex core extended
//! with lazy ReLU case splitting. This module reproduces that algorithmic
//! family: solve an LP relaxation of the twin network, and while the LP
//! optimum violates some ReLU's exact semantics, split that ReLU's phase
//! (pre-activation sign) and recurse — pruning branches whose relaxation
//! bound cannot beat the incumbent. Leaves have phase-fixed (hence linear)
//! activations, so their LP optima are exact.
//!
//! Independent from the MILP baseline (`exact_global`), which makes it a
//! genuine cross-check: both must agree to solver tolerance.

use crate::error::CertifyError;
use crate::ibp::ibp_twin;
use crate::interval::Interval;
use itne_milp::{Cmp, Model, Sense, SolveOptions, StopWhen, VarId};
use itne_nn::{AffineNetwork, Network};
use std::time::Instant;

/// Result of a [`split_global`] run.
#[derive(Clone, Debug)]
pub struct SplitReport {
    /// Per-output `ε`. Exact when [`SplitReport::exact`], otherwise a sound
    /// upper bound from the unexplored frontier.
    pub epsilons: Vec<f64>,
    /// Whether the search ran to completion.
    pub exact: bool,
    /// Total splitting nodes explored.
    pub nodes: u64,
    /// Total LP solves.
    pub lps: u64,
}

/// Limits for the splitting search.
#[derive(Clone, Debug)]
pub struct SplitOptions {
    /// LP solver settings.
    pub solver: SolveOptions,
    /// Node budget across all objectives.
    pub max_nodes: u64,
    /// Wall-clock deadline, polled through the audited
    /// [`crate::deadline::stop_at`] site.
    pub deadline: Option<Instant>,
}

impl Default for SplitOptions {
    fn default() -> Self {
        SplitOptions {
            solver: SolveOptions::default(),
            max_nodes: 2_000_000,
            deadline: None,
        }
    }
}

/// Computes the exact global robustness `ε` per output by lazy ReLU
/// splitting over the twin network.
///
/// # Errors
///
/// See [`CertifyError`].
pub fn split_global(
    net: &Network,
    domain: &[(f64, f64)],
    delta: f64,
    opts: &SplitOptions,
) -> Result<SplitReport, CertifyError> {
    let aff = AffineNetwork::from_network(net)?;
    split_global_affine(&aff, domain, delta, opts)
}

/// [`split_global`] on an already-lowered network.
///
/// # Errors
///
/// See [`CertifyError`].
pub fn split_global_affine(
    aff: &AffineNetwork,
    domain: &[(f64, f64)],
    delta: f64,
    opts: &SplitOptions,
) -> Result<SplitReport, CertifyError> {
    if domain.len() != aff.input_dim {
        return Err(CertifyError::InvalidInput(
            "domain/input dimension mismatch".into(),
        ));
    }
    if delta.is_nan() || delta < 0.0 {
        return Err(CertifyError::InvalidInput("delta must be ≥ 0".into()));
    }
    let dom: Vec<Interval> = domain.iter().map(|&(l, h)| Interval::new(l, h)).collect();
    let seed = ibp_twin(aff, &dom, delta);
    // Marginal pre-activation ranges; both copies share them initially.
    let base: Vec<Vec<Interval>> = seed.y.clone();

    let mut report = SplitReport {
        epsilons: vec![0.0; aff.output_dim()],
        exact: true,
        nodes: 0,
        lps: 0,
    };
    let out_dx = seed.dx.last().expect("network has layers");
    for (j, odx) in out_dx.iter().enumerate().take(aff.output_dim()) {
        for sense in [Sense::Maximize, Sense::Minimize] {
            // Root optimism: the IBP distance bound keeps frontier bounds
            // finite even under a zero budget.
            let root_bound = match sense {
                Sense::Maximize => odx.hi,
                Sense::Minimize => -odx.lo,
            };
            let (bound, complete) = split_search(
                aff,
                &dom,
                delta,
                &base,
                j,
                sense,
                root_bound,
                opts,
                &mut report,
            )?;
            let magnitude = match sense {
                Sense::Maximize => bound,
                Sense::Minimize => -bound,
            };
            report.epsilons[j] = report.epsilons[j].max(magnitude.max(0.0));
            report.exact &= complete;
        }
    }
    Ok(report)
}

struct Node {
    ya: Vec<Vec<Interval>>,
    yb: Vec<Vec<Interval>>,
    /// Parent's LP bound (optimistic for this node).
    bound: f64,
}

/// Branch-and-bound search for one directed objective. Returns
/// `(sound bound, ran to completion)`.
#[allow(clippy::too_many_arguments)]
fn split_search(
    aff: &AffineNetwork,
    dom: &[Interval],
    delta: f64,
    base: &[Vec<Interval>],
    out_j: usize,
    sense: Sense,
    root_bound: f64,
    opts: &SplitOptions,
    report: &mut SplitReport,
) -> Result<(f64, bool), CertifyError> {
    let sign = match sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    // Work in "maximize sign·Δ" form throughout.
    let stop = opts.deadline.map(crate::deadline::stop_at);
    let mut incumbent = f64::NEG_INFINITY;
    let mut stack = vec![Node {
        ya: base.to_vec(),
        yb: base.to_vec(),
        bound: root_bound,
    }];
    let mut complete = true;

    while let Some(node) = stack.pop() {
        if node.bound <= incumbent + 1e-9 {
            continue;
        }
        if report.nodes >= opts.max_nodes || stop.as_ref().is_some_and(StopWhen::should_stop) {
            // Unexplored frontier: its bounds stay valid upper bounds.
            incumbent = incumbent.max(node.bound);
            for n in &stack {
                incumbent = incumbent.max(n.bound);
            }
            complete = false;
            break;
        }
        report.nodes += 1;

        let (mut model, vars) = encode_node(aff, dom, delta, &node);
        let t = &vars[vars.len() - 1][out_j];
        let obj = sign * t.xb - sign * t.xa;
        model.set_objective(Sense::Maximize, obj);
        report.lps += 1;
        let sol = match model.solve_with(&opts.solver) {
            Ok(s) => s,
            Err(itne_milp::SolveError::Infeasible) => continue,
            Err(_) => {
                // Numerical trouble: keep soundness by treating this branch
                // as unresolved at its parent bound.
                incumbent = incumbent.max(node.bound);
                complete = false;
                continue;
            }
        };
        if sol.objective <= incumbent + 1e-9 {
            continue;
        }

        // Find the worst ReLU violation in either copy at the LP optimum.
        let mut worst: Option<(usize, usize, bool, f64)> = None; // (layer, j, is_b, gap)
        for (li, layer) in aff.layers.iter().enumerate() {
            if !layer.relu {
                continue;
            }
            for (jj, v) in vars[li + 1].iter().enumerate().take(layer.width()) {
                for (is_b, yv, xv) in [
                    (false, sol.value(v.ya), sol.value(v.xa)),
                    (true, sol.value(v.yb), sol.value(v.xb)),
                ] {
                    let gap = (xv - yv.max(0.0)).abs();
                    if gap > 1e-7 && worst.is_none_or(|(_, _, _, g)| gap > g) {
                        worst = Some((li, jj, is_b, gap));
                    }
                }
            }
        }

        match worst {
            None => {
                // LP optimum satisfies every exact ReLU: a feasible pair.
                incumbent = incumbent.max(sol.objective);
            }
            Some((li, jj, is_b, _)) => {
                let r = if is_b {
                    node.yb[li][jj]
                } else {
                    node.ya[li][jj]
                };
                // Two children: phase fixed non-negative / non-positive.
                for half in [Interval::new(r.lo, 0.0), Interval::new(0.0, r.hi)] {
                    let mut child = Node {
                        ya: node.ya.clone(),
                        yb: node.yb.clone(),
                        bound: sol.objective,
                    };
                    if is_b {
                        child.yb[li][jj] = half;
                    } else {
                        child.ya[li][jj] = half;
                    }
                    stack.push(child);
                }
            }
        }
    }
    Ok((incumbent, complete))
}

#[derive(Copy, Clone)]
struct TwinVars {
    ya: VarId,
    yb: VarId,
    xa: VarId,
    xb: VarId,
}

/// Encodes a node: the twin network with per-copy phase ranges; unstable
/// ReLUs triangle-relaxed, phase-fixed ones linear.
fn encode_node(
    aff: &AffineNetwork,
    dom: &[Interval],
    delta: f64,
    node: &Node,
) -> (Model, Vec<Vec<TwinVars>>) {
    let mut m = Model::new();
    let mut vars: Vec<Vec<TwinVars>> = Vec::with_capacity(aff.layers.len() + 1);

    // Inputs: x ∈ X, x̂ ∈ X, ‖x̂ − x‖∞ ≤ δ.
    let mut level = Vec::with_capacity(aff.input_dim);
    for d in dom {
        let xa = m.add_var(d.lo, d.hi);
        let xb = m.add_var(d.lo, d.hi);
        m.add_constraint(xb - xa, Cmp::Le, delta);
        m.add_constraint(xb - xa, Cmp::Ge, -delta);
        // Inputs are their own "activations".
        level.push(TwinVars {
            ya: xa,
            yb: xb,
            xa,
            xb,
        });
    }
    vars.push(level);

    for (li, layer) in aff.layers.iter().enumerate() {
        let mut level = Vec::with_capacity(layer.width());
        for (jj, row) in layer.rows.iter().enumerate() {
            let ra = node.ya[li][jj];
            let rb = node.yb[li][jj];
            let ya = m.add_var(ra.lo - 1e-9, ra.hi + 1e-9);
            let yb = m.add_var(rb.lo - 1e-9, rb.hi + 1e-9);
            let mut ea = (1.0 * ya).compact();
            let mut eb = (1.0 * yb).compact();
            for &(p, c) in &row.terms {
                ea.add_term(vars[li][p].xa, -c);
                eb.add_term(vars[li][p].xb, -c);
            }
            m.add_constraint(ea, Cmp::Eq, row.bias);
            m.add_constraint(eb, Cmp::Eq, row.bias);

            let (xa, xb) = if layer.relu {
                let xa = m.add_var(0.0, ra.hi.max(0.0) + 1e-9);
                let xb = m.add_var(0.0, rb.hi.max(0.0) + 1e-9);
                encode_phase_relu(&mut m, xa, ya, ra);
                encode_phase_relu(&mut m, xb, yb, rb);
                (xa, xb)
            } else {
                (ya, yb)
            };
            level.push(TwinVars { ya, yb, xa, xb });
        }
        vars.push(level);
    }
    (m, vars)
}

fn encode_phase_relu(m: &mut Model, x: VarId, y: VarId, r: Interval) {
    if r.lo >= 0.0 {
        m.add_constraint(x - y, Cmp::Eq, 0.0);
    } else if r.hi <= 0.0 {
        m.set_bounds(x, 0.0, 0.0);
    } else {
        m.add_constraint(x - y, Cmp::Ge, 0.0);
        // Triangle chord over the node's phase range.
        let s = r.hi - r.lo;
        m.add_constraint(s * x - r.hi * y, Cmp::Le, -r.hi * r.lo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::fig1_network;

    /// The splitting solver reproduces the exact Fig. 4 value ε = 0.2 and
    /// agrees with the MILP baseline.
    #[test]
    fn fig1_split_matches_exact() {
        let net = fig1_network();
        let r = split_global(
            &net,
            &[(-1.0, 1.0), (-1.0, 1.0)],
            0.1,
            &SplitOptions::default(),
        )
        .unwrap();
        assert!(r.exact);
        assert!((r.epsilons[0] - 0.2).abs() < 1e-5, "ε = {}", r.epsilons[0]);
        let milp = crate::exact_global(
            &net,
            &[(-1.0, 1.0), (-1.0, 1.0)],
            0.1,
            SolveOptions::default(),
        )
        .unwrap();
        assert!((r.epsilons[0] - milp.epsilon(0)).abs() < 1e-5);
    }

    /// With a zero node budget the result degrades to a sound over-bound.
    #[test]
    fn budget_exhaustion_stays_sound() {
        let net = fig1_network();
        let r = split_global(
            &net,
            &[(-1.0, 1.0), (-1.0, 1.0)],
            0.1,
            &SplitOptions {
                max_nodes: 0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!r.exact);
        assert!(
            r.epsilons[0] >= 0.2 - 1e-9,
            "bound {} not sound",
            r.epsilons[0]
        );
    }
}
