//! Perspective camera renderer — the offline stand-in for the Webots scene.
//!
//! The case study's ego vehicle carries a forward camera watching a reference
//! vehicle; a DNN estimates the distance from the image. The paper captures
//! 24×48 RGB images in Webots. This renderer reproduces the relevant
//! structure deterministically: a road/sky background, a lead-vehicle body
//! whose apparent size scales like `1/distance` (pinhole model), lateral
//! drift, lighting variation, and pixel noise. Grayscale 12×24 by default so
//! the perception network stays within reach of the from-scratch LP solver
//! (see DESIGN.md substitutions).

use crate::rng_from;
use itne_nn::train::Dataset;
use rand::RngExt;

/// Camera geometry and scene parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CameraSpec {
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Pinhole scale: apparent vehicle height = `focal / distance` pixels.
    pub focal: f64,
    /// Vehicle width/height ratio.
    pub aspect: f64,
    /// Minimum distance the scene supports.
    pub min_distance: f64,
    /// Maximum distance the scene supports.
    pub max_distance: f64,
}

impl Default for CameraSpec {
    fn default() -> Self {
        CameraSpec {
            height: 12,
            width: 24,
            focal: 3.5,
            aspect: 1.8,
            min_distance: 0.5,
            max_distance: 1.9,
        }
    }
}

impl CameraSpec {
    /// Flat image dimension.
    pub fn pixels(&self) -> usize {
        self.height * self.width
    }
}

/// Renders one scene. `lateral ∈ [-1, 1]` drifts the lead vehicle across the
/// lane, `brightness ∈ [0.8, 1.2]` scales scene lighting; `noise` is the
/// per-pixel uniform noise amplitude.
///
/// Returns `height·width` grayscale values in `[0, 1]`, row-major.
pub fn render_scene(
    spec: &CameraSpec,
    distance: f64,
    lateral: f64,
    brightness: f64,
    noise: f64,
    rng: &mut rand::rngs::StdRng,
) -> Vec<f64> {
    let (h, w) = (spec.height, spec.width);
    let mut img = vec![0.0f64; h * w];
    let horizon = h as f64 * 0.42;

    // Background: sky above the horizon, road below (darker with distance).
    for y in 0..h {
        for x in 0..w {
            let v = if (y as f64) < horizon {
                0.75
            } else {
                0.30 + 0.10 * ((y as f64 - horizon) / (h as f64 - horizon))
            };
            img[y * w + x] = v;
        }
    }

    // Lead vehicle: rectangle sitting on the road, scaled by distance.
    // Anti-aliased edges (analytic pixel coverage) keep the image a smooth
    // function of distance — sub-pixel size changes at the far range stay
    // observable, as they would be in a real sensor's irradiance.
    let app_h = (spec.focal / distance).min(h as f64 * 0.95);
    let app_w = (app_h * spec.aspect).min(w as f64 * 0.95);
    let bottom = (horizon + spec.focal * 0.9 / distance).min(h as f64 - 0.25);
    let cx = w as f64 / 2.0 + lateral * w as f64 * 0.12;
    let y0 = (bottom - app_h).max(0.0);
    let (x0, x1) = (cx - app_w / 2.0, cx + app_w / 2.0);

    // Coverage of [lo, hi] within the unit pixel [p, p+1].
    let overlap =
        |p: f64, lo: f64, hi: f64| -> f64 { (hi.min(p + 1.0) - lo.max(p)).clamp(0.0, 1.0) };
    for y in 0..h {
        let cy = overlap(y as f64, y0, bottom);
        if cy <= 0.0 {
            continue;
        }
        for x in 0..w {
            let cxv = overlap(x as f64, x0, x1);
            if cxv <= 0.0 {
                continue;
            }
            // Body dark, roof-line lighter, brake band near the bottom.
            let rel_y = (y as f64 + 0.5 - y0) / (bottom - y0).max(1e-9);
            let body = if rel_y < 0.25 {
                0.55
            } else if rel_y > 0.8 {
                0.20
            } else {
                0.12
            };
            let cover = cy * cxv;
            let p = &mut img[y * w + x];
            *p = *p * (1.0 - cover) + body * cover;
        }
    }

    // Lighting and sensor noise.
    for p in &mut img {
        let n = if noise > 0.0 {
            rng.random_range(-noise..noise)
        } else {
            0.0
        };
        *p = (*p * brightness + n).clamp(0.0, 1.0);
    }
    img
}

/// Generates `n` labelled `(image, distance)` pairs with distances uniform in
/// `[spec.min_distance, spec.max_distance]` and randomized lateral drift,
/// lighting, and noise — the stand-in for the paper's 100k pre-captured
/// Webots images.
pub fn camera_dataset(spec: &CameraSpec, n: usize, seed: u64) -> Dataset {
    let mut rng = rng_from(seed ^ 0xcau64.rotate_left(41));
    let mut inputs = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        let d = rng.random_range(spec.min_distance..spec.max_distance);
        let lateral = rng.random_range(-0.5..0.5);
        let brightness = rng.random_range(0.95..1.05);
        let img = render_scene(spec, d, lateral, brightness, 0.015, &mut rng);
        inputs.push(img);
        targets.push(vec![d]);
    }
    Dataset { inputs, targets }
}

/// Per-pixel `(min, max)` bounds over a dataset — the paper's Fig. 5 (c)/(d)
/// "lower/upper bound of the DNN input space", which defines the input
/// domain `X` for global robustness certification.
pub fn pixel_bounds(data: &Dataset) -> Vec<(f64, f64)> {
    assert!(!data.is_empty(), "need at least one image");
    let dim = data.inputs[0].len();
    let mut bounds = vec![(f64::INFINITY, f64::NEG_INFINITY); dim];
    for img in &data.inputs {
        for (b, &p) in bounds.iter_mut().zip(img) {
            b.0 = b.0.min(p);
            b.1 = b.1.max(p);
        }
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearer_vehicles_look_bigger() {
        let spec = CameraSpec::default();
        let mut rng = crate::rng_from(1);
        let near = render_scene(&spec, 0.6, 0.0, 1.0, 0.0, &mut rng);
        let far = render_scene(&spec, 1.8, 0.0, 1.0, 0.0, &mut rng);
        // Count dark "vehicle body" pixels.
        let dark = |img: &[f64]| img.iter().filter(|&&p| p < 0.25).count();
        assert!(
            dark(&near) > 2 * dark(&far),
            "near {} vs far {}",
            dark(&near),
            dark(&far)
        );
    }

    #[test]
    fn dataset_is_deterministic_with_bounded_targets() {
        let spec = CameraSpec::default();
        let a = camera_dataset(&spec, 20, 4);
        let b = camera_dataset(&spec, 20, 4);
        assert_eq!(a.inputs, b.inputs);
        for t in &a.targets {
            assert!(t[0] >= spec.min_distance && t[0] <= spec.max_distance);
        }
        for img in &a.inputs {
            assert_eq!(img.len(), spec.pixels());
            assert!(img.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn pixel_bounds_bracket_every_image() {
        let spec = CameraSpec::default();
        let d = camera_dataset(&spec, 30, 9);
        let bounds = pixel_bounds(&d);
        for img in &d.inputs {
            for (&p, &(lo, hi)) in img.iter().zip(&bounds) {
                assert!(p >= lo && p <= hi);
            }
        }
        // The domain must be a proper subset of [0,1]^dim somewhere (sky
        // pixels never go fully dark).
        assert!(bounds.iter().any(|&(lo, hi)| lo > 0.05 || hi < 0.95));
    }

    #[test]
    fn lateral_drift_moves_the_vehicle() {
        let spec = CameraSpec::default();
        let mut rng = crate::rng_from(2);
        let left = render_scene(&spec, 1.0, -1.0, 1.0, 0.0, &mut rng);
        let right = render_scene(&spec, 1.0, 1.0, 1.0, 0.0, &mut rng);
        assert_ne!(left, right);
    }
}
