//! Synthetic datasets for the ITNE experiments.
//!
//! The paper evaluates on the UCI Auto MPG dataset, MNIST, and camera images
//! captured in the Webots simulator — none of which are available offline.
//! Certification depends only on the trained weights, not on data provenance,
//! so this crate generates deterministic synthetic stand-ins with the same
//! shape:
//!
//! * [`auto_mpg`] — a 7-feature vehicle fuel-economy regression problem with
//!   correlated features and a nonlinear ground truth;
//! * [`digits`] — a 10-class procedural digit-image classification problem
//!   (glyphs rendered with jitter, scale and noise);
//! * [`camera`] — a perspective renderer producing the lead-vehicle camera
//!   images of the control case study, labelled with ground-truth distance.
//!
//! Every generator takes a seed and is bit-reproducible.

#![forbid(unsafe_code)]

pub mod auto_mpg;
pub mod camera;
pub mod digits;

pub use auto_mpg::auto_mpg;
pub use camera::{camera_dataset, pixel_bounds, render_scene, CameraSpec};
pub use digits::{digits, render_digit};

use itne_nn::train::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Splits a dataset into `(train, test)` with the first `ratio` fraction used
/// for training (generators already shuffle, so a prefix split is unbiased).
///
/// # Panics
///
/// Panics unless `0 < ratio < 1`.
pub fn split(data: &Dataset, ratio: f64) -> (Dataset, Dataset) {
    assert!(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1)");
    let k = ((data.len() as f64) * ratio).round() as usize;
    let k = k.clamp(1, data.len().saturating_sub(1));
    (
        Dataset {
            inputs: data.inputs[..k].to_vec(),
            targets: data.targets[..k].to_vec(),
        },
        Dataset {
            inputs: data.inputs[k..].to_vec(),
            targets: data.targets[k..].to_vec(),
        },
    )
}

pub(crate) fn rng_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_respects_ratio() {
        let d = auto_mpg(100, 0);
        let (tr, te) = split(&d, 0.8);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
    }
}
