//! Synthetic Auto-MPG-like regression data.
//!
//! The UCI Auto MPG dataset (the paper's small-network benchmark) maps seven
//! vehicle attributes to fuel economy. This generator reproduces its shape:
//! correlated physical features driven by a latent "vehicle size" factor, a
//! smooth nonlinear ground-truth efficiency, and measurement noise. All
//! features and the target are normalized to `[0, 1]`, matching the paper's
//! use of a normalized input domain `X = [0, 1]^7` with perturbation bound
//! `δ = 0.001`.

use crate::rng_from;
use itne_nn::train::Dataset;
use rand::RngExt;

/// Feature names, in input order.
pub const FEATURES: [&str; 7] = [
    "cylinders",
    "displacement",
    "horsepower",
    "weight",
    "acceleration",
    "model_year",
    "origin",
];

/// Number of input features.
pub const NUM_FEATURES: usize = 7;

/// Generates `n` examples of the synthetic fuel-economy task, seeded
/// deterministically. Inputs are `[0, 1]^7`, targets `[0, 1]^1`.
pub fn auto_mpg(n: usize, seed: u64) -> Dataset {
    let mut rng = rng_from(seed ^ 0xau64.rotate_left(17));
    let mut inputs = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        // Latent size factor: big engines → heavy, powerful, thirsty cars.
        let size: f64 = rng.random_range(0.0..1.0);
        let jitter = |rng: &mut rand::rngs::StdRng, amt: f64| rng.random_range(-amt..amt);

        let cylinders = ((size * 4.0).round() / 4.0 + jitter(&mut rng, 0.08)).clamp(0.0, 1.0);
        let displacement = (0.15 + 0.75 * size + jitter(&mut rng, 0.08)).clamp(0.0, 1.0);
        let horsepower =
            (0.1 + 0.7 * size + 0.15 * displacement + jitter(&mut rng, 0.07)).clamp(0.0, 1.0);
        let weight = (0.2 + 0.65 * size + jitter(&mut rng, 0.06)).clamp(0.0, 1.0);
        let acceleration = (0.85 - 0.55 * horsepower + jitter(&mut rng, 0.1)).clamp(0.0, 1.0);
        let model_year: f64 = rng.random_range(0.0..1.0);
        let origin = [0.0, 0.5, 1.0][rng.random_range(0..3usize)];

        // Ground-truth efficiency: decreasing and convex in weight and
        // displacement, improved by model year, mildly by origin.
        let mpg_raw = 0.95 - 0.45 * weight - 0.25 * displacement * displacement
            + 0.18 * model_year
            + 0.07 * origin
            + 0.05 * acceleration
            - 0.1 * weight * displacement;
        let mpg = (mpg_raw + jitter(&mut rng, 0.02)).clamp(0.0, 1.0);

        inputs.push(vec![
            cylinders,
            displacement,
            horsepower,
            weight,
            acceleration,
            model_year,
            origin,
        ]);
        targets.push(vec![mpg]);
    }
    Dataset { inputs, targets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = auto_mpg(50, 7);
        let b = auto_mpg(50, 7);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.targets, b.targets);
        let c = auto_mpg(50, 8);
        assert_ne!(a.inputs, c.inputs);
    }

    #[test]
    fn values_are_normalized() {
        let d = auto_mpg(200, 1);
        for x in &d.inputs {
            assert_eq!(x.len(), NUM_FEATURES);
            assert!(x.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        for t in &d.targets {
            assert!((0.0..=1.0).contains(&t[0]));
        }
    }

    #[test]
    fn heavier_cars_use_more_fuel_on_average() {
        let d = auto_mpg(500, 2);
        let (mut heavy, mut light) = (Vec::new(), Vec::new());
        for (x, t) in d.inputs.iter().zip(&d.targets) {
            if x[3] > 0.7 {
                heavy.push(t[0]);
            } else if x[3] < 0.3 {
                light.push(t[0]);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(!heavy.is_empty() && !light.is_empty());
        assert!(
            mean(&light) > mean(&heavy) + 0.1,
            "weight→mpg signal too weak"
        );
    }
}
