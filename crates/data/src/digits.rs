//! Procedural digit images — the offline stand-in for MNIST.
//!
//! Ten 5×7 glyphs (a classic terminal font) are rendered onto a square
//! grayscale canvas with random position jitter, stroke intensity, and
//! background noise. Labels are one-hot. Images are `size × size` with
//! `size ≥ 9`; the paper uses 28×28 MNIST, our experiments default to 14×14
//! so the per-neuron LPs stay tractable for the from-scratch simplex (the
//! encoding code paths are identical — see DESIGN.md).

use crate::rng_from;
use itne_nn::train::Dataset;
use rand::RngExt;

/// 5×7 bitmaps for digits 0-9, one string row per scanline.
const GLYPHS: [[&str; 7]; 10] = [
    [
        "01110", "10001", "10011", "10101", "11001", "10001", "01110",
    ], // 0
    [
        "00100", "01100", "00100", "00100", "00100", "00100", "01110",
    ], // 1
    [
        "01110", "10001", "00001", "00010", "00100", "01000", "11111",
    ], // 2
    [
        "11111", "00010", "00100", "00010", "00001", "10001", "01110",
    ], // 3
    [
        "00010", "00110", "01010", "10010", "11111", "00010", "00010",
    ], // 4
    [
        "11111", "10000", "11110", "00001", "00001", "10001", "01110",
    ], // 5
    [
        "00110", "01000", "10000", "11110", "10001", "10001", "01110",
    ], // 6
    [
        "11111", "00001", "00010", "00100", "01000", "01000", "01000",
    ], // 7
    [
        "01110", "10001", "10001", "01110", "10001", "10001", "01110",
    ], // 8
    [
        "01110", "10001", "10001", "01111", "00001", "00010", "01100",
    ], // 9
];

/// Glyph width in cells.
pub const GLYPH_W: usize = 5;
/// Glyph height in cells.
pub const GLYPH_H: usize = 7;

/// Renders digit `d` onto a `size × size` canvas in `[0, 1]`, deterministic
/// in the provided RNG state.
///
/// # Panics
///
/// Panics if `d > 9` or `size < 9`.
pub fn render_digit(d: usize, size: usize, rng: &mut rand::rngs::StdRng) -> Vec<f64> {
    assert!(d <= 9, "digit out of range");
    assert!(size >= 9, "canvas must be at least 9×9");
    let mut img = vec![0.0f64; size * size];

    // Low-amplitude background noise.
    for p in &mut img {
        *p = rng.random_range(0.0..0.08);
    }

    // Jittered placement of the glyph.
    let max_ox = size - GLYPH_W - 1;
    let max_oy = size - GLYPH_H - 1;
    let ox = rng.random_range(1..=max_ox);
    let oy = rng.random_range(1..=max_oy);
    let ink: f64 = rng.random_range(0.75..1.0);

    for (gy, row) in GLYPHS[d].iter().enumerate() {
        for (gx, ch) in row.bytes().enumerate() {
            if ch == b'1' {
                let y = oy + gy;
                let x = ox + gx;
                let v = ink - rng.random_range(0.0..0.12);
                img[y * size + x] = v.clamp(0.0, 1.0);
            }
        }
    }
    img
}

/// Generates `n` labelled digit images of side `size`, cycling through the
/// ten classes. Targets are one-hot vectors of length 10.
///
/// # Panics
///
/// Panics if `size < 9`.
pub fn digits(n: usize, size: usize, seed: u64) -> Dataset {
    let mut rng = rng_from(seed ^ 0xd161u64.rotate_left(33));
    let mut inputs = Vec::with_capacity(n);
    let mut targets = Vec::with_capacity(n);
    for i in 0..n {
        let d = i % 10;
        inputs.push(render_digit(d, size, &mut rng));
        let mut t = vec![0.0; 10];
        t[d] = 1.0;
        targets.push(t);
    }
    Dataset { inputs, targets }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_balanced() {
        let a = digits(40, 12, 3);
        let b = digits(40, 12, 3);
        assert_eq!(a.inputs, b.inputs);
        // 4 examples per class.
        for c in 0..10 {
            let count = a.targets.iter().filter(|t| t[c] == 1.0).count();
            assert_eq!(count, 4);
        }
    }

    #[test]
    fn pixels_are_normalized() {
        let d = digits(30, 14, 5);
        for img in &d.inputs {
            assert_eq!(img.len(), 14 * 14);
            assert!(img.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn glyphs_have_distinct_ink_patterns() {
        // Render each class without jitter noise dominating and check the
        // pairwise L1 distances are non-trivial.
        let mut rng = crate::rng_from(9);
        let imgs: Vec<Vec<f64>> = (0..10).map(|d| render_digit(d, 12, &mut rng)).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let l1: f64 = imgs[i]
                    .iter()
                    .zip(&imgs[j])
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(l1 > 1.0, "classes {i} and {j} almost identical: {l1}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "digit out of range")]
    fn rejects_bad_digit() {
        let mut rng = crate::rng_from(0);
        let _ = render_digit(10, 12, &mut rng);
    }
}
