//! Robust positively invariant (RPI) set computation for the closed loop —
//! the safety-verification step the paper performs "similarly as in [20]".
//!
//! With estimation error `e = [Δd, 0]` bounded by `|Δd| ≤ β`, the closed
//! loop is `x⁺ = A_cl·x + w`, where the lumped disturbance
//! `w = B·K·e − E·w₁ + w₂` lives in a box. The minimal RPI set is the
//! Minkowski series `S = Σ_{k≥0} A_cl^k · W`; for a box `W` its support in
//! the axis directions is the absolutely-convergent series
//! `h_i = Σ_k (|A_cl^k| · c)_i`, which we evaluate with a rigorous tail
//! bound. The system is safe for error bound `β` iff `S` fits inside the
//! normalized safe box — and the largest such `β` is found by bisection
//! (the paper's `[-0.14, 0.14]`).

use crate::dynamics::{AccDynamics, SafeSet, K_GAIN, VR_RANGE, V_NOMINAL, WD_BOUND, WV_BOUND};

/// Result of the invariant-set analysis for one estimation-error bound.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct InvariantAnalysis {
    /// Half-widths of the (outer-approximated) minimal RPI box.
    pub rpi_half_widths: [f64; 2],
    /// Half-widths of the normalized safe box.
    pub safe_half_widths: [f64; 2],
    /// Whether the RPI set fits inside the safe set.
    pub safe: bool,
}

/// 2×2 row-major multiply.
fn mm(x: [f64; 4], y: [f64; 4]) -> [f64; 4] {
    [
        x[0] * y[0] + x[1] * y[2],
        x[0] * y[1] + x[1] * y[3],
        x[2] * y[0] + x[3] * y[2],
        x[2] * y[1] + x[3] * y[3],
    ]
}

fn inf_norm(x: [f64; 4]) -> f64 {
    (x[0].abs() + x[1].abs()).max(x[2].abs() + x[3].abs())
}

/// Axis-aligned support of `Σ_k A^k·W` for the box `W` with half-widths `c`,
/// including a rigorous geometric tail bound once `‖A^k‖∞` is tiny.
///
/// # Panics
///
/// Panics if the closed loop is not contractive enough for the series to
/// converge within the iteration budget (cannot happen for the paper's `K`).
pub fn mrpi_box(a: [f64; 4], c: [f64; 2]) -> [f64; 2] {
    let mut h = [0.0f64; 2];
    let mut ak: [f64; 4] = [1.0, 0.0, 0.0, 1.0];
    let mut k = 0usize;
    loop {
        h[0] += ak[0].abs() * c[0] + ak[1].abs() * c[1];
        h[1] += ak[2].abs() * c[0] + ak[3].abs() * c[1];
        ak = mm(ak, a);
        k += 1;
        let decay = inf_norm(ak);
        if decay < 1e-13 {
            // Tail: Σ_{j≥k} |A^j c| ≤ ‖A^k‖∞ · (c∞ / (1 − ρ̂)) with the
            // crude contraction estimate ρ̂ from successive norms; at 1e-13
            // the slack below dominates any realistic tail.
            let slack = decay * (c[0] + c[1]) * 1e3 + 1e-12;
            h[0] += slack;
            h[1] += slack;
            return h;
        }
        assert!(
            k < 1_000_000,
            "closed loop does not contract; series diverges"
        );
    }
}

/// Lumped disturbance box half-widths for estimation-error bound `beta`.
fn disturbance_box(beta: f64) -> [f64; 2] {
    let b = AccDynamics::b();
    let e = AccDynamics::e();
    let w1 = (V_NOMINAL - VR_RANGE.0)
        .abs()
        .max((V_NOMINAL - VR_RANGE.1).abs());
    [
        (b[0] * K_GAIN[0]).abs() * beta + e[0].abs() * w1 + WD_BOUND,
        (b[1] * K_GAIN[0]).abs() * beta + e[1].abs() * w1 + WV_BOUND,
    ]
}

/// Runs the invariant analysis for the estimation-error bound `beta`.
pub fn analyze(beta: f64, safe: &SafeSet) -> InvariantAnalysis {
    let rpi = mrpi_box(AccDynamics::closed_loop(), disturbance_box(beta));
    let half = safe.normalized_half_widths();
    InvariantAnalysis {
        rpi_half_widths: rpi,
        safe_half_widths: half,
        safe: rpi[0] <= half[0] && rpi[1] <= half[1],
    }
}

/// The largest estimation-error bound `β` for which the closed loop is
/// provably safe (bisection to `tol`). The paper reports 0.14.
pub fn max_tolerable_estimation_error(safe: &SafeSet, tol: f64) -> f64 {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    if !analyze(lo, safe).safe {
        return 0.0; // not even perfect estimation is safe
    }
    while analyze(hi, safe).safe {
        hi *= 2.0;
        if hi > 1e6 {
            return f64::INFINITY;
        }
    }
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if analyze(mid, safe).safe {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tolerable estimation-error bound lands near the paper's 0.14.
    #[test]
    fn tolerable_error_is_near_paper_value() {
        let beta = max_tolerable_estimation_error(&SafeSet::default(), 1e-4);
        assert!(
            (0.10..=0.16).contains(&beta),
            "β = {beta}, paper reports ≈ 0.14"
        );
    }

    /// The safety verdict is monotone in β.
    #[test]
    fn safety_is_monotone_in_beta() {
        let safe = SafeSet::default();
        let beta_max = max_tolerable_estimation_error(&safe, 1e-4);
        assert!(analyze(beta_max * 0.9, &safe).safe);
        assert!(!analyze(beta_max * 1.2, &safe).safe);
    }

    /// The RPI box is invariant under one closed-loop step by construction:
    /// simulate worst-case corner excursions and check containment.
    #[test]
    fn rpi_box_contains_simulated_trajectories() {
        let safe = SafeSet::default();
        let beta = 0.1;
        let an = analyze(beta, &safe);
        let a = AccDynamics::closed_loop();
        let c = super::disturbance_box(beta);
        // Adversarial bang-bang disturbance, many phases.
        for phase in 0..8 {
            let mut x = [0.0f64, 0.0];
            for k in 0..4000 {
                let s = if (k / (phase + 3)) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                };
                let w = [s * c[0], -s * c[1]];
                x = [
                    a[0] * x[0] + a[1] * x[1] + w[0],
                    a[2] * x[0] + a[3] * x[1] + w[1],
                ];
                assert!(
                    x[0].abs() <= an.rpi_half_widths[0] + 1e-9
                        && x[1].abs() <= an.rpi_half_widths[1] + 1e-9,
                    "trajectory escaped the RPI box at step {k}: {x:?} vs {:?}",
                    an.rpi_half_widths
                );
            }
        }
    }

    /// Larger β strictly inflates the RPI set.
    #[test]
    fn rpi_grows_with_beta() {
        let safe = SafeSet::default();
        let a = analyze(0.05, &safe).rpi_half_widths;
        let b = analyze(0.2, &safe).rpi_half_widths;
        assert!(b[0] > a[0] && b[1] > a[1]);
    }
}
