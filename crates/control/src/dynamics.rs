//! The paper's ACC plant model and safe set.
//!
//! Normalized state `x = [d − 1.2, v_e − 0.4]ᵀ` (distance to the reference
//! vehicle and ego speed), sampled every 100 ms:
//!
//! ```text
//! x[k+1] = [1  -0.1] x[k] + [-0.005] u[k] + [0.1] w₁[k] + w₂[k]
//!          [0   1  ]        [ 0.1  ]        [ 0 ]
//! ```
//!
//! with `w₁ = 0.4 − v_r` the reference-speed disturbance and `w₂ = [w_d,
//! w_v]ᵀ` the model-inaccuracy noise (see the crate docs for the `0.1`
//! coefficient on `w₁`). The feedback law is `u = K·x̂` with
//! `K = [0.3617, -0.8582]` and `x̂` the *estimated* state.

/// Sampling period in seconds.
pub const DT: f64 = 0.1;
/// The paper's feedback gain `K`.
pub const K_GAIN: [f64; 2] = [0.3617, -0.8582];
/// Nominal distance (the normalization offset of `x₁`).
pub const D_NOMINAL: f64 = 1.2;
/// Nominal ego speed (the normalization offset of `x₂`).
pub const V_NOMINAL: f64 = 0.4;
/// Reference vehicle speed range `v_r ∈ [0.2, 0.6]`.
pub const VR_RANGE: (f64, f64) = (0.2, 0.6);
/// Bound on the distance-channel model noise `|w_d|`.
pub const WD_BOUND: f64 = 5e-4;
/// Bound on the speed-channel model noise `|w_v|`.
pub const WV_BOUND: f64 = 3e-5;

/// Physical vehicle state.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AccState {
    /// Distance to the reference vehicle.
    pub distance: f64,
    /// Ego vehicle speed.
    pub speed: f64,
}

impl AccState {
    /// The nominal operating point `d = 1.2, v = 0.4`.
    pub fn nominal() -> Self {
        AccState {
            distance: D_NOMINAL,
            speed: V_NOMINAL,
        }
    }

    /// Normalized state `x = [d − 1.2, v_e − 0.4]`.
    pub fn normalized(self) -> [f64; 2] {
        [self.distance - D_NOMINAL, self.speed - V_NOMINAL]
    }

    /// Back from normalized coordinates.
    pub fn from_normalized(x: [f64; 2]) -> Self {
        AccState {
            distance: x[0] + D_NOMINAL,
            speed: x[1] + V_NOMINAL,
        }
    }
}

/// The safe operating region: `d ∈ [0.5, 1.9]`, `v_e ∈ [0.1, 0.7]`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SafeSet {
    /// Allowed distance range.
    pub distance: (f64, f64),
    /// Allowed speed range.
    pub speed: (f64, f64),
}

impl Default for SafeSet {
    fn default() -> Self {
        SafeSet {
            distance: (0.5, 1.9),
            speed: (0.1, 0.7),
        }
    }
}

impl SafeSet {
    /// True if the state is inside the safe region.
    pub fn contains(&self, s: AccState) -> bool {
        s.distance >= self.distance.0
            && s.distance <= self.distance.1
            && s.speed >= self.speed.0
            && s.speed <= self.speed.1
    }

    /// Half-widths of the normalized safe box (`0.7` and `0.3` for the
    /// paper's values).
    pub fn normalized_half_widths(&self) -> [f64; 2] {
        [
            (self.distance.1 - self.distance.0) / 2.0,
            (self.speed.1 - self.speed.0) / 2.0,
        ]
    }
}

/// The discrete-time plant.
#[derive(Copy, Clone, Debug, Default)]
pub struct AccDynamics;

impl AccDynamics {
    /// Open-loop `A` matrix (row-major).
    pub fn a() -> [f64; 4] {
        [1.0, -DT, 0.0, 1.0]
    }

    /// Input vector `B`.
    pub fn b() -> [f64; 2] {
        [-0.005, DT]
    }

    /// Disturbance vector `E` multiplying `w₁` (physical reading; see the
    /// crate docs).
    pub fn e() -> [f64; 2] {
        [DT, 0.0]
    }

    /// Closed-loop matrix `A + B·K`.
    pub fn closed_loop() -> [f64; 4] {
        let a = Self::a();
        let b = Self::b();
        [
            a[0] + b[0] * K_GAIN[0],
            a[1] + b[0] * K_GAIN[1],
            a[2] + b[1] * K_GAIN[0],
            a[3] + b[1] * K_GAIN[1],
        ]
    }

    /// One control input from the estimated state.
    pub fn control(x_hat: [f64; 2]) -> f64 {
        K_GAIN[0] * x_hat[0] + K_GAIN[1] * x_hat[1]
    }

    /// Advances the physical state one step.
    ///
    /// `vr` is the reference vehicle speed, `w2 = [w_d, w_v]` the model
    /// noise. The `-0.005·u` distance term is the second-order hold of the
    /// ego acceleration over the 100 ms period (`½·u·dt²`), matching the
    /// paper's `B` vector.
    pub fn step(&self, s: AccState, u: f64, vr: f64, w2: [f64; 2]) -> AccState {
        AccState {
            distance: s.distance + DT * (vr - s.speed) - 0.005 * u + w2[0],
            speed: s.speed + DT * u + w2[1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The physical step equals the paper's matrix form in normalized
    /// coordinates (with the physical `E`).
    #[test]
    fn physical_step_matches_matrix_form() {
        let dyn_ = AccDynamics;
        let s = AccState {
            distance: 1.35,
            speed: 0.52,
        };
        let (u, vr, w2) = (0.4, 0.27, [2e-4, -1e-5]);
        let next = dyn_.step(s, u, vr, w2);

        let x = s.normalized();
        let a = AccDynamics::a();
        let b = AccDynamics::b();
        let e = AccDynamics::e();
        let w1 = V_NOMINAL - vr;
        // Note E enters with w₁ = 0.4 − v_r and the sign convention
        // d⁺ = d + dt(v_r − v_e): in normalized form the w₁ term is −E·w₁.
        let xn = [
            a[0] * x[0] + a[1] * x[1] + b[0] * u - e[0] * w1 + w2[0],
            a[2] * x[0] + a[3] * x[1] + b[1] * u - e[1] * w1 + w2[1],
        ];
        let back = AccState::from_normalized(xn);
        assert!((next.distance - back.distance).abs() < 1e-12);
        assert!((next.speed - back.speed).abs() < 1e-12);
    }

    #[test]
    fn closed_loop_matrix_matches_paper_gain() {
        let acl = AccDynamics::closed_loop();
        assert!((acl[0] - 0.9981915).abs() < 1e-9);
        assert!((acl[1] + 0.095709).abs() < 1e-9);
        assert!((acl[2] - 0.03617).abs() < 1e-9);
        assert!((acl[3] - 0.91418).abs() < 1e-9);
    }

    #[test]
    fn safe_set_checks_both_coordinates() {
        let safe = SafeSet::default();
        assert!(safe.contains(AccState::nominal()));
        assert!(!safe.contains(AccState {
            distance: 0.4,
            speed: 0.4
        }));
        assert!(!safe.contains(AccState {
            distance: 1.0,
            speed: 0.75
        }));
        assert_eq!(safe.normalized_half_widths(), [0.7, 0.3]);
    }

    /// Nominal closed loop (no disturbance, perfect estimation) converges to
    /// the operating point.
    #[test]
    fn closed_loop_is_stable() {
        let dyn_ = AccDynamics;
        let mut s = AccState {
            distance: 1.5,
            speed: 0.3,
        };
        for _ in 0..600 {
            let u = AccDynamics::control(s.normalized());
            s = dyn_.step(s, u, V_NOMINAL, [0.0, 0.0]);
        }
        assert!((s.distance - D_NOMINAL).abs() < 1e-3, "d → {}", s.distance);
        assert!((s.speed - V_NOMINAL).abs() < 1e-3, "v → {}", s.speed);
    }
}
