//! Closed-loop simulation with FGSM camera perturbation in the loop —
//! the paper's empirical validation of the verified safety claim ("more
//! than 1000 minutes of simulation").

use crate::dynamics::{AccDynamics, AccState, SafeSet, VR_RANGE, WD_BOUND, WV_BOUND};
use crate::perception::PerceptionModel;
use itne_attack::fgsm_variation;
use itne_data::render_scene;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Simulation configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Independent episodes.
    pub episodes: usize,
    /// Steps per episode (100 ms each).
    pub steps: usize,
    /// FGSM perturbation bound on camera pixels (0 disables the attack).
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            episodes: 20,
            steps: 300,
            delta: 2.0 / 255.0,
            seed: 7,
        }
    }
}

/// Aggregated simulation outcome.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Episodes run.
    pub episodes: usize,
    /// Episodes that ever left the safe set.
    pub unsafe_episodes: usize,
    /// Steps where the estimation error exceeded `dd_bound`.
    pub exceed_steps: usize,
    /// Total steps across episodes.
    pub total_steps: usize,
    /// Largest observed `|d̂ − d|`.
    pub max_abs_dd: f64,
}

impl SimReport {
    /// Fraction of unsafe episodes.
    pub fn unsafe_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.unsafe_episodes as f64 / self.episodes as f64
        }
    }
}

/// Runs the closed loop: render → (FGSM) perturb → estimate → control →
/// plant step, counting estimation-error exceedances of `dd_bound` and
/// safe-set violations.
pub fn simulate(
    model: &PerceptionModel,
    dd_bound: f64,
    safe: &SafeSet,
    cfg: &SimConfig,
) -> SimReport {
    let dynamics = AccDynamics;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut report = SimReport {
        episodes: cfg.episodes,
        ..Default::default()
    };

    for _ in 0..cfg.episodes {
        let mut state = AccState {
            distance: 1.2 + rng.random_range(-0.1..0.1),
            speed: 0.4 + rng.random_range(-0.05..0.05),
        };
        let mut vr: f64 = rng.random_range(0.3..0.5);
        let mut episode_unsafe = false;

        for _ in 0..cfg.steps {
            // Reference vehicle speed random-walks within its range.
            vr = (vr + rng.random_range(-0.02..0.02)).clamp(VR_RANGE.0, VR_RANGE.1);

            // Camera capture with natural scene variation.
            let lateral = rng.random_range(-0.45..0.45);
            let brightness = rng.random_range(0.96..1.04);
            let image = render_scene(
                &model.spec,
                state.distance,
                lateral,
                brightness,
                0.01,
                &mut rng,
            );

            // Adversarial perturbation maximizing estimation deviation.
            let observed = if cfg.delta > 0.0 {
                let unit = vec![(0.0, 1.0); image.len()];
                let (_, adv) = fgsm_variation(&model.net, &image, cfg.delta, 0, Some(&unit));
                adv
            } else {
                image
            };

            let d_hat = model.estimate(&observed);
            let dd = d_hat - state.distance;
            report.max_abs_dd = report.max_abs_dd.max(dd.abs());
            if dd.abs() > dd_bound {
                report.exceed_steps += 1;
            }

            // Control from estimated distance (speed assumed known).
            let u = AccDynamics::control([d_hat - 1.2, state.speed - 0.4]);
            let w2 = [
                rng.random_range(-WD_BOUND..WD_BOUND),
                rng.random_range(-WV_BOUND..WV_BOUND),
            ];
            state = dynamics.step(state, u, vr, w2);
            report.total_steps += 1;

            if !safe.contains(state) {
                episode_unsafe = true;
            }
        }
        if episode_unsafe {
            report.unsafe_episodes += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perception::{PerceptionConfig, PerceptionModel};

    fn quick_model() -> PerceptionModel {
        let cfg = PerceptionConfig {
            train_samples: 400,
            epochs: 35,
            ..Default::default()
        };
        PerceptionModel::train_new(&cfg).0
    }

    #[test]
    fn unattacked_loop_stays_safe() {
        let model = quick_model();
        let report = simulate(
            &model,
            0.2,
            &SafeSet::default(),
            &SimConfig {
                episodes: 5,
                steps: 200,
                delta: 0.0,
                seed: 3,
            },
        );
        assert_eq!(
            report.unsafe_episodes, 0,
            "nominal loop went unsafe: {report:?}"
        );
    }

    #[test]
    fn attack_increases_estimation_error() {
        let model = quick_model();
        let mk = |delta| {
            simulate(
                &model,
                f64::INFINITY,
                &SafeSet::default(),
                &SimConfig {
                    episodes: 3,
                    steps: 100,
                    delta,
                    seed: 5,
                },
            )
        };
        let clean = mk(0.0);
        let attacked = mk(6.0 / 255.0);
        assert!(
            attacked.max_abs_dd > clean.max_abs_dd,
            "attack did not increase error: {} vs {}",
            attacked.max_abs_dd,
            clean.max_abs_dd
        );
    }

    #[test]
    fn report_counts_are_consistent() {
        let model = quick_model();
        let cfg = SimConfig {
            episodes: 2,
            steps: 50,
            delta: 0.0,
            seed: 1,
        };
        let r = simulate(&model, 0.0, &SafeSet::default(), &cfg);
        assert_eq!(r.total_steps, 100);
        // dd_bound = 0 ⇒ every step exceeds (estimator is never exact).
        assert_eq!(r.exceed_steps, 100);
    }
}
