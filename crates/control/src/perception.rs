//! The vision-based distance-estimation DNN (the paper's 5-layer perception
//! network, scaled to the 12×24 renderer — see DESIGN.md substitutions).

use itne_attack::fgsm_perturb;
use itne_data::camera::{camera_dataset, pixel_bounds, CameraSpec};
use itne_nn::train::{train, Adam, Dataset, Loss, TrainConfig, TrainReport};
use itne_nn::{initialize, Network, NetworkBuilder};

/// Architecture and training configuration for the perception model.
#[derive(Clone, Debug)]
pub struct PerceptionConfig {
    /// Camera geometry.
    pub spec: CameraSpec,
    /// Channels of the two conv layers.
    pub conv_channels: (usize, usize),
    /// Width of the hidden fully-connected layer.
    pub fc_width: usize,
    /// Training images.
    pub train_samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay (shrinks the Lipschitz gain, which directly
    /// tightens the certification — see DESIGN.md).
    pub weight_decay: f64,
    /// Prepend a 2×2 average-pooling front end. Pooling is a gain-1 linear
    /// layer, so it smooths the input without adding certification slack —
    /// a robustness-by-architecture choice.
    pub pool_first: bool,
    /// FGSM adversarial-augmentation strength for the fine-tuning stage
    /// (0 disables). Robustifies the network itself, which is what the
    /// certified bound ultimately reflects.
    pub adversarial: f64,
    /// Seed for data generation, initialization and shuffling.
    pub seed: u64,
}

impl Default for PerceptionConfig {
    fn default() -> Self {
        PerceptionConfig {
            spec: CameraSpec::default(),
            conv_channels: (4, 8),
            fc_width: 16,
            train_samples: 2500,
            epochs: 100,
            learning_rate: 3e-3,
            weight_decay: 0.05,
            pool_first: true,
            adversarial: 2.0 / 255.0,
            seed: 2022,
        }
    }
}

/// A trained distance estimator plus everything the safety pipeline needs
/// from it.
#[derive(Clone, Debug)]
pub struct PerceptionModel {
    /// The trained network (input `[1, h, w]` image, output distance).
    pub net: Network,
    /// Camera geometry the model was trained for.
    pub spec: CameraSpec,
}

impl PerceptionModel {
    /// Builds the (initialized, untrained) architecture: two strided conv
    /// layers, then two fully-connected layers — the paper's conv+FC shape.
    pub fn architecture(cfg: &PerceptionConfig) -> Network {
        let mut b = NetworkBuilder::input_image(1, cfg.spec.height, cfg.spec.width);
        if cfg.pool_first {
            b = b.avg_pool(2, 2).expect("pool geometry");
        }
        let mut net = b
            .conv2d(cfg.conv_channels.0, 3, 2, 1, true)
            .expect("valid conv geometry")
            .conv2d(cfg.conv_channels.1, 3, 2, 1, true)
            .expect("valid conv geometry")
            .flatten()
            .expect("flatten")
            .dense_zeros(cfg.fc_width, true)
            .expect("fc hidden")
            .dense_zeros(1, false)
            .expect("fc output")
            .build();
        initialize(&mut net, cfg.seed);
        net
    }

    /// Generates the training set and trains the model in two stages
    /// (full learning rate, then a quarter of it for fine-tuning), with
    /// decoupled weight decay throughout.
    pub fn train_new(cfg: &PerceptionConfig) -> (Self, Dataset, TrainReport) {
        let data = camera_dataset(&cfg.spec, cfg.train_samples, cfg.seed ^ 0xcafe);
        let mut net = Self::architecture(cfg);
        let tc = |epochs: usize| TrainConfig {
            epochs,
            batch_size: 32,
            loss: Loss::Mse,
            seed: cfg.seed,
            verbose: false,
        };
        let stage1 = (cfg.epochs * 3) / 5;
        let mut opt = Adam::with_weight_decay(cfg.learning_rate, cfg.weight_decay);
        let mut report = train(&mut net, &data, &mut opt, &tc(stage1));

        // Fine-tune on the original data plus FGSM-perturbed copies
        // (static adversarial augmentation) at a lower learning rate.
        let mut fine_data = data.clone();
        if cfg.adversarial > 0.0 {
            let unit = vec![(0.0, 1.0); net.input_dim()];
            for (img, t) in data.inputs.iter().zip(&data.targets) {
                for sign in [1.0, -1.0] {
                    fine_data.inputs.push(fgsm_perturb(
                        &net,
                        img,
                        cfg.adversarial,
                        0,
                        sign,
                        Some(&unit),
                    ));
                    fine_data.targets.push(t.clone());
                }
            }
        }
        let mut fine = Adam::with_weight_decay(cfg.learning_rate / 4.0, cfg.weight_decay);
        let report2 = train(&mut net, &fine_data, &mut fine, &tc(cfg.epochs - stage1));
        report.loss_history.extend(report2.loss_history);
        (
            PerceptionModel {
                net,
                spec: cfg.spec,
            },
            data,
            report,
        )
    }

    /// Distance estimate for one image.
    pub fn estimate(&self, image: &[f64]) -> f64 {
        self.net.forward(image)[0]
    }

    /// The paper's `Δd₁`: worst-case model inaccuracy over a dataset.
    pub fn model_error(&self, data: &Dataset) -> f64 {
        data.inputs
            .iter()
            .zip(&data.targets)
            .map(|(img, t)| (self.estimate(img) - t[0]).abs())
            .fold(0.0, f64::max)
    }

    /// The certification input domain `X`: per-pixel dataset bounds inflated
    /// by `margin` (Fig. 5 (c)/(d)), clamped to the valid pixel range.
    pub fn input_domain(&self, data: &Dataset, margin: f64) -> Vec<(f64, f64)> {
        pixel_bounds(data)
            .into_iter()
            .map(|(lo, hi)| ((lo - margin).max(0.0), (hi + margin).min(1.0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> PerceptionConfig {
        // Light weight decay: the full decay of the default config needs the
        // full epoch budget to converge; this is a smoke-test setting.
        PerceptionConfig {
            train_samples: 400,
            epochs: 45,
            weight_decay: 0.005,
            ..Default::default()
        }
    }

    #[test]
    fn training_reaches_useful_accuracy() {
        let (model, data, report) = PerceptionModel::train_new(&quick_cfg());
        assert!(
            report.final_loss() < 0.05,
            "training did not converge: loss {}",
            report.final_loss()
        );
        // Quick-config quality gates: the *mean* error must be a small
        // fraction of the 1.4-wide distance range (the worst case needs the
        // full config's epoch budget and is exercised by the case-study
        // binary instead).
        let mean: f64 = data
            .inputs
            .iter()
            .zip(&data.targets)
            .map(|(img, t)| (model.estimate(img) - t[0]).abs())
            .sum::<f64>()
            / data.len() as f64;
        assert!(mean < 0.1, "mean model error {mean} too large");
        assert!(model.model_error(&data) < 0.6, "worst-case error unusable");
    }

    #[test]
    fn estimates_order_near_and_far() {
        let (model, _, _) = PerceptionModel::train_new(&quick_cfg());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        let near = itne_data::render_scene(&model.spec, 0.6, 0.0, 1.0, 0.0, &mut rng);
        let far = itne_data::render_scene(&model.spec, 1.8, 0.0, 1.0, 0.0, &mut rng);
        assert!(
            model.estimate(&near) + 0.3 < model.estimate(&far),
            "near {} vs far {}",
            model.estimate(&near),
            model.estimate(&far)
        );
    }

    #[test]
    fn input_domain_is_a_valid_subbox_of_unit_pixels() {
        let (model, data, _) = PerceptionModel::train_new(&quick_cfg());
        let dom = model.input_domain(&data, 2.0 / 255.0);
        assert_eq!(dom.len(), model.spec.pixels());
        assert!(dom
            .iter()
            .all(|&(lo, hi)| (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0));
    }
}
