//! The closed-loop ACC safety-verification case study (paper §III-B).
//!
//! An ego vehicle follows a reference vehicle using a camera + DNN distance
//! estimator and a linear feedback controller. The paper's question: given a
//! certified global robustness bound on the perception DNN, is the closed
//! loop provably safe under bounded input perturbation?
//!
//! Pipeline (each piece its own module):
//!
//! 1. [`dynamics`] — the paper's discrete-time model with the normalized
//!    state `x = [d − 1.2, v_e − 0.4]`;
//! 2. [`perception`] — a conv distance-estimation DNN trained on rendered
//!    camera images (`itne-data::camera`), plus its dataset model-error
//!    bound `Δd₁`;
//! 3. certification of the DNN's global robustness bound `Δd₂ ≤ ε̄` via
//!    `itne-core` (driven by the case-study binary);
//! 4. [`invariant`] — robust positively invariant set computation giving the
//!    largest estimation-error bound `β` the control loop tolerates inside
//!    the safe set (the paper's `[-0.14, 0.14]`);
//! 5. [`simulate`] — closed-loop simulation with FGSM perturbation in the
//!    loop at increasing `δ`, reproducing the escalation the paper reports
//!    (safe at 2/255, bound exceedances at 5/255, unsafe states at 10/255).
//!
//! ## Fidelity note (documented in DESIGN.md)
//!
//! The paper prints the reference-speed disturbance as `+[1 0]ᵀ·w₁` with
//! `w₁ = 0.4 − v_r ∈ [-0.2, 0.2]`. Taken literally no invariant subset of
//! the safe set exists (the disturbance alone pushes `|Δd| ≥ 5` in the
//! worst case); physically, a speed difference changes distance by
//! `dt·(v_r − v_e)` per 100 ms step, i.e. the coefficient is `0.1`. We
//! implement the physical reading, under which the maximum tolerable
//! estimation error computes to ≈ 0.13–0.14 — consistent with the paper's
//! reported `[-0.14, 0.14]`.

#![forbid(unsafe_code)]

pub mod dynamics;
pub mod invariant;
pub mod perception;
pub mod simulate;

pub use dynamics::{AccDynamics, AccState, SafeSet};
pub use invariant::{analyze, max_tolerable_estimation_error, mrpi_box, InvariantAnalysis};
pub use perception::{PerceptionConfig, PerceptionModel};
pub use simulate::{simulate, SimConfig, SimReport};
