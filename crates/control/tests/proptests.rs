//! Property-based checks of the control substrate.

use itne_control::dynamics::{AccDynamics, AccState, SafeSet};
use itne_control::invariant::{analyze, mrpi_box};
use proptest::prelude::*;

proptest! {
    // Fixed seed + bounded case count: CI runs are deterministic and any
    // failure reproduces locally with no persistence files.
    #![proptest_config(ProptestConfig {
        rng_seed: 0x17de_c0de_0005,
        ..ProptestConfig::with_cases(128)
    })]

    /// Normalized-coordinate round trip is exact.
    #[test]
    fn state_normalization_round_trips(d in 0.0f64..3.0, v in 0.0f64..1.0) {
        let s = AccState { distance: d, speed: v };
        let back = AccState::from_normalized(s.normalized());
        prop_assert!((back.distance - d).abs() < 1e-12);
        prop_assert!((back.speed - v).abs() < 1e-12);
    }

    /// The RPI support is monotone in the disturbance box.
    #[test]
    fn rpi_monotone_in_disturbance(c1 in 1u32..=50, c2 in 1u32..=50) {
        let a = AccDynamics::closed_loop();
        let small = [c1 as f64 * 1e-4, c2 as f64 * 1e-4];
        let big = [small[0] * 1.5, small[1] * 1.5];
        let hs = mrpi_box(a, small);
        let hb = mrpi_box(a, big);
        prop_assert!(hb[0] >= hs[0] && hb[1] >= hs[1]);
    }

    /// Any random disturbance trajectory from the origin stays inside the
    /// RPI box — the defining property of robust positive invariance.
    #[test]
    fn random_trajectories_stay_in_rpi(seed in 1u64..10_000) {
        let beta = 0.08;
        let an = analyze(beta, &SafeSet::default());
        let a = AccDynamics::closed_loop();
        // Reconstruct the disturbance box the analysis used.
        let b = AccDynamics::b();
        let e = AccDynamics::e();
        let c = [
            (b[0] * itne_control::dynamics::K_GAIN[0]).abs() * beta
                + e[0] * 0.2
                + itne_control::dynamics::WD_BOUND,
            (b[1] * itne_control::dynamics::K_GAIN[0]).abs() * beta
                + itne_control::dynamics::WV_BOUND,
        ];
        let mut s = seed | 1;
        let mut unit = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        let mut x = [0.0f64, 0.0];
        for k in 0..800 {
            let w = [unit() * c[0], unit() * c[1]];
            x = [a[0] * x[0] + a[1] * x[1] + w[0], a[2] * x[0] + a[3] * x[1] + w[1]];
            prop_assert!(
                x[0].abs() <= an.rpi_half_widths[0] + 1e-9
                    && x[1].abs() <= an.rpi_half_widths[1] + 1e-9,
                "escaped RPI at step {k}: {x:?}"
            );
        }
    }

    /// Safe-set membership matches its normalized half-width description.
    #[test]
    fn safe_set_consistency(d in 0.0f64..3.0, v in 0.0f64..1.0) {
        let safe = SafeSet::default();
        let s = AccState { distance: d, speed: v };
        let n = s.normalized();
        let hw = safe.normalized_half_widths();
        // The normalized box is centered on the nominal point.
        let inside_box = n[0].abs() <= hw[0] && n[1].abs() <= hw[1];
        prop_assert_eq!(safe.contains(s), inside_box);
    }
}
