//! Sparse linear expressions over model variables.

use crate::model::VarId;
use std::ops::{Add, Mul, Neg, Sub};

/// A sparse linear expression `Σ cᵢ·xᵢ + k`.
///
/// Expressions are built with ordinary arithmetic on [`VarId`]s and `f64`s:
///
/// ```
/// use itne_milp::{LinExpr, Model};
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 1.0);
/// let y = m.add_var(0.0, 1.0);
/// let e: LinExpr = 2.0 * x - y + 3.0;
/// assert_eq!(e.constant(), 3.0);
/// ```
///
/// Duplicate variables are allowed and are merged lazily by
/// [`LinExpr::compact`] (the model compacts rows when they are added).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression `0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression consisting of a constant only.
    pub fn constant_term(k: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: k,
        }
    }

    /// Builds an expression from `(variable, coefficient)` pairs and a constant.
    pub fn from_terms<I: IntoIterator<Item = (VarId, f64)>>(terms: I, constant: f64) -> Self {
        LinExpr {
            terms: terms.into_iter().collect(),
            constant,
        }
    }

    /// Adds `coef * var` to the expression.
    pub fn add_term(&mut self, var: VarId, coef: f64) -> &mut Self {
        self.terms.push((var, coef));
        self
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, k: f64) -> &mut Self {
        self.constant += k;
        self
    }

    /// Resets the expression to `0`, keeping the term buffer's capacity.
    /// With [`LinExpr::add_scaled`] and the `*_buf` constraint methods on
    /// [`crate::Model`], this lets encoders reuse one scratch expression
    /// across thousands of constraints instead of allocating per row.
    pub fn clear(&mut self) {
        self.terms.clear();
        self.constant = 0.0;
    }

    /// Appends every term of `other` scaled by `k`, plus `k ×` its constant.
    /// Equivalent to `self + k * other.clone()` without the clone.
    pub fn add_scaled(&mut self, other: &LinExpr, k: f64) -> &mut Self {
        self.terms
            .extend(other.terms.iter().map(|&(v, c)| (v, c * k)));
        self.constant += other.constant * k;
        self
    }

    /// The constant part `k`.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// The (possibly duplicated) terms in insertion order.
    pub fn terms(&self) -> &[(VarId, f64)] {
        &self.terms
    }

    /// Merges duplicate variables and drops exact-zero coefficients,
    /// returning the canonical form sorted by variable index.
    pub fn compact(mut self) -> Self {
        self.compact_in_place();
        self
    }

    /// In-place [`LinExpr::compact`]: identical canonical form (stable sort
    /// by variable index, duplicates summed in insertion order, exact zeros
    /// dropped), but the term buffer is retained for reuse.
    pub fn compact_in_place(&mut self) {
        self.terms.sort_by_key(|(v, _)| v.index());
        let mut write = 0usize;
        for read in 0..self.terms.len() {
            let (v, c) = self.terms[read];
            if write > 0 && self.terms[write - 1].0 == v {
                self.terms[write - 1].1 += c;
            } else {
                self.terms[write] = (v, c);
                write += 1;
            }
        }
        self.terms.truncate(write);
        self.terms.retain(|(_, c)| *c != 0.0);
    }

    /// Evaluates the expression at the given dense assignment.
    pub fn eval(&self, values: &[f64]) -> f64 {
        let mut acc = self.constant;
        for (v, c) in &self.terms {
            acc += c * values[v.index()];
        }
        acc
    }

    /// True if the expression has a coefficient that is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        !self.constant.is_finite() || self.terms.iter().any(|(_, c)| !c.is_finite())
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr {
            terms: vec![(v, 1.0)],
            constant: 0.0,
        }
    }
}

impl From<f64> for LinExpr {
    fn from(k: f64) -> Self {
        LinExpr::constant_term(k)
    }
}

macro_rules! impl_binop {
    ($lhs:ty, $rhs:ty) => {
        impl Add<$rhs> for $lhs {
            type Output = LinExpr;
            fn add(self, rhs: $rhs) -> LinExpr {
                let mut out: LinExpr = self.into();
                let rhs: LinExpr = rhs.into();
                out.terms.extend(rhs.terms);
                out.constant += rhs.constant;
                out
            }
        }
        impl Sub<$rhs> for $lhs {
            type Output = LinExpr;
            fn sub(self, rhs: $rhs) -> LinExpr {
                let mut out: LinExpr = self.into();
                let rhs: LinExpr = rhs.into();
                out.terms
                    .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
                out.constant -= rhs.constant;
                out
            }
        }
    };
}

impl_binop!(LinExpr, LinExpr);
impl_binop!(LinExpr, VarId);
impl_binop!(LinExpr, f64);
impl_binop!(VarId, LinExpr);
impl_binop!(VarId, VarId);
impl_binop!(VarId, f64);
impl_binop!(f64, LinExpr);
impl_binop!(f64, VarId);

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr {
            terms: self.terms.into_iter().map(|(v, c)| (v, -c)).collect(),
            constant: -self.constant,
        }
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        LinExpr {
            terms: self.terms.into_iter().map(|(v, c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

impl Mul<VarId> for f64 {
    type Output = LinExpr;
    fn mul(self, v: VarId) -> LinExpr {
        LinExpr {
            terms: vec![(v, self)],
            constant: 0.0,
        }
    }
}

impl Mul<f64> for VarId {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        LinExpr {
            terms: vec![(self, k)],
            constant: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Model;

    #[test]
    fn arithmetic_builds_expected_terms() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        let e = (2.0 * x + 3.0 * y - x + 1.5).compact();
        assert_eq!(e.terms(), &[(x, 1.0), (y, 3.0)]);
        assert_eq!(e.constant(), 1.5);
    }

    #[test]
    fn compact_drops_cancelled_terms() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let e = (x - x).compact();
        assert!(e.terms().is_empty());
    }

    #[test]
    fn eval_matches_manual_computation() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        let y = m.add_var(0.0, 10.0);
        let e = 2.0 * x - 0.5 * y + 4.0;
        assert_eq!(e.eval(&[3.0, 2.0]), 2.0 * 3.0 - 0.5 * 2.0 + 4.0);
    }

    #[test]
    fn compact_in_place_matches_compact() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        let z = m.add_var(0.0, 1.0);
        let built = 2.0 * z + 3.0 * x - z + 0.25 * y - 3.0 * x + 7.5;
        let via_compact = built.clone().compact();
        let mut in_place = built;
        in_place.compact_in_place();
        assert_eq!(in_place, via_compact);
        assert_eq!(in_place.terms(), &[(y, 0.25), (z, 1.0)]);
    }

    #[test]
    fn scratch_buffer_reuse_matches_fresh_build() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        let base = 1.0 * x - 2.0 * y + 0.5;
        let mut buf = super::LinExpr::new();
        for k in [1.0, -3.0, 0.0] {
            buf.clear();
            buf.add_term(y, 4.0);
            buf.add_scaled(&base, k);
            let fresh = (4.0 * y + base.clone() * k).compact();
            buf.compact_in_place();
            assert_eq!(buf, fresh, "k = {k}");
        }
    }

    #[test]
    fn negation_flips_all_signs() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let e = -(2.0 * x + 1.0);
        assert_eq!(e.terms(), &[(x, -2.0)]);
        assert_eq!(e.constant(), -1.0);
    }
}
