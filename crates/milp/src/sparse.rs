//! Sparse revised simplex: the default LP engine.
//!
//! Where the dense engine ([`crate::simplex`]) maintains the whole
//! `B⁻¹·[A | I | I]` tableau explicitly — making every pivot O(m·n)
//! regardless of how sparse the constraint matrix is — this engine keeps the
//! problem data immutable and factorized:
//!
//! * the structural columns of `A` live in a [`SparseMatrix`] (compressed
//!   sparse column form), built **once** per model and shared (`Arc`) across
//!   branch-and-bound nodes and resident sweeps;
//! * `B⁻¹` is never formed. It is represented as a **product-form-of-inverse
//!   eta file**: each pivot appends one elementary eta matrix, and systems
//!   with `B` are solved by running a vector through the file — forward for
//!   FTRAN (`w = B⁻¹·a`, the entering column of the ratio test), backward for
//!   BTRAN (`y = c_B·B⁻¹`, the dual prices behind reduced costs);
//! * pricing is **candidate-list partial pricing**: a full O(ncols) scan runs
//!   only to (re)fill a small candidate list, and ordinary iterations re-price
//!   just the candidates. Bland's anti-cycling rule falls back to a full
//!   first-eligible scan, exactly like the dense engine;
//! * the eta file is **refactorized periodically** — after a pivot-count
//!   budget or when its fill-in outgrows the matrix — not only at
//!   basis-restore time. Refactorization also recomputes the basic values
//!   from the original data, resetting accumulated round-off.
//!
//! Per-iteration cost is therefore one BTRAN + a handful of sparse dot
//! products + one FTRAN + O(m) value updates, instead of an O(m·ncols) dense
//! tableau sweep. On the band-diagonal `[A | I]` skeletons the ITNE encoding
//! produces (each over-approximation window touches only a window of
//! neurons), this is what makes warm reoptimization profitable at *every*
//! problem size — the dense engine had to gate large conv windows cold via
//! `SolveOptions::warm_start_cell_limit`.
//!
//! Semantics (two-phase method, bounded variables, bound flips, tolerances,
//! ratio-test tie-breaking, Dantzig→Bland switching) deliberately mirror the
//! dense engine; the proptests run every random skeleton through both and
//! assert identical optima.

use std::sync::Arc;

use crate::error::SolveError;
use crate::model::{Model, Sense};
use crate::options::SolveOptions;
use crate::simplex::{
    finish_values, initial_value, slack_bounds, solve_unconstrained, Basis, ColState,
    ResolveOutcome, WarmOutcome,
};
use crate::{DualCertificate, Solution};

const INF: f64 = f64::INFINITY;

/// Immutable compressed-sparse-column storage of the structural constraint
/// matrix `A` (m rows × n structural columns). Built once per [`Model`];
/// slack and artificial columns are implicit unit vectors and never stored.
#[derive(Clone, Debug)]
pub(crate) struct SparseMatrix {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds the CSC form of `model`'s constraint rows. Entries within a
    /// column are ordered by row index; exact zeros are dropped.
    pub(crate) fn from_model(model: &Model) -> Self {
        let n = model.cols.len();
        let m = model.rows.len();
        let mut col_ptr = vec![0usize; n + 1];
        for row in &model.rows {
            for &(v, c) in &row.terms {
                if c != 0.0 {
                    col_ptr[v + 1] += 1;
                }
            }
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = col_ptr.clone();
        for (r, row) in model.rows.iter().enumerate() {
            for &(v, c) in &row.terms {
                if c != 0.0 {
                    let k = cursor[v];
                    row_idx[k] = r;
                    values[k] = c;
                    cursor[v] += 1;
                }
            }
        }
        SparseMatrix {
            nrows: m,
            col_ptr,
            row_idx,
            values,
        }
    }

    fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Structural non-zero count.
    pub(crate) fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// The product-form-of-inverse representation of `B⁻¹` as a sequence of
/// elementary eta matrices: `B⁻¹ = E_k · … · E_1`. Each eta records the
/// pivot row, the pivot element, and the off-pivot non-zeros of the FTRAN'd
/// entering column; everything is stored in flat contiguous arrays so FTRAN
/// and BTRAN stream linearly through memory (this is the engine's innermost
/// loop — one of each per simplex iteration).
#[derive(Clone, Debug)]
struct EtaFile {
    /// Pivot row of each eta.
    rows: Vec<usize>,
    /// Pivot element of each eta.
    pivots: Vec<f64>,
    /// CSR-style extents: eta `k`'s off-pivot entries are `ptr[k]..ptr[k+1]`.
    ptr: Vec<usize>,
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl EtaFile {
    fn new() -> Self {
        EtaFile {
            rows: Vec::new(),
            pivots: Vec::new(),
            ptr: vec![0],
            idx: Vec::new(),
            val: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.rows.clear();
        self.pivots.clear();
        self.ptr.clear();
        self.ptr.push(0);
        self.idx.clear();
        self.val.clear();
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    /// Total stored entries (pivots + off-pivot fill), the fill-in measure
    /// behind the refactorization trigger.
    fn nnz(&self) -> usize {
        self.rows.len() + self.idx.len()
    }

    /// Appends a fill-free eta with a single diagonal `pivot` at `row`
    /// (seeds the `diag(±1)` starting basis in O(1), no scratch column).
    fn push_unit(&mut self, row: usize, pivot: f64) {
        self.rows.push(row);
        self.pivots.push(pivot);
        self.ptr.push(self.idx.len());
    }

    /// Appends the eta of a pivot at `row` on the FTRAN'd column `w`.
    fn push_from_column(&mut self, row: usize, w: &[f64]) {
        for (i, &v) in w.iter().enumerate() {
            if i != row && v != 0.0 {
                self.idx.push(i);
                self.val.push(v);
            }
        }
        self.rows.push(row);
        self.pivots.push(w[row]);
        self.ptr.push(self.idx.len());
    }

    /// `v ← B⁻¹·v` (apply etas first-to-last).
    fn ftran(&self, v: &mut [f64]) {
        for k in 0..self.rows.len() {
            let t = v[self.rows[k]];
            if t != 0.0 {
                let t = t / self.pivots[k];
                v[self.rows[k]] = t;
                for e in self.ptr[k]..self.ptr[k + 1] {
                    v[self.idx[e]] -= self.val[e] * t;
                }
            }
        }
    }

    /// `yᵀ ← yᵀ·B⁻¹` (apply etas last-to-first).
    fn btran(&self, y: &mut [f64]) {
        for k in (0..self.rows.len()).rev() {
            let mut s = y[self.rows[k]];
            for e in self.ptr[k]..self.ptr[k + 1] {
                s -= y[self.idx[e]] * self.val[e];
            }
            y[self.rows[k]] = s / self.pivots[k];
        }
    }
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Progress { degenerate: bool },
}

/// The revised-simplex working state. Column index space matches the dense
/// engine: `[0, n)` structural, `[n, n+m)` slack, `[n+m, ncols)` artificial.
struct Core {
    mat: Arc<SparseMatrix>,
    rhs: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    xval: Vec<f64>,
    state: Vec<ColState>,
    /// Column occupying each basis row (`B⁻¹·A_basis[r] = e_r`).
    basis: Vec<usize>,
    etas: EtaFile,
    /// `(row, sign)` of each artificial column, in column order.
    arts: Vec<(usize, f64)>,
    n: usize,
    m: usize,
    art_start: usize,
    ncols: usize,
    /// Costs of the current phase, length `ncols`.
    costs: Vec<f64>,
    /// FTRAN scratch (entering column in basis coordinates), length `m`.
    w: Vec<f64>,
    /// BTRAN scratch (dual prices), length `m`.
    y: Vec<f64>,
    /// Partial-pricing candidate list.
    candidates: Vec<usize>,
    pivots: u64,
    refactorizations: u64,
    eta_peak: usize,
    pivots_since_refactor: u64,
    refactor_every: u64,
    eta_nnz_cap: usize,
    feas_tol: f64,
    opt_tol: f64,
    pivot_tol: f64,
}

impl Core {
    /// Scatters column `j` of `[A | I | ±I]` into the zeroed buffer `out`.
    fn scatter_col(mat: &SparseMatrix, arts: &[(usize, f64)], n: usize, j: usize, out: &mut [f64]) {
        let m = mat.nrows;
        if j < n {
            for (r, a) in mat.col(j) {
                out[r] = a;
            }
        } else if j < n + m {
            out[j - n] = 1.0;
        } else {
            let (r, s) = arts[j - n - m];
            out[r] = s;
        }
    }

    /// `w ← B⁻¹·A_q` (the entering column for ratio test and eta append).
    fn compute_w(&mut self, q: usize) {
        self.w.fill(0.0);
        Self::scatter_col(&self.mat, &self.arts, self.n, q, &mut self.w);
        self.etas.ftran(&mut self.w);
    }

    /// `y ← c_B·B⁻¹` (the dual prices the reduced costs are measured
    /// against).
    fn compute_y(&mut self) {
        for r in 0..self.m {
            self.y[r] = self.costs[self.basis[r]];
        }
        self.etas.btran(&mut self.y);
    }

    /// Reduced cost `d_j = c_j − y·A_j` via one sparse dot product.
    fn reduced_cost(&self, j: usize) -> f64 {
        let mut d = self.costs[j];
        if j < self.n {
            for (r, a) in self.mat.col(j) {
                d -= self.y[r] * a;
            }
        } else if j < self.art_start {
            d -= self.y[j - self.n];
        } else {
            let (r, s) = self.arts[j - self.art_start];
            d -= s * self.y[r];
        }
        d
    }

    /// Entering direction and score of a non-basic column under reduced cost
    /// `dj`, or `None` when the column cannot improve (fixed, basic, or
    /// resting on the profitable side).
    fn direction(&self, j: usize, dj: f64) -> Option<(f64, f64)> {
        match self.state[j] {
            ColState::Basic => None,
            ColState::AtLower => {
                if self.lo[j] == self.hi[j] {
                    None
                } else {
                    Some((1.0, -dj))
                }
            }
            ColState::AtUpper => {
                if self.lo[j] == self.hi[j] {
                    None
                } else {
                    Some((-1.0, dj))
                }
            }
            ColState::Free => {
                if dj < 0.0 {
                    Some((1.0, -dj))
                } else {
                    Some((-1.0, dj))
                }
            }
        }
    }

    /// Candidate-list cap: a small slice of the column space, enough to keep
    /// Dantzig-quality entering choices without a full scan per iteration.
    fn candidate_cap(limit: usize) -> usize {
        (limit / 8).clamp(8, 64)
    }

    /// Chooses an entering column, returning `(col, direction)`. Expects
    /// `self.y` to be current.
    ///
    /// Non-Bland mode prices the candidate list first and falls back to a
    /// full scan (which also refills the list) only when every candidate has
    /// gone stale. Bland mode always runs the full first-eligible scan its
    /// anti-cycling guarantee requires.
    fn price(&mut self, bland: bool, phase2: bool) -> Option<(usize, f64)> {
        let limit = if phase2 { self.art_start } else { self.ncols };
        if bland {
            for j in 0..limit {
                if self.state[j] == ColState::Basic {
                    continue;
                }
                let dj = self.reduced_cost(j);
                if let Some((dir, score)) = self.direction(j, dj) {
                    if score > self.opt_tol {
                        return Some((j, dir));
                    }
                }
            }
            return None;
        }

        // Minor iteration: re-price only the candidates, dropping columns
        // that entered the basis in place (no allocation on the hot path;
        // swap_remove keeps the pass deterministic run-to-run).
        let mut best: Option<(usize, f64, f64)> = None;
        let mut i = 0;
        while i < self.candidates.len() {
            let j = self.candidates[i];
            if j >= limit || self.state[j] == ColState::Basic {
                self.candidates.swap_remove(i);
                continue;
            }
            let dj = self.reduced_cost(j);
            if let Some((dir, score)) = self.direction(j, dj) {
                if score > self.opt_tol {
                    match best {
                        Some((_, _, s)) if s >= score => {}
                        _ => best = Some((j, dir, score)),
                    }
                }
            }
            i += 1;
        }
        if let Some((j, dir, _)) = best {
            return Some((j, dir));
        }

        // Major iteration: full scan, refill the candidate list with the
        // highest-scoring eligible columns (deterministic order).
        let mut scored: Vec<(usize, f64, f64)> = Vec::new();
        for j in 0..limit {
            if self.state[j] == ColState::Basic {
                continue;
            }
            let dj = self.reduced_cost(j);
            if let Some((dir, score)) = self.direction(j, dj) {
                if score > self.opt_tol {
                    scored.push((j, dir, score));
                }
            }
        }
        if scored.is_empty() {
            self.candidates.clear();
            return None;
        }
        // total_cmp, not partial_cmp: a NaN score must not silently collapse
        // the ordering and steer pivot choice (lint rule float-cmp). Scores
        // here are positive and finite, for which the two orders coincide.
        scored.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        scored.truncate(Self::candidate_cap(limit));
        self.candidates = scored.iter().map(|&(j, _, _)| j).collect();
        let (j, dir, _) = scored[0];
        Some((j, dir))
    }

    /// One simplex iteration: price, FTRAN, ratio test, then bound-flip or
    /// pivot. The ratio-test semantics (tolerances, largest-pivot
    /// tie-breaking, bound-to-bound flips) mirror the dense engine exactly.
    fn step(&mut self, bland: bool, phase2: bool) -> StepOutcome {
        self.compute_y();
        let Some((q, dir)) = self.price(bland, phase2) else {
            return StepOutcome::Optimal;
        };
        self.compute_w(q);

        let mut limit = if self.lo[q].is_finite() && self.hi[q].is_finite() {
            self.hi[q] - self.lo[q]
        } else {
            INF
        };
        let mut leave: Option<(usize, bool)> = None;
        let mut leave_piv = 0.0f64;
        for r in 0..self.m {
            let a = self.w[r] * dir;
            let b = self.basis[r];
            let (room, to_lower) = if a > self.pivot_tol {
                (self.xval[b] - self.lo[b], true)
            } else if a < -self.pivot_tol {
                (self.hi[b] - self.xval[b], false)
            } else {
                continue;
            };
            if !room.is_finite() {
                continue;
            }
            let ratio = room.max(0.0) / a.abs();
            let a_mag = a.abs();
            if ratio < limit - 1e-12 || (ratio < limit + 1e-12 && a_mag > leave_piv) {
                limit = ratio.min(limit);
                leave = Some((r, to_lower));
                leave_piv = a_mag;
            }
        }

        if limit.is_infinite() {
            return StepOutcome::Unbounded;
        }

        let step = dir * limit;
        match leave {
            None => {
                for r in 0..self.m {
                    let a = self.w[r];
                    if a != 0.0 {
                        let b = self.basis[r];
                        self.xval[b] -= step * a;
                    }
                }
                self.state[q] = if dir > 0.0 {
                    ColState::AtUpper
                } else {
                    ColState::AtLower
                };
                self.xval[q] = if dir > 0.0 { self.hi[q] } else { self.lo[q] };
                StepOutcome::Progress { degenerate: false }
            }
            Some((r, to_lower)) => {
                for i in 0..self.m {
                    let a = self.w[i];
                    if a != 0.0 {
                        let b = self.basis[i];
                        self.xval[b] -= step * a;
                    }
                }
                self.xval[q] += step;
                let leaving = self.basis[r];
                // Snap the leaving variable exactly to its bound to stop
                // feasibility drift from accumulating.
                self.xval[leaving] = if to_lower {
                    self.lo[leaving]
                } else {
                    self.hi[leaving]
                };
                self.state[leaving] = if to_lower {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
                self.apply_pivot(r, q);
                StepOutcome::Progress {
                    degenerate: limit <= 1e-10,
                }
            }
        }
    }

    /// Appends the eta of a pivot at row `r` with entering column `q`
    /// (expects `self.w = B⁻¹·A_q`) and updates the heading and counters.
    fn apply_pivot(&mut self, r: usize, q: usize) {
        debug_assert!(self.w[r].abs() > 0.0, "zero pivot");
        self.etas.push_from_column(r, &self.w);
        self.eta_peak = self.eta_peak.max(self.etas.len());
        self.state[q] = ColState::Basic;
        self.basis[r] = q;
        self.pivots += 1;
        self.pivots_since_refactor += 1;
    }

    fn should_refactorize(&self) -> bool {
        self.pivots_since_refactor >= self.refactor_every || self.etas.nnz() > self.eta_nnz_cap
    }

    /// Rebuilds the eta file from the original data for the current basic
    /// column set, then recomputes the basic values exactly. Returns `false`
    /// when the basis is singular with respect to the matrix or the
    /// recomputed point is primal infeasible beyond tolerance (warm restores
    /// reject; mid-solve callers treat it as a numerical failure).
    ///
    /// Unit (slack/artificial) columns are eliminated first — they pivot with
    /// no fill — then structural columns by ascending non-zero count; within
    /// each column the pivot row is the largest remaining magnitude, ties to
    /// the lowest row. The row↔column pairing may change; only the column
    /// *set* is meaningful, and the heading is rebuilt to match.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        self.etas.clear();
        let mut unit: Vec<usize> = self
            .basis
            .iter()
            .copied()
            .filter(|&j| j >= self.n)
            .collect();
        unit.sort_unstable();
        let mut structural: Vec<usize> =
            self.basis.iter().copied().filter(|&j| j < self.n).collect();
        structural.sort_by_key(|&j| (self.mat.col_nnz(j), j));

        let mut eliminated = vec![false; m];
        let mut new_basis = vec![usize::MAX; m];
        for &j in unit.iter().chain(structural.iter()) {
            self.w.fill(0.0);
            Self::scatter_col(&self.mat, &self.arts, self.n, j, &mut self.w);
            self.etas.ftran(&mut self.w);
            let mut best: Option<(usize, f64)> = None;
            for (r, &done) in eliminated.iter().enumerate() {
                if done {
                    continue;
                }
                let a = self.w[r].abs();
                if best.is_none_or(|(_, mag)| a > mag) {
                    best = Some((r, a));
                }
            }
            let Some((r, mag)) = best else { return false };
            if mag <= self.pivot_tol {
                return false;
            }
            self.etas.push_from_column(r, &self.w);
            eliminated[r] = true;
            new_basis[r] = j;
        }
        self.basis = new_basis;
        self.eta_peak = self.eta_peak.max(self.etas.len());
        self.refactorizations += 1;
        self.pivots_since_refactor = 0;
        self.recompute_basic_values()
    }

    /// `x_B ← B⁻¹·(b − N·x_N)` from the original data, clamping round-off
    /// within the feasibility tolerance. Returns `false` on a violation
    /// beyond tolerance.
    fn recompute_basic_values(&mut self) -> bool {
        self.w.fill(0.0);
        self.w[..self.m].copy_from_slice(&self.rhs);
        for j in 0..self.ncols {
            if self.state[j] == ColState::Basic {
                continue;
            }
            let x = self.xval[j];
            if x == 0.0 {
                continue;
            }
            if j < self.n {
                for (r, a) in self.mat.col(j) {
                    self.w[r] -= a * x;
                }
            } else if j < self.art_start {
                self.w[j - self.n] -= x;
            } else {
                let (r, s) = self.arts[j - self.art_start];
                self.w[r] -= s * x;
            }
        }
        self.etas.ftran(&mut self.w);
        for r in 0..self.m {
            let b = self.basis[r];
            let v = self.w[r];
            if v < self.lo[b] - self.feas_tol || v > self.hi[b] + self.feas_tol {
                return false;
            }
            self.xval[b] = v.clamp(self.lo[b], self.hi[b]);
        }
        true
    }

    /// Runs the simplex loop for one phase until optimality, refactorizing
    /// the eta file whenever the trigger fires.
    fn optimize(&mut self, phase2: bool, cap: u64) -> Result<(), SolveError> {
        let mut degen_streak = 0u32;
        let mut bland = false;
        loop {
            if self.pivots >= cap {
                return Err(SolveError::IterationLimit);
            }
            if self.should_refactorize() && !self.refactorize() {
                return Err(SolveError::Numerical(
                    "basis became singular or infeasible at refactorization".into(),
                ));
            }
            match self.step(bland, phase2) {
                StepOutcome::Optimal => return Ok(()),
                StepOutcome::Unbounded => {
                    return if phase2 {
                        Err(SolveError::Unbounded)
                    } else {
                        Err(SolveError::Numerical("phase-1 objective unbounded".into()))
                    };
                }
                StepOutcome::Progress { degenerate } => {
                    if degenerate {
                        degen_streak += 1;
                        if degen_streak > 50 {
                            bland = true;
                        }
                    } else {
                        degen_streak = 0;
                        bland = false;
                    }
                }
            }
        }
    }

    /// Pivots basic artificial variables (all at value 0) out of the basis;
    /// rows that admit no replacement keep their frozen artificial, exactly
    /// like the dense engine.
    fn drive_out_artificials(&mut self) {
        for r in 0..self.m {
            if self.basis[r] < self.art_start {
                continue;
            }
            // ρ = e_r·B⁻¹, so ρ·A_j is the tableau entry (r, j).
            self.y.fill(0.0);
            self.y[r] = 1.0;
            self.etas.btran(&mut self.y);
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.art_start {
                if self.state[j] == ColState::Basic || self.lo[j] == self.hi[j] {
                    continue;
                }
                let a = self.reduced_cost_entry(j).abs();
                if a > self.pivot_tol && best.is_none_or(|(_, b)| a > b) {
                    best = Some((j, a));
                }
            }
            if let Some((j, _)) = best {
                self.compute_w(j);
                if self.w[r].abs() <= self.pivot_tol {
                    continue; // round-off disagreement; keep the frozen artificial
                }
                let leaving = self.basis[r];
                self.state[leaving] = ColState::AtLower;
                self.xval[leaving] = 0.0;
                self.apply_pivot(r, j);
            }
        }
    }

    /// `ρ·A_j` where `ρ` currently sits in `self.y` (drive-out helper).
    fn reduced_cost_entry(&self, j: usize) -> f64 {
        if j < self.n {
            let mut a = 0.0;
            for (r, v) in self.mat.col(j) {
                a += self.y[r] * v;
            }
            a
        } else {
            self.y[j - self.n]
        }
    }

    fn set_phase1_costs(&mut self) {
        self.costs.fill(0.0);
        for c in self.costs.iter_mut().skip(self.art_start) {
            *c = 1.0;
        }
    }

    fn set_phase2_costs(&mut self, model: &Model) {
        self.costs.fill(0.0);
        let flip = matches!(model.sense, Some(Sense::Maximize));
        for &(v, c) in &model.objective {
            self.costs[v] += if flip { -c } else { c };
        }
        self.candidates.clear();
    }

    fn freeze_artificials(&mut self) {
        for j in self.art_start..self.ncols {
            self.lo[j] = 0.0;
            self.hi[j] = 0.0;
            self.xval[j] = 0.0;
        }
    }

    /// Recomputes the dual certificate at the current (phase-2-terminated)
    /// basis: one BTRAN pass for `yᵀ = c_Bᵀ·B⁻¹` plus one sparse dot product
    /// per structural column. Rows are never negated in this engine, so `y`
    /// prices the model's own row orientation directly.
    fn certificate(&self) -> DualCertificate {
        let mut y = vec![0.0f64; self.m];
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.costs[self.basis[r]];
        }
        self.etas.btran(&mut y);
        let mut reduced = Vec::with_capacity(self.n);
        for j in 0..self.n {
            let mut d = self.costs[j];
            for (r, a) in self.mat.col(j) {
                d -= y[r] * a;
            }
            reduced.push(d);
        }
        DualCertificate {
            row_duals: y,
            reduced_costs: reduced,
        }
    }

    fn finish(
        &self,
        model: &Model,
        var_bounds: &[(f64, f64)],
        emit: bool,
    ) -> Result<Solution, SolveError> {
        finish_values(
            model,
            var_bounds,
            self.xval[..self.n].to_vec(),
            self.pivots,
            self.refactorizations,
            self.eta_peak as u64,
            emit.then(|| self.certificate()),
        )
    }

    /// Extracts a reusable [`Basis`] snapshot, or `None` when an artificial
    /// column is still basic (redundant row).
    fn snapshot(&self) -> Option<Basis> {
        if self.basis.iter().any(|&b| b >= self.art_start) {
            return None;
        }
        Some(Basis {
            state: self.state[..self.art_start].to_vec(),
            rows: self.basis.clone(),
            n: self.n,
            m: self.m,
        })
    }
}

/// Auto refactorization cadence: small LPs usually terminate before the
/// budget (no mid-solve refactorization overhead at all); large ones
/// refactorize often enough to keep BTRAN/FTRAN short and round-off fresh.
fn refactor_budget(opts: &SolveOptions, m: usize) -> u64 {
    if opts.refactor_interval > 0 {
        opts.refactor_interval
    } else {
        ((m as u64) / 2).clamp(64, 256)
    }
}

/// Builds the initial working state (columns, resting values, slack-or-
/// artificial starting basis) for `model` under `var_bounds`. The arithmetic
/// mirrors the dense engine's setup except that rows are never negated:
/// an artificial covering a negative residual gets a `−1` coefficient,
/// represented as a seed eta so the starting `B⁻¹` stays exact.
fn build_core(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
    mat: Arc<SparseMatrix>,
) -> (Core, f64) {
    let n = model.cols.len();
    let m = model.rows.len();
    let tol = opts.tolerances;

    let mut lo = Vec::with_capacity(n + 2 * m);
    let mut hi = Vec::with_capacity(n + 2 * m);
    let mut xval = Vec::with_capacity(n + 2 * m);
    let mut state = Vec::with_capacity(n + 2 * m);
    for &(l, h) in var_bounds {
        let (v, s) = initial_value(l, h);
        lo.push(l);
        hi.push(h);
        xval.push(v);
        state.push(s);
    }
    for row in &model.rows {
        let (l, h) = slack_bounds(row.cmp);
        lo.push(l);
        hi.push(h);
        xval.push(0.0); // placeholder; set below
        state.push(ColState::AtLower); // placeholder
    }

    let mut basis = Vec::with_capacity(m);
    let mut arts: Vec<(usize, f64)> = Vec::new();
    let mut art_values: Vec<f64> = Vec::new();
    let mut art_sum = 0.0;
    for (r, row) in model.rows.iter().enumerate() {
        let activity: f64 = row.terms.iter().map(|&(v, c)| c * xval[v]).sum();
        let v = row.rhs - activity; // required slack value
        let sc = n + r;
        if v >= lo[sc] && v <= hi[sc] {
            xval[sc] = v;
            state[sc] = ColState::Basic;
            basis.push(sc);
        } else {
            let sv = v.clamp(lo[sc], hi[sc]);
            xval[sc] = sv;
            state[sc] = if sv == lo[sc] {
                ColState::AtLower
            } else {
                ColState::AtUpper
            };
            let resid = v - sv;
            arts.push((r, resid.signum()));
            art_values.push(resid.abs());
            art_sum += resid.abs();
            basis.push(usize::MAX); // fixed up below
        }
    }

    let art_start = n + m;
    let ncols = art_start + arts.len();
    let mut etas = EtaFile::new();
    for (k, &(r, sign)) in arts.iter().enumerate() {
        lo.push(0.0);
        hi.push(INF);
        xval.push(art_values[k]);
        state.push(ColState::Basic);
        basis[r] = art_start + k;
        // Starting basis B = diag(±1): a −1 artificial is inverted by one
        // entry-free seed eta, keeping B⁻¹ exact from the first iteration.
        if sign < 0.0 {
            etas.push_unit(r, -1.0);
        }
    }

    let rhs: Vec<f64> = model.rows.iter().map(|row| row.rhs).collect();
    let eta_nnz_cap = 8 * (mat.nnz() + m) + 512;
    let core = Core {
        mat,
        rhs,
        lo,
        hi,
        xval,
        state,
        basis,
        etas,
        arts,
        n,
        m,
        art_start,
        ncols,
        costs: vec![0.0; ncols],
        w: vec![0.0; m],
        y: vec![0.0; m],
        candidates: Vec::new(),
        pivots: 0,
        refactorizations: 0,
        eta_peak: 0,
        pivots_since_refactor: 0,
        refactor_every: refactor_budget(opts, m),
        eta_nnz_cap,
        feas_tol: tol.feasibility,
        opt_tol: tol.optimality,
        pivot_tol: tol.pivot,
    };
    (core, art_sum)
}

/// Cold two-phase solve, returning the terminated [`Core`] for snapshotting
/// or resident reuse.
fn solve_core(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
    mat: Option<Arc<SparseMatrix>>,
) -> Result<(Solution, Option<Core>), SolveError> {
    let n = model.cols.len();
    let m = model.rows.len();
    debug_assert_eq!(var_bounds.len(), n);

    for &(lo, hi) in var_bounds {
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
    }
    if m == 0 {
        return solve_unconstrained(model, var_bounds).map(|s| (s, None));
    }

    let mat = mat.unwrap_or_else(|| Arc::new(SparseMatrix::from_model(model)));
    let (mut core, art_sum) = build_core(model, var_bounds, opts, mat);
    let cap = opts.pivot_cap(m, core.ncols);

    if art_sum > 0.0 {
        core.set_phase1_costs();
        core.optimize(false, cap)?;
        let remaining: f64 = (core.art_start..core.ncols).map(|j| core.xval[j]).sum();
        if remaining > core.feas_tol.max(1e-7) {
            return Err(SolveError::Infeasible);
        }
        core.drive_out_artificials();
    }
    core.freeze_artificials();

    core.set_phase2_costs(model);
    core.optimize(true, cap)?;

    let emit = opts.emit_certificates;
    let sol = match core.finish(model, var_bounds, emit) {
        Ok(sol) => sol,
        Err(_) => {
            // One repair attempt: refactorizing recomputes the basic values
            // from the original data; if the residual still fails after a
            // fresh reoptimization, the failure is genuine.
            if !core.refactorize() {
                return Err(SolveError::Numerical(
                    "basis became singular or infeasible at refactorization".into(),
                ));
            }
            core.optimize(true, cap)?;
            core.finish(model, var_bounds, emit)?
        }
    };
    Ok((sol, Some(core)))
}

/// Extracts a Farkas-style infeasibility witness: the dual prices of the
/// phase-1 optimum when a positive artificial mass remains. Against a zero
/// objective these prices prove (weak duality) that every point satisfying
/// the variable bounds violates some row — i.e. the LP is infeasible.
/// Returns `None` when the model is in fact feasible, when infeasibility
/// comes from a crossed variable bound (`lo > hi`, no row ray exists), or
/// when phase 1 itself fails to terminate cleanly.
pub(crate) fn infeasibility_duals(model: &Model, opts: &SolveOptions) -> Option<Vec<f64>> {
    let var_bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    if model.rows.is_empty() || var_bounds.iter().any(|&(lo, hi)| lo > hi) {
        return None;
    }
    let mat = Arc::new(SparseMatrix::from_model(model));
    let (mut core, art_sum) = build_core(model, &var_bounds, opts, mat);
    if art_sum == 0.0 {
        return None; // starting basis already feasible — nothing to witness
    }
    core.set_phase1_costs();
    let cap = opts.pivot_cap(core.m, core.ncols);
    core.optimize(false, cap).ok()?;
    let remaining: f64 = (core.art_start..core.ncols).map(|j| core.xval[j]).sum();
    if remaining <= core.feas_tol.max(1e-7) {
        return None; // feasible after all
    }
    // `certificate` prices the current costs — still the phase-1 costs here,
    // which is exactly what makes the duals an infeasibility witness.
    Some(core.certificate().row_duals)
}

/// Sparse counterpart of [`crate::simplex`]'s cold LP entry point.
pub(crate) fn solve_bounded(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
    mat: Option<Arc<SparseMatrix>>,
) -> Result<Solution, SolveError> {
    solve_core(model, var_bounds, opts, mat).map(|(sol, _)| sol)
}

/// Cold solve that also extracts a [`Basis`] snapshot.
pub(crate) fn solve_snapshot(
    model: &Model,
    opts: &SolveOptions,
) -> Result<(Solution, Option<Basis>), SolveError> {
    let bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    let (sol, core) = solve_core(model, &bounds, opts, None)?;
    Ok((sol, core.and_then(|c| c.snapshot())))
}

/// A live factorized sparse engine kept resident between the solves of one
/// objective sweep — the sparse counterpart of the dense resident tableau,
/// minus the dense tableau: reoptimizing in place costs one reduced-cost
/// pass plus the phase-2 pivots, at revised-simplex per-pivot prices.
pub(crate) struct SparseResident {
    core: Core,
    var_bounds: Vec<(f64, f64)>,
}

impl SparseResident {
    /// Reoptimizes under `model`'s current objective (phase 2 only).
    pub(crate) fn resolve(
        &mut self,
        model: &Model,
        opts: &SolveOptions,
    ) -> Result<ResolveOutcome, SolveError> {
        let c = &mut self.core;
        if model.cols.len() != c.n || model.rows.len() != c.m {
            return Ok(ResolveOutcome::Rejected { wasted_pivots: 0 });
        }
        c.set_phase2_costs(model);
        c.pivots = 0; // per-solve counters
        c.refactorizations = 0;
        c.eta_peak = c.etas.len();
        match c.optimize(true, opts.pivot_cap(c.m, c.ncols)) {
            Ok(()) => {}
            Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
            Err(_) => {
                return Ok(ResolveOutcome::Rejected {
                    wasted_pivots: c.pivots,
                })
            }
        }
        match c.finish(model, &self.var_bounds, opts.emit_certificates) {
            Ok(sol) => Ok(ResolveOutcome::Solved(sol)),
            Err(_) => Ok(ResolveOutcome::Rejected {
                wasted_pivots: c.pivots,
            }),
        }
    }
}

/// Cold solve that hands back the live engine for in-place reoptimization.
pub(crate) fn solve_resident(
    model: &Model,
    opts: &SolveOptions,
) -> Result<(Solution, Option<SparseResident>), SolveError> {
    let bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    let (sol, core) = solve_core(model, &bounds, opts, None)?;
    let resident = core.map(|core| SparseResident {
        core,
        var_bounds: bounds,
    });
    Ok((sol, resident))
}

/// Warm-started solve from a [`Basis`] snapshot: refactorize the recorded
/// column set against the original matrix and reoptimize phase 2. Anything
/// recoverable reports [`WarmOutcome::Rejected`] so the caller can fall back
/// cold, matching the dense engine's contract.
pub(crate) fn solve_warm(
    model: &Model,
    opts: &SolveOptions,
    warm: &Basis,
) -> Result<WarmOutcome, SolveError> {
    let n = model.cols.len();
    let m = model.rows.len();
    let tol = opts.tolerances;
    if warm.n != n || warm.m != m || m == 0 || warm.state.len() != n + m || warm.rows.len() != m {
        return Ok(WarmOutcome::Rejected);
    }
    let var_bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    for &(lo, hi) in &var_bounds {
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
    }

    let ncols = n + m;
    let mut lo = Vec::with_capacity(ncols);
    let mut hi = Vec::with_capacity(ncols);
    for &(l, h) in &var_bounds {
        lo.push(l);
        hi.push(h);
    }
    for row in &model.rows {
        let (l, h) = slack_bounds(row.cmp);
        lo.push(l);
        hi.push(h);
    }

    // Non-basic columns rest exactly at their recorded bound; a recorded
    // state that no longer matches a finite bound means the snapshot belongs
    // to a different model.
    let state = warm.state.clone();
    let mut xval = vec![0.0f64; ncols];
    for j in 0..ncols {
        match state[j] {
            ColState::Basic => {}
            ColState::AtLower => {
                if !lo[j].is_finite() {
                    return Ok(WarmOutcome::Rejected);
                }
                xval[j] = lo[j];
            }
            ColState::AtUpper => {
                if !hi[j].is_finite() {
                    return Ok(WarmOutcome::Rejected);
                }
                xval[j] = hi[j];
            }
            ColState::Free => xval[j] = 0.0,
        }
    }
    if warm
        .rows
        .iter()
        .any(|&b| b >= ncols || state[b] != ColState::Basic)
    {
        return Ok(WarmOutcome::Rejected);
    }

    let mat = Arc::new(SparseMatrix::from_model(model));
    let eta_nnz_cap = 8 * (mat.nnz() + m) + 512;
    let mut core = Core {
        mat,
        rhs: model.rows.iter().map(|row| row.rhs).collect(),
        lo,
        hi,
        xval,
        state,
        basis: warm.rows.clone(),
        etas: EtaFile::new(),
        arts: Vec::new(),
        n,
        m,
        art_start: ncols,
        ncols,
        costs: vec![0.0; ncols],
        w: vec![0.0; m],
        y: vec![0.0; m],
        candidates: Vec::new(),
        pivots: 0,
        refactorizations: 0,
        eta_peak: 0,
        pivots_since_refactor: 0,
        refactor_every: refactor_budget(opts, m),
        eta_nnz_cap,
        feas_tol: tol.feasibility,
        opt_tol: tol.optimality,
        pivot_tol: tol.pivot,
    };

    // Refactorize the recorded column set; a singular set or a restored
    // point that is no longer primal feasible means the snapshot is stale.
    if !core.refactorize() {
        return Ok(WarmOutcome::Rejected);
    }
    core.pivots = 0;
    core.refactorizations = 1; // the restore itself

    core.set_phase2_costs(model);
    match core.optimize(true, opts.pivot_cap(m, ncols)) {
        Ok(()) => {}
        Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
        Err(_) => return Ok(WarmOutcome::Rejected),
    }
    match core.finish(model, &var_bounds, opts.emit_certificates) {
        Ok(sol) => {
            let snapshot = core.snapshot();
            Ok(WarmOutcome::Solved(sol, snapshot))
        }
        Err(_) => Ok(WarmOutcome::Rejected),
    }
}

#[cfg(test)]
mod tests {
    use crate::{BatchSolver, Cmp, Engine, LinExpr, Model, Sense, SolveError, SolveOptions};

    fn opts() -> SolveOptions {
        SolveOptions {
            engine: Engine::Sparse,
            ..Default::default()
        }
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    /// Deterministic xorshift64 stream of values in `[-1, 1)`.
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
    }

    /// A band-diagonal LP shaped like one ITNE over-approximation window:
    /// each row touches only `band` consecutive variables plus its slack.
    fn band_lp(n: usize, band: usize, seed: u64) -> (Model, Vec<crate::VarId>) {
        let mut next = rng(seed);
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|_| m.add_var(-1.0, 1.0)).collect();
        for r in 0..n {
            let lo = r.saturating_sub(band / 2);
            let hi = (lo + band).min(n);
            let e = LinExpr::from_terms(vars[lo..hi].iter().map(|&v| (v, next())), 0.0);
            m.add_constraint(e, Cmp::Le, 0.5 + next().abs());
        }
        let obj = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
        m.set_objective(Sense::Maximize, obj);
        (m, vars)
    }

    #[test]
    fn textbook_problems_match_dense_engine() {
        // The dense engine's unit suite distilled into an engine-agreement
        // check: every model solves to the same objective on both engines.
        let build: Vec<fn() -> Model> = vec![
            || {
                let mut m = Model::new();
                let x = m.add_var(0.0, 10.0);
                let y = m.add_var(0.0, 10.0);
                m.add_constraint(x + y, Cmp::Le, 6.0);
                m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
                m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
                m
            },
            || {
                let mut m = Model::new();
                let x = m.add_var(0.0, 100.0);
                let y = m.add_var(0.0, 10.0);
                m.add_constraint(x + y, Cmp::Ge, 4.0);
                m.add_constraint(x, Cmp::Ge, 1.0);
                m.set_objective(Sense::Minimize, 2.0 * x + 3.0 * y);
                m
            },
            || {
                let mut m = Model::new();
                let x = m.add_var(-10.0, 10.0);
                let y = m.add_var(-10.0, 10.0);
                m.add_constraint(x + 2.0 * y, Cmp::Eq, 3.0);
                m.add_constraint(x - y, Cmp::Eq, 0.0);
                m.set_objective(Sense::Minimize, x + y);
                m
            },
            || {
                // Free variable in an equality plus an objective constant.
                let mut m = Model::new();
                let x = m.add_var(0.0, 1.0);
                let y = m.add_var(f64::NEG_INFINITY, f64::INFINITY);
                m.add_constraint(y - 3.0 * x, Cmp::Eq, -1.0);
                m.set_objective(Sense::Maximize, 1.0 * y + 10.0);
                m
            },
            || {
                // Redundant equality rows: a frozen artificial survives.
                let mut m = Model::new();
                let x = m.add_var(0.0, 5.0);
                let y = m.add_var(0.0, 5.0);
                m.add_constraint(x + y, Cmp::Eq, 4.0);
                m.add_constraint(2.0 * x + 2.0 * y, Cmp::Eq, 8.0);
                m.set_objective(Sense::Maximize, 1.0 * x);
                m
            },
            || {
                // Degenerate vertex (several constraints meet near a point).
                let mut m = Model::new();
                let x = m.add_var(0.0, 10.0);
                let y = m.add_var(0.0, 10.0);
                m.add_constraint(x + y, Cmp::Le, 1.0);
                m.add_constraint(x + 2.0 * y, Cmp::Le, 1.0);
                m.add_constraint(2.0 * x + y, Cmp::Le, 1.0);
                m.set_objective(Sense::Maximize, x + y);
                m
            },
        ];
        for (i, mk) in build.iter().enumerate() {
            let m = mk();
            let sparse = m
                .solve_with(&opts())
                .unwrap_or_else(|e| panic!("case {i} sparse: {e}"));
            let dense = m
                .solve_with(&SolveOptions {
                    engine: Engine::Dense,
                    ..Default::default()
                })
                .unwrap_or_else(|e| panic!("case {i} dense: {e}"));
            assert!(
                (sparse.objective - dense.objective).abs() < 1e-6,
                "case {i}: sparse {} vs dense {}",
                sparse.objective,
                dense.objective
            );
        }
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(2.0 * x, Cmp::Ge, 3.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert_eq!(m.solve_with(&opts()).unwrap_err(), SolveError::Infeasible);

        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY);
        let y = m.add_var(0.0, f64::INFINITY);
        m.add_constraint(x - y, Cmp::Le, 1.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.solve_with(&opts()).unwrap_err(), SolveError::Unbounded);
    }

    /// The eta-file refactorization-equivalence property: rebuilding the
    /// factorization after *every* pivot (`refactor_interval = 1`) must
    /// reach the same optimum as the lazy default — refactorization is a
    /// representation change, never a semantic one.
    #[test]
    fn refactorization_is_equivalence_preserving() {
        let (m, _) = band_lp(40, 5, 0xE7A);
        let lazy = m.solve_with(&opts()).expect("lazy solves");
        let eager = m
            .solve_with(&SolveOptions {
                refactor_interval: 1,
                ..opts()
            })
            .expect("eager solves");
        assert_close(eager.objective, lazy.objective);
        assert!(
            eager.stats.refactorizations > 0,
            "interval 1 never refactorized: {:?}",
            eager.stats
        );
        assert!(
            lazy.stats.refactorizations < eager.stats.refactorizations,
            "lazy path refactorized as often as eager: {:?} vs {:?}",
            lazy.stats,
            eager.stats
        );
        // Values agree too, not just objectives.
        for (a, b) in eager.values().iter().zip(lazy.values()) {
            assert!((a - b).abs() < 1e-6, "values diverged: {a} vs {b}");
        }
    }

    /// Same property across a warm-started sweep: per-pivot refactorization
    /// inside resident reoptimization changes nothing observable.
    #[test]
    fn refactorization_equivalence_across_warm_sweeps() {
        let objectives: Vec<(Sense, Vec<f64>)> = {
            let mut next = rng(77);
            (0..6)
                .map(|i| {
                    let sense = if i % 2 == 0 {
                        Sense::Minimize
                    } else {
                        Sense::Maximize
                    };
                    (sense, (0..30).map(|_| next()).collect())
                })
                .collect()
        };
        let run = |interval: u64| -> Vec<f64> {
            let (mut m, vars) = band_lp(30, 4, 0xBEE);
            let o = SolveOptions {
                refactor_interval: interval,
                ..opts()
            };
            let mut batch = BatchSolver::new(&mut m);
            objectives
                .iter()
                .map(|(sense, cs)| {
                    let e = LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
                    batch.solve(*sense, e, &o).expect("solves").objective
                })
                .collect()
        };
        let lazy = run(0);
        let eager = run(1);
        for (a, b) in eager.iter().zip(&lazy) {
            assert!((a - b).abs() < 1e-6, "sweep diverged: {a} vs {b}");
        }
    }

    #[test]
    fn sweep_warm_starts_and_reports_engine_stats() {
        let (mut m, vars) = band_lp(60, 5, 0x5EED);
        let nnz_expected = {
            let mat = super::SparseMatrix::from_model(&m);
            mat.nnz() as u64
        };
        let o = opts();
        let mut batch = BatchSolver::new(&mut m);
        let mut last = None;
        for k in 0..8 {
            let e = LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0 + k as f64 * 0.1)), 0.0);
            let sense = if k % 2 == 0 {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            last = Some(batch.solve(sense, e, &o).expect("solves"));
        }
        let stats = batch.stats();
        assert!(stats.warm_hits >= 6, "expected warm hits, got {stats:?}");
        let sol = last.expect("at least one solve");
        assert_eq!(sol.stats.nnz, nnz_expected, "nnz not reported");
        assert!(sol.stats.eta_len > 0, "eta length not reported");
    }

    #[test]
    fn large_band_problem_solves_within_pivot_budget() {
        // A conv-window-sized skeleton: 220 rows, bandwidth 7. The dense
        // engine pays O(m·ncols) per pivot here; the sparse engine must
        // still agree with it exactly.
        let (m, _) = band_lp(220, 7, 0xC06);
        let sparse = m.solve_with(&opts()).expect("sparse solves");
        let dense = m
            .solve_with(&SolveOptions {
                engine: Engine::Dense,
                ..Default::default()
            })
            .expect("dense solves");
        assert_close(sparse.objective, dense.objective);
    }
}
