//! Sparse revised simplex: the default LP engine family.
//!
//! Where the dense engine ([`crate::simplex`]) maintains the whole
//! `B⁻¹·[A | I | I]` tableau explicitly — making every pivot O(m·n)
//! regardless of how sparse the constraint matrix is — this engine keeps the
//! problem data immutable and factorized:
//!
//! * the constraint rows are compiled **once** per model into a [`Skeleton`]:
//!   the structural columns of `A` in compressed-sparse-column form plus the
//!   per-row slack bounds, shared (`Arc`) across branch-and-bound nodes and
//!   resident sweeps. Under [`Engine::Lu`] the skeleton also performs
//!   **range-row folding**: an adjacent `≤`/`≥` pair over identical terms
//!   (the `[A | I]` box constraints of the ITNE encoding) becomes one row
//!   whose slack carries *both* bounds, halving the working basis for those
//!   rows instead of spending a basis column on each side;
//! * `B⁻¹` is never formed. Under [`Engine::Lu`] it is a **sparse LU
//!   factorization** of the basis ([`crate::lu`]: static Markowitz ordering,
//!   threshold partial pivoting) plus a hybrid update scheme: a pivot lands
//!   as a **Forrest–Tomlin column replacement** inside the factors when its
//!   `U`-tail is short (the factors stay exact and the representation does
//!   not grow) and as a product-form eta on top of them otherwise. A fresh
//!   solve starts from the trivial `diag(±1)` slack basis, whose FTRAN and
//!   BTRAN are pure sign flips — so the certifier's tens of thousands of
//!   short solves never pay for a factorization at all. Under
//!   [`Engine::Eta`] it is the PR 5 pure product-form eta file, kept as a
//!   differential-testing reference. Systems with `B` are solved by running
//!   a vector through the representation — FTRAN for `w = B⁻¹·a` (the
//!   entering column of the ratio test), BTRAN for `y = c_B·B⁻¹` (the dual
//!   prices behind reduced costs);
//! * pricing is **candidate-list partial pricing** with two ranking rules
//!   ([`Pricing`]): the largest-reduced-cost Dantzig scan (the default —
//!   cheapest per pivot, which wins on the short-run-dominated workload) or
//!   devex reference-framework weights (`d_j²/w_j`). A full O(ncols) scan
//!   runs only to (re)fill the candidate list; ordinary iterations re-price
//!   just the candidates. Bland's anti-cycling rule falls back to a full
//!   first-eligible scan, exactly like the dense engine;
//! * the factorization is **refreshed on measured fill growth**. The eta
//!   engine refactorizes on a short pivot budget (its whole representation
//!   *is* the file). The LU engine refactorizes only when its update file's
//!   accumulated fill outgrows twice the factors' own non-zeros (with a
//!   floor that lets short solves finish entirely on the trivial basis plus
//!   etas) — i.e. cadence keyed off observed fill growth, not a fixed small
//!   constant. Refactorization also recomputes the basic values from the
//!   original data, resetting accumulated round-off.
//!
//! Per-iteration cost is therefore one BTRAN + a handful of sparse dot
//! products + one FTRAN + O(m) value updates, instead of an O(m·ncols) dense
//! tableau sweep — and on long pivot runs the LU engine's solves stay short
//! where the eta file used to degrade into constant refactorization.
//!
//! Semantics (two-phase method, bounded variables, bound flips, tolerances,
//! ratio-test tie-breaking, pricing→Bland switching) deliberately mirror the
//! dense engine; the proptests run every random skeleton through all three
//! engines and assert identical optima.

use std::sync::Arc;

use crate::error::SolveError;
use crate::kernel;
use crate::lu::LuFactors;
use crate::model::{Cmp, Model, Sense};
use crate::options::{Engine, Pricing, SolveOptions, TelemetryClock};
use crate::simplex::{
    finish_values, initial_value, slack_bounds, solve_unconstrained, Basis, ColState,
    EngineCounters, Resident, ResolveOutcome, WarmResidentOutcome,
};
use crate::{DualCertificate, Solution};

const INF: f64 = f64::INFINITY;

/// Immutable compressed-sparse-column storage of the structural constraint
/// matrix `A` (m rows × n structural columns). Built once per [`Skeleton`];
/// slack and artificial columns are implicit unit vectors and never stored.
#[derive(Clone, Debug)]
pub(crate) struct SparseMatrix {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Builds the CSC form of the given term rows. Entries within a column
    /// are ordered by row index; exact zeros are dropped.
    pub(crate) fn from_rows(n: usize, rows: &[&[(usize, f64)]]) -> Self {
        let m = rows.len();
        let mut col_ptr = vec![0usize; n + 1];
        for row in rows {
            for &(v, c) in *row {
                if c != 0.0 {
                    col_ptr[v + 1] += 1;
                }
            }
        }
        for j in 0..n {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = col_ptr[n];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        let mut cursor = col_ptr.clone();
        for (r, row) in rows.iter().enumerate() {
            for &(v, c) in *row {
                if c != 0.0 {
                    let k = cursor[v];
                    row_idx[k] = r;
                    values[k] = c;
                    cursor[v] += 1;
                }
            }
        }
        SparseMatrix {
            nrows: m,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// CSC form of `model`'s constraint rows, one internal row per model row.
    #[cfg(test)]
    pub(crate) fn from_model(model: &Model) -> Self {
        let rows: Vec<&[(usize, f64)]> = model.rows.iter().map(|r| r.terms.as_slice()).collect();
        Self::from_rows(model.cols.len(), &rows)
    }

    fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Column `j` as parallel `(row indices, values)` slices — the shape the
    /// chunked pricing kernel consumes directly.
    fn col_slices(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        (&self.row_idx[lo..hi], &self.values[lo..hi])
    }

    fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Structural non-zero count.
    pub(crate) fn nnz(&self) -> usize {
        self.values.len()
    }
}

/// Where an internal row came from in the model.
#[derive(Copy, Clone, Debug)]
enum RowOrigin {
    /// Internal row `k` is model row `i`, slack bounds from its comparator.
    Single(usize),
    /// Internal row `k` folds the adjacent model pair `a·x ≤ rhs_le` (row
    /// `le`) and `a·x ≥ rhs_ge` (row `ge`) over *identical* terms into one
    /// row `a·x + s = rhs_le` with `s ∈ [0, rhs_le − rhs_ge]` — a range row
    /// whose slack carries both sides as variable bounds.
    Range { le: usize, ge: usize },
}

/// The compiled constraint skeleton one sparse solve (or a whole
/// branch-and-bound tree / resident sweep over one model) works against:
/// the CSC matrix of internal rows, their right-hand sides and slack bounds,
/// and the mapping back to model rows for dual expansion.
///
/// Folding (LU engine only) is purely an internal reformulation: primal
/// values, objective, and the *expanded* duals are exactly what the unfolded
/// problem produces, which is what keeps the certcheck contract intact.
pub(crate) struct Skeleton {
    mat: SparseMatrix,
    rhs: Vec<f64>,
    slack_lo: Vec<f64>,
    slack_hi: Vec<f64>,
    origin: Vec<RowOrigin>,
    m_model: usize,
}

impl Skeleton {
    /// Compiles `model`'s rows. With `fold` on, adjacent `≤`/`≥` pairs over
    /// identical terms with `rhs_le ≥ rhs_ge` become range rows; a *crossed*
    /// pair (`rhs_le < rhs_ge`, trivially infeasible) is left unfolded so
    /// phase 1 reports infeasibility exactly like the other engines.
    pub(crate) fn build(model: &Model, fold: bool) -> Self {
        let m_model = model.rows.len();
        let mut origin = Vec::with_capacity(m_model);
        let mut rhs = Vec::with_capacity(m_model);
        let mut slack_lo = Vec::with_capacity(m_model);
        let mut slack_hi = Vec::with_capacity(m_model);
        let mut rep_rows: Vec<&[(usize, f64)]> = Vec::with_capacity(m_model);
        let mut r = 0;
        while r < m_model {
            if fold && r + 1 < m_model {
                let pair = match (model.rows[r].cmp, model.rows[r + 1].cmp) {
                    (Cmp::Le, Cmp::Ge) => Some((r, r + 1)),
                    (Cmp::Ge, Cmp::Le) => Some((r + 1, r)),
                    _ => None,
                };
                if let Some((le, ge)) = pair {
                    let (lrow, grow) = (&model.rows[le], &model.rows[ge]);
                    if lrow.terms == grow.terms && lrow.rhs >= grow.rhs {
                        origin.push(RowOrigin::Range { le, ge });
                        rhs.push(lrow.rhs);
                        slack_lo.push(0.0);
                        slack_hi.push(lrow.rhs - grow.rhs);
                        rep_rows.push(&lrow.terms);
                        r += 2;
                        continue;
                    }
                }
            }
            let row = &model.rows[r];
            let (l, h) = slack_bounds(row.cmp);
            origin.push(RowOrigin::Single(r));
            rhs.push(row.rhs);
            slack_lo.push(l);
            slack_hi.push(h);
            rep_rows.push(&row.terms);
            r += 1;
        }
        let mat = SparseMatrix::from_rows(model.cols.len(), &rep_rows);
        Skeleton {
            mat,
            rhs,
            slack_lo,
            slack_hi,
            origin,
            m_model,
        }
    }

    /// Internal row count (`≤` the model's row count when folding fired).
    pub(crate) fn m(&self) -> usize {
        self.origin.len()
    }

    /// The representative model-row terms of internal row `k` (a range row's
    /// two sides have identical terms by construction).
    fn row_terms<'a>(&self, model: &'a Model, k: usize) -> &'a [(usize, f64)] {
        match self.origin[k] {
            RowOrigin::Single(i) => &model.rows[i].terms,
            RowOrigin::Range { le, .. } => &model.rows[le].terms,
        }
    }

    /// Expands internal duals to model row order. A range row's dual lands
    /// on the side it prices: `y ≤ 0` is a `≤`-shadow price (internal slack
    /// at its lower bound), `y > 0` a `≥`-shadow price (slack at its upper
    /// bound, where the bound `rhs_le − (rhs_le − rhs_ge) = rhs_ge` is the
    /// binding one); the partner row gets `0`. Under the checker's
    /// sign-clamping (`≤` rows keep `min(y,0)`, `≥` rows `max(y,0)`) the
    /// expanded vector certifies exactly the internal Lagrangian bound.
    fn expand_duals(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0f64; self.m_model];
        for (k, o) in self.origin.iter().enumerate() {
            match *o {
                RowOrigin::Single(i) => out[i] = y[k],
                RowOrigin::Range { le, ge } => {
                    if y[k] <= 0.0 {
                        out[le] = y[k];
                    } else {
                        out[ge] = y[k];
                    }
                }
            }
        }
        out
    }
}

/// The product-form-of-inverse representation of `B⁻¹` (or, under
/// [`Engine::Lu`], of the *update* since the last LU refactorization) as a
/// sequence of elementary eta matrices: each pivot appends one eta, and
/// systems are solved by running a vector through the file — forward for
/// FTRAN, backward for BTRAN. Everything is stored in flat contiguous arrays
/// so both passes stream linearly through memory (the engine's innermost
/// loop — one of each per simplex iteration).
#[derive(Clone, Debug)]
struct EtaFile {
    /// Pivot row of each eta.
    rows: Vec<usize>,
    /// Pivot element of each eta.
    pivots: Vec<f64>,
    /// CSR-style extents: eta `k`'s off-pivot entries are `ptr[k]..ptr[k+1]`.
    ptr: Vec<usize>,
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl EtaFile {
    fn new() -> Self {
        EtaFile {
            rows: Vec::new(),
            pivots: Vec::new(),
            ptr: vec![0],
            idx: Vec::new(),
            val: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.rows.clear();
        self.pivots.clear();
        self.ptr.clear();
        self.ptr.push(0);
        self.idx.clear();
        self.val.clear();
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    /// Total stored entries (pivots + off-pivot fill), the fill-in measure
    /// behind the refactorization trigger.
    fn nnz(&self) -> usize {
        self.rows.len() + self.idx.len()
    }

    /// Appends a fill-free eta with a single diagonal `pivot` at `row`
    /// (seeds the `diag(±1)` starting basis in O(1), no scratch column).
    fn push_unit(&mut self, row: usize, pivot: f64) {
        self.rows.push(row);
        self.pivots.push(pivot);
        self.ptr.push(self.idx.len());
    }

    /// Appends the eta of a pivot at `row` on the FTRAN'd column `w`.
    fn push_from_column(&mut self, row: usize, w: &[f64]) {
        for (i, &v) in w.iter().enumerate() {
            if i != row && v != 0.0 {
                self.idx.push(i);
                self.val.push(v);
            }
        }
        self.rows.push(row);
        self.pivots.push(w[row]);
        self.ptr.push(self.idx.len());
    }

    /// `v ← B⁻¹·v` (apply etas first-to-last). The off-pivot scatter runs
    /// through the chunked kernel — bit-identical to the scalar loop, since
    /// each target row is written exactly once per eta.
    fn ftran(&self, v: &mut [f64]) {
        for k in 0..self.rows.len() {
            let t = v[self.rows[k]];
            if t != 0.0 {
                let t = t / self.pivots[k];
                v[self.rows[k]] = t;
                let (e0, e1) = (self.ptr[k], self.ptr[k + 1]);
                kernel::scatter_sub(v, &self.idx[e0..e1], &self.val[e0..e1], t);
            }
        }
    }

    /// `yᵀ ← yᵀ·B⁻¹` (apply etas last-to-first). The gather reduction uses
    /// the chunked kernel's fixed-order reduction tree (see [`crate::kernel`]).
    fn btran(&self, y: &mut [f64]) {
        for k in (0..self.rows.len()).rev() {
            let (e0, e1) = (self.ptr[k], self.ptr[k + 1]);
            let s = y[self.rows[k]] - kernel::dot_gather(y, &self.idx[e0..e1], &self.val[e0..e1]);
            y[self.rows[k]] = s / self.pivots[k];
        }
    }
}

/// A Forrest–Tomlin column replacement rewrites every stored `U` entry past
/// the leaving position, so its cost is the tail size, not the spike size.
/// Replacements whose tail is longer than this go through a product-form
/// eta instead (cost proportional to the spike alone); short-tail
/// replacements — the common case on the slack-heavy certifier bases, where
/// the leaving column sits at or near the end of `U` — stay in-place and
/// keep the factors exact with zero file growth.
const FT_TAIL_MAX: usize = 32;

/// The basis-inverse representation, per engine. Under [`Engine::Eta`]
/// every pivot since the solve began lives in a product-form eta file.
/// Under [`Engine::Lu`] the LU factors carry the basis: cheap pivots fold
/// in via Forrest–Tomlin column replacement (factors stay exact, nothing
/// grows), expensive ones append to a product-form eta file *on top of* the
/// factors until the next refactorization discards it.
// One `Inverse` exists per solver core, so the variant-size skew costs a few
// hundred bytes total; boxing `LuFactors` would instead put a pointer chase
// on every FTRAN/BTRAN of the hot path.
#[allow(clippy::large_enum_variant)]
enum Inverse {
    Eta(EtaFile),
    Lu { lu: LuFactors, etas: EtaFile },
}

impl Inverse {
    /// `v ← B⁻¹·v`.
    fn ftran(&mut self, v: &mut [f64]) {
        match self {
            Inverse::Eta(etas) => etas.ftran(v),
            Inverse::Lu { lu, etas } => {
                lu.ftran(v);
                etas.ftran(v);
            }
        }
    }

    /// `yᵀ ← yᵀ·B⁻¹`.
    fn btran(&mut self, y: &mut [f64]) {
        match self {
            Inverse::Eta(etas) => etas.btran(y),
            Inverse::Lu { lu, etas } => {
                etas.btran(y);
                lu.btran(y);
            }
        }
    }

    /// Folds the pivot at `row` into the inverse: the eta engine appends the
    /// pivot eta of the FTRAN'd column `w`; the LU engine replaces the
    /// column in the factors (Forrest–Tomlin, using the spike its FTRAN
    /// saved) when that is cheap, and appends a product-form eta otherwise.
    /// Once an eta exists the factors no longer see later pivots, so every
    /// subsequent fold must stay in the file until a refactorization.
    /// Returns `false` when the updated factors are numerically unusable and
    /// the caller must refactorize before the next solve.
    fn fold_pivot(&mut self, row: usize, w: &[f64], pivot_tol: f64) -> bool {
        match self {
            Inverse::Eta(etas) => {
                etas.push_from_column(row, w);
                true
            }
            Inverse::Lu { lu, etas } => {
                if !lu.is_trivial() && etas.len() == 0 && lu.replace_cost(row) <= FT_TAIL_MAX {
                    lu.replace_column(row, pivot_tol)
                } else {
                    etas.push_from_column(row, w);
                    true
                }
            }
        }
    }

    /// Updates applied since the last refactorization (eta-file length for
    /// the eta engine, column replacements plus file etas for the LU
    /// engine).
    fn update_len(&self) -> usize {
        match self {
            Inverse::Eta(etas) => etas.len(),
            Inverse::Lu { lu, etas } => lu.update_len() + etas.len(),
        }
    }

    /// Stored fill accumulated since the last refactorization — the
    /// measured growth the refactorization trigger watches.
    fn update_nnz(&self) -> usize {
        match self {
            Inverse::Eta(etas) => etas.nnz(),
            Inverse::Lu { lu, etas } => lu.update_fill() + etas.nnz(),
        }
    }
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Progress { degenerate: bool },
}

/// Devex weights above this are reset to the unit framework: the weights are
/// only *relative* pivot-steering scores, and letting them grow unbounded
/// eventually drowns the ranking in round-off.
const DEVEX_RESET: f64 = 1e12;

/// The revised-simplex working state. Column index space matches the dense
/// engine: `[0, n)` structural, `[n, n+m)` slack, `[n+m, ncols)` artificial
/// (`m` counts *internal* rows — range folding may make it smaller than the
/// model's row count).
struct Core {
    skel: Arc<Skeleton>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    xval: Vec<f64>,
    state: Vec<ColState>,
    /// Column occupying each basis row (`B⁻¹·A_basis[r] = e_r`).
    basis: Vec<usize>,
    inverse: Inverse,
    /// `(row, sign)` of each artificial column, in column order.
    arts: Vec<(usize, f64)>,
    n: usize,
    m: usize,
    art_start: usize,
    ncols: usize,
    /// Costs of the current phase, length `ncols`.
    costs: Vec<f64>,
    /// FTRAN scratch (entering column in basis coordinates), length `m`.
    w: Vec<f64>,
    /// BTRAN scratch (dual prices), length `m`.
    y: Vec<f64>,
    /// Partial-pricing candidate list.
    candidates: Vec<usize>,
    pricing: Pricing,
    /// Devex reference-framework weights, length `ncols` (all `≥ 1`).
    devex: Vec<f64>,
    clock: Option<TelemetryClock>,
    pivots: u64,
    refactorizations: u64,
    eta_peak: usize,
    pivots_since_refactor: u64,
    refactor_every: u64,
    eta_nnz_cap: usize,
    /// A Forrest–Tomlin update produced an unusable diagonal: the factors
    /// must be rebuilt before the next FTRAN/BTRAN.
    needs_refactor: bool,
    refactor_ns: u64,
    solve_ns: u64,
    lu_fill: u64,
    feas_tol: f64,
    opt_tol: f64,
    pivot_tol: f64,
}

impl Core {
    /// Scatters column `j` of `[A | I | ±I]` into the zeroed buffer `out`.
    fn scatter_col(mat: &SparseMatrix, arts: &[(usize, f64)], n: usize, j: usize, out: &mut [f64]) {
        let m = mat.nrows;
        if j < n {
            for (r, a) in mat.col(j) {
                out[r] = a;
            }
        } else if j < n + m {
            out[j - n] = 1.0;
        } else {
            let (r, s) = arts[j - n - m];
            out[r] = s;
        }
    }

    fn clock_now(&self) -> Option<u64> {
        self.clock.as_ref().map(|c| c.now_ns())
    }

    fn add_solve_time(&mut self, t0: Option<u64>) {
        if let (Some(c), Some(t0)) = (&self.clock, t0) {
            self.solve_ns += c.now_ns().saturating_sub(t0);
        }
    }

    /// `w ← B⁻¹·A_q` (the entering column for ratio test and eta append).
    fn compute_w(&mut self, q: usize) {
        self.w.fill(0.0);
        Self::scatter_col(&self.skel.mat, &self.arts, self.n, q, &mut self.w);
        let t0 = self.clock_now();
        self.inverse.ftran(&mut self.w);
        self.add_solve_time(t0);
    }

    /// `y ← c_B·B⁻¹` (the dual prices the reduced costs are measured
    /// against).
    fn compute_y(&mut self) {
        for r in 0..self.m {
            self.y[r] = self.costs[self.basis[r]];
        }
        let t0 = self.clock_now();
        self.inverse.btran(&mut self.y);
        self.add_solve_time(t0);
    }

    /// Reduced cost `d_j = c_j − y·A_j` via one sparse dot product, chunked
    /// through the pricing kernel's fixed-order reduction tree.
    fn reduced_cost(&self, j: usize) -> f64 {
        let mut d = self.costs[j];
        if j < self.n {
            let (rows, vals) = self.skel.mat.col_slices(j);
            d -= kernel::dot_gather(&self.y, rows, vals);
        } else if j < self.art_start {
            d -= self.y[j - self.n];
        } else {
            let (r, s) = self.arts[j - self.art_start];
            d -= s * self.y[r];
        }
        d
    }

    /// Entering direction and score of a non-basic column under reduced cost
    /// `dj`, or `None` when the column cannot improve (fixed, basic, or
    /// resting on the profitable side).
    fn direction(&self, j: usize, dj: f64) -> Option<(f64, f64)> {
        match self.state[j] {
            ColState::Basic => None,
            ColState::AtLower => {
                if self.lo[j] == self.hi[j] {
                    None
                } else {
                    Some((1.0, -dj))
                }
            }
            ColState::AtUpper => {
                if self.lo[j] == self.hi[j] {
                    None
                } else {
                    Some((-1.0, dj))
                }
            }
            ColState::Free => {
                if dj < 0.0 {
                    Some((1.0, -dj))
                } else {
                    Some((-1.0, dj))
                }
            }
        }
    }

    /// Pricing rank of an eligible column: plain `|d_j|` under Dantzig,
    /// `d_j²/w_j` under devex. Eligibility (`score > opt_tol`) is shared, so
    /// the rule steers the pivot path but never changes termination.
    fn rank(&self, j: usize, score: f64) -> f64 {
        match self.pricing {
            Pricing::Dantzig => score,
            Pricing::Devex => score * score / self.devex[j],
        }
    }

    /// Candidate-list cap: a small slice of the column space, enough to keep
    /// high-quality entering choices without a full scan per iteration.
    fn candidate_cap(limit: usize) -> usize {
        (limit / 8).clamp(8, 64)
    }

    /// Chooses an entering column, returning `(col, direction)`. Expects
    /// `self.y` to be current.
    ///
    /// Non-Bland mode prices the candidate list first and falls back to a
    /// full scan (which also refills the list) only when every candidate has
    /// gone stale. Bland mode always runs the full first-eligible scan its
    /// anti-cycling guarantee requires.
    fn price(&mut self, bland: bool, phase2: bool) -> Option<(usize, f64)> {
        let limit = if phase2 { self.art_start } else { self.ncols };
        if bland {
            for j in 0..limit {
                if self.state[j] == ColState::Basic {
                    continue;
                }
                let dj = self.reduced_cost(j);
                if let Some((dir, score)) = self.direction(j, dj) {
                    if score > self.opt_tol {
                        return Some((j, dir));
                    }
                }
            }
            return None;
        }

        // Minor iteration: re-price only the candidates, dropping columns
        // that entered the basis in place (no allocation on the hot path;
        // swap_remove keeps the pass deterministic run-to-run).
        let mut best: Option<(usize, f64, f64)> = None;
        let mut i = 0;
        while i < self.candidates.len() {
            let j = self.candidates[i];
            if j >= limit || self.state[j] == ColState::Basic {
                self.candidates.swap_remove(i);
                continue;
            }
            let dj = self.reduced_cost(j);
            if let Some((dir, score)) = self.direction(j, dj) {
                if score > self.opt_tol {
                    let rank = self.rank(j, score);
                    match best {
                        Some((_, _, s)) if s >= rank => {}
                        _ => best = Some((j, dir, rank)),
                    }
                }
            }
            i += 1;
        }
        if let Some((j, dir, _)) = best {
            return Some((j, dir));
        }

        // Major iteration: full scan, refill the candidate list with the
        // highest-ranked eligible columns (deterministic order).
        let mut scored: Vec<(usize, f64, f64)> = Vec::new();
        for j in 0..limit {
            if self.state[j] == ColState::Basic {
                continue;
            }
            let dj = self.reduced_cost(j);
            if let Some((dir, score)) = self.direction(j, dj) {
                if score > self.opt_tol {
                    scored.push((j, dir, self.rank(j, score)));
                }
            }
        }
        if scored.is_empty() {
            self.candidates.clear();
            return None;
        }
        // total_cmp, not partial_cmp: a NaN rank must not silently collapse
        // the ordering and steer pivot choice (lint rule float-cmp). Ranks
        // here are positive and finite, for which the two orders coincide.
        scored.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        scored.truncate(Self::candidate_cap(limit));
        self.candidates = scored.iter().map(|&(j, _, _)| j).collect();
        let (j, dir, _) = scored[0];
        Some((j, dir))
    }

    /// Devex weight maintenance for a basis change at row `r` with entering
    /// column `q` (expects `w = B⁻¹·A_q` and must run *before* the basis
    /// heading mutates). This is the *cheap* reference-framework variant:
    /// only the leaving variable's weight is refreshed
    /// (`w_p ← max(w_q/α_r², 1)`, the exact devex value for the column that
    /// just left), other non-basic weights keep their last value until the
    /// framework resets. The full Forrest–Goldfarb update needs the pivot
    /// row `e_r·B⁻¹N` — an extra BTRAN plus a pricing pass per pivot, which
    /// measured ~1.8× slower end-to-end on the Table I nets for a ~4% pivot
    /// reduction. Stale weights still bias pricing toward columns with
    /// historically large tableau entries, which is devex's point.
    fn update_devex(&mut self, r: usize, q: usize) {
        let alpha_r = self.w[r];
        if alpha_r == 0.0 {
            return;
        }
        let wq = self.devex[q].max(1.0);
        self.devex[self.basis[r]] = (wq / (alpha_r * alpha_r)).max(1.0);
        if self.devex[self.basis[r]] > DEVEX_RESET {
            self.devex.fill(1.0);
        }
    }

    /// One simplex iteration: price, FTRAN, ratio test, then bound-flip or
    /// pivot. The ratio-test semantics (tolerances, largest-pivot
    /// tie-breaking, bound-to-bound flips) mirror the dense engine exactly.
    fn step(&mut self, bland: bool, phase2: bool) -> StepOutcome {
        self.compute_y();
        let Some((q, dir)) = self.price(bland, phase2) else {
            return StepOutcome::Optimal;
        };
        self.compute_w(q);

        let mut limit = if self.lo[q].is_finite() && self.hi[q].is_finite() {
            self.hi[q] - self.lo[q]
        } else {
            INF
        };
        let mut leave: Option<(usize, bool)> = None;
        let mut leave_piv = 0.0f64;
        for r in 0..self.m {
            let a = self.w[r] * dir;
            let b = self.basis[r];
            let (room, to_lower) = if a > self.pivot_tol {
                (self.xval[b] - self.lo[b], true)
            } else if a < -self.pivot_tol {
                (self.hi[b] - self.xval[b], false)
            } else {
                continue;
            };
            if !room.is_finite() {
                continue;
            }
            let ratio = room.max(0.0) / a.abs();
            let a_mag = a.abs();
            if ratio < limit - 1e-12 || (ratio < limit + 1e-12 && a_mag > leave_piv) {
                limit = ratio.min(limit);
                leave = Some((r, to_lower));
                leave_piv = a_mag;
            }
        }

        if limit.is_infinite() {
            return StepOutcome::Unbounded;
        }

        let step = dir * limit;
        match leave {
            None => {
                for r in 0..self.m {
                    let a = self.w[r];
                    if a != 0.0 {
                        let b = self.basis[r];
                        self.xval[b] -= step * a;
                    }
                }
                self.state[q] = if dir > 0.0 {
                    ColState::AtUpper
                } else {
                    ColState::AtLower
                };
                self.xval[q] = if dir > 0.0 { self.hi[q] } else { self.lo[q] };
                StepOutcome::Progress { degenerate: false }
            }
            Some((r, to_lower)) => {
                if self.pricing == Pricing::Devex {
                    self.update_devex(r, q);
                }
                for i in 0..self.m {
                    let a = self.w[i];
                    if a != 0.0 {
                        let b = self.basis[i];
                        self.xval[b] -= step * a;
                    }
                }
                self.xval[q] += step;
                let leaving = self.basis[r];
                // Snap the leaving variable exactly to its bound to stop
                // feasibility drift from accumulating.
                self.xval[leaving] = if to_lower {
                    self.lo[leaving]
                } else {
                    self.hi[leaving]
                };
                self.state[leaving] = if to_lower {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
                self.apply_pivot(r, q);
                StepOutcome::Progress {
                    degenerate: limit <= 1e-10,
                }
            }
        }
    }

    /// Folds the pivot at row `r` with entering column `q` into the inverse
    /// (expects `self.w = B⁻¹·A_q`, freshly FTRAN'd) and updates the heading
    /// and counters. If the update leaves the factors numerically unusable
    /// (a near-singular Forrest–Tomlin diagonal), the basis heading is still
    /// advanced and a refactorization is forced before the next solve.
    fn apply_pivot(&mut self, r: usize, q: usize) {
        debug_assert!(self.w[r].abs() > 0.0, "zero pivot");
        if !self.inverse.fold_pivot(r, &self.w, self.pivot_tol) {
            self.needs_refactor = true;
        }
        self.eta_peak = self.eta_peak.max(self.inverse.update_len());
        self.state[q] = ColState::Basic;
        self.basis[r] = q;
        self.pivots += 1;
        self.pivots_since_refactor += 1;
    }

    fn should_refactorize(&self) -> bool {
        self.needs_refactor
            || self.pivots_since_refactor >= self.refactor_every
            || self.inverse.update_nnz() > self.eta_nnz_cap
    }

    /// Rebuilds the basis-inverse representation from the original data for
    /// the current basic column set, then recomputes the basic values
    /// exactly. Returns `false` when the basis is singular with respect to
    /// the matrix or the recomputed point is primal infeasible beyond
    /// tolerance (warm restores reject; mid-solve callers treat it as a
    /// numerical failure).
    fn refactorize(&mut self) -> bool {
        let t0 = self.clock_now();
        let rebuilt = match self.inverse {
            Inverse::Eta(_) => self.refactorize_eta(),
            Inverse::Lu { .. } => self.refactorize_lu(),
        };
        let ok = rebuilt && {
            self.refactorizations += 1;
            self.pivots_since_refactor = 0;
            self.needs_refactor = false;
            self.recompute_basic_values()
        };
        if let (Some(c), Some(t0)) = (&self.clock, t0) {
            self.refactor_ns += c.now_ns().saturating_sub(t0);
        }
        ok
    }

    /// The current basic columns in elimination order: unit (slack /
    /// artificial) columns first — they pivot with no fill — then structural
    /// columns by ascending non-zero count (static Markowitz-style ordering).
    fn elimination_order(&self) -> Vec<usize> {
        let mut unit: Vec<usize> = self
            .basis
            .iter()
            .copied()
            .filter(|&j| j >= self.n)
            .collect();
        unit.sort_unstable();
        let mut structural: Vec<usize> =
            self.basis.iter().copied().filter(|&j| j < self.n).collect();
        structural.sort_by_key(|&j| (self.skel.mat.col_nnz(j), j));
        unit.extend(structural);
        unit
    }

    /// Eta-engine refactorization: Gauss-Jordan elimination of the basis
    /// columns back into a fresh eta file. Within each column the pivot row
    /// is the largest remaining magnitude, ties to the lowest row. The
    /// row↔column pairing may change; only the column *set* is meaningful,
    /// and the heading is rebuilt to match.
    fn refactorize_eta(&mut self) -> bool {
        let m = self.m;
        // Extract the file so the rebuild can FTRAN through it while
        // scattering into `self.w` (disjoint borrows of `self`).
        let mut etas = match std::mem::replace(&mut self.inverse, Inverse::Eta(EtaFile::new())) {
            Inverse::Eta(e) => e,
            Inverse::Lu { .. } => unreachable!("eta refactorization of an LU inverse"),
        };
        etas.clear();
        let order = self.elimination_order();
        let mut eliminated = vec![false; m];
        let mut new_basis = vec![usize::MAX; m];
        let mut ok = true;
        for &j in &order {
            self.w.fill(0.0);
            Self::scatter_col(&self.skel.mat, &self.arts, self.n, j, &mut self.w);
            etas.ftran(&mut self.w);
            let mut best: Option<(usize, f64)> = None;
            for (r, &done) in eliminated.iter().enumerate() {
                if done {
                    continue;
                }
                let a = self.w[r].abs();
                if best.is_none_or(|(_, mag)| a > mag) {
                    best = Some((r, a));
                }
            }
            let Some((r, mag)) = best else {
                ok = false;
                break;
            };
            if mag <= self.pivot_tol {
                ok = false;
                break;
            }
            etas.push_from_column(r, &self.w);
            eliminated[r] = true;
            new_basis[r] = j;
        }
        self.eta_peak = self.eta_peak.max(etas.len());
        self.inverse = Inverse::Eta(etas);
        if ok {
            self.basis = new_basis;
        }
        ok
    }

    /// LU-engine refactorization: a fresh sparse LU factorization of the
    /// basis matrix ([`LuFactors::factorize`] — threshold partial pivoting
    /// with the Markowitz row-weight tie-break), discarding the update eta
    /// file. The fill trigger (`eta_nnz_cap`) is re-derived from the
    /// *measured* fill of these factors, so cadence tracks the basis the
    /// solve actually has rather than a tuned constant.
    fn refactorize_lu(&mut self) -> bool {
        let m = self.m;
        let order = self.elimination_order();
        let mut col_ptr = Vec::with_capacity(m + 1);
        let mut entries: Vec<(usize, f64)> = Vec::new();
        let mut row_weight = vec![0usize; m];
        col_ptr.push(0);
        for &j in &order {
            if j < self.n {
                for (r, a) in self.skel.mat.col(j) {
                    entries.push((r, a));
                    row_weight[r] += 1;
                }
            } else if j < self.art_start {
                let r = j - self.n;
                entries.push((r, 1.0));
                row_weight[r] += 1;
            } else {
                let (r, s) = self.arts[j - self.art_start];
                entries.push((r, s));
                row_weight[r] += 1;
            }
            col_ptr.push(entries.len());
        }
        let Some(lu) = LuFactors::factorize(m, &col_ptr, &entries, &row_weight, self.pivot_tol)
        else {
            return false;
        };
        let mut new_basis = vec![usize::MAX; m];
        for (k, &r) in lu.pivot_rows().iter().enumerate() {
            new_basis[r] = order[k];
        }
        self.basis = new_basis;
        self.lu_fill = self.lu_fill.max(lu.nnz() as u64);
        self.eta_nnz_cap = lu_growth_cap(&lu);
        self.inverse = Inverse::Lu {
            lu,
            etas: EtaFile::new(),
        };
        true
    }

    /// `x_B ← B⁻¹·(b − N·x_N)` from the original data, clamping round-off
    /// within the feasibility tolerance. Returns `false` on a violation
    /// beyond tolerance.
    fn recompute_basic_values(&mut self) -> bool {
        self.w.fill(0.0);
        self.w[..self.m].copy_from_slice(&self.skel.rhs);
        for j in 0..self.ncols {
            if self.state[j] == ColState::Basic {
                continue;
            }
            let x = self.xval[j];
            if x == 0.0 {
                continue;
            }
            if j < self.n {
                for (r, a) in self.skel.mat.col(j) {
                    self.w[r] -= a * x;
                }
            } else if j < self.art_start {
                self.w[j - self.n] -= x;
            } else {
                let (r, s) = self.arts[j - self.art_start];
                self.w[r] -= s * x;
            }
        }
        self.inverse.ftran(&mut self.w);
        for r in 0..self.m {
            let b = self.basis[r];
            let v = self.w[r];
            if v < self.lo[b] - self.feas_tol || v > self.hi[b] + self.feas_tol {
                return false;
            }
            self.xval[b] = v.clamp(self.lo[b], self.hi[b]);
        }
        true
    }

    /// Runs the simplex loop for one phase until optimality, refreshing the
    /// factorization whenever the trigger fires.
    fn optimize(&mut self, phase2: bool, cap: u64) -> Result<(), SolveError> {
        let mut degen_streak = 0u32;
        let mut bland = false;
        loop {
            if self.pivots >= cap {
                return Err(SolveError::IterationLimit);
            }
            if self.should_refactorize() && !self.refactorize() {
                return Err(SolveError::Numerical(
                    "basis became singular or infeasible at refactorization".into(),
                ));
            }
            match self.step(bland, phase2) {
                StepOutcome::Optimal => return Ok(()),
                StepOutcome::Unbounded => {
                    return if phase2 {
                        Err(SolveError::Unbounded)
                    } else {
                        Err(SolveError::Numerical("phase-1 objective unbounded".into()))
                    };
                }
                StepOutcome::Progress { degenerate } => {
                    if degenerate {
                        degen_streak += 1;
                        if degen_streak > 50 {
                            bland = true;
                        }
                    } else {
                        degen_streak = 0;
                        bland = false;
                    }
                }
            }
        }
    }

    /// Pivots basic artificial variables (all at value 0) out of the basis;
    /// rows that admit no replacement keep their frozen artificial, exactly
    /// like the dense engine. Returns `false` on an unrecoverable
    /// refactorization failure after a rejected Forrest–Tomlin update.
    fn drive_out_artificials(&mut self) -> bool {
        for r in 0..self.m {
            if self.basis[r] < self.art_start {
                continue;
            }
            // ρ = e_r·B⁻¹, so ρ·A_j is the tableau entry (r, j).
            self.y.fill(0.0);
            self.y[r] = 1.0;
            self.inverse.btran(&mut self.y);
            let mut best: Option<(usize, f64)> = None;
            for j in 0..self.art_start {
                if self.state[j] == ColState::Basic || self.lo[j] == self.hi[j] {
                    continue;
                }
                let a = self.reduced_cost_entry(j).abs();
                if a > self.pivot_tol && best.is_none_or(|(_, b)| a > b) {
                    best = Some((j, a));
                }
            }
            if let Some((j, _)) = best {
                self.compute_w(j);
                if self.w[r].abs() <= self.pivot_tol {
                    continue; // round-off disagreement; keep the frozen artificial
                }
                let leaving = self.basis[r];
                self.state[leaving] = ColState::AtLower;
                self.xval[leaving] = 0.0;
                self.apply_pivot(r, j);
                // The next row's BTRAN must not run through factors a
                // rejected update left stale.
                if self.needs_refactor && !self.refactorize() {
                    return false;
                }
            }
        }
        true
    }

    /// `ρ·A_j` where `ρ` currently sits in `self.y` (drive-out and devex
    /// helper; handles every column class because the phase-1 candidate list
    /// may hold artificials).
    fn reduced_cost_entry(&self, j: usize) -> f64 {
        if j < self.n {
            let (rows, vals) = self.skel.mat.col_slices(j);
            kernel::dot_gather(&self.y, rows, vals)
        } else if j < self.art_start {
            self.y[j - self.n]
        } else {
            let (r, s) = self.arts[j - self.art_start];
            s * self.y[r]
        }
    }

    fn set_phase1_costs(&mut self) {
        self.costs.fill(0.0);
        for c in self.costs.iter_mut().skip(self.art_start) {
            *c = 1.0;
        }
        self.devex.fill(1.0);
    }

    fn set_phase2_costs(&mut self, model: &Model) {
        self.costs.fill(0.0);
        let flip = matches!(model.sense, Some(Sense::Maximize));
        for &(v, c) in &model.objective {
            self.costs[v] += if flip { -c } else { c };
        }
        self.candidates.clear();
        self.devex.fill(1.0);
    }

    fn freeze_artificials(&mut self) {
        for j in self.art_start..self.ncols {
            self.lo[j] = 0.0;
            self.hi[j] = 0.0;
            self.xval[j] = 0.0;
        }
    }

    /// Recomputes the dual certificate at the current (phase-2-terminated)
    /// basis: one BTRAN pass for `yᵀ = c_Bᵀ·B⁻¹` plus one sparse dot product
    /// per structural column. Rows are never negated in this engine, so `y`
    /// prices the internal row orientation directly; range-folded duals are
    /// expanded back to model row order by [`Skeleton::expand_duals`].
    fn certificate(&mut self) -> DualCertificate {
        let mut y = vec![0.0f64; self.m];
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.costs[self.basis[r]];
        }
        self.inverse.btran(&mut y);
        let mut reduced = Vec::with_capacity(self.n);
        for j in 0..self.n {
            let mut d = self.costs[j];
            for (r, a) in self.skel.mat.col(j) {
                d -= y[r] * a;
            }
            reduced.push(d);
        }
        DualCertificate {
            row_duals: self.skel.expand_duals(&y),
            reduced_costs: reduced,
        }
    }

    fn counters(&self) -> EngineCounters {
        EngineCounters {
            pivots: self.pivots,
            refactorizations: self.refactorizations,
            eta_len: self.eta_peak as u64,
            refactor_time_ns: self.refactor_ns,
            ftran_btran_time_ns: self.solve_ns,
            lu_fill_nnz: self.lu_fill,
        }
    }

    fn finish(
        &mut self,
        model: &Model,
        var_bounds: &[(f64, f64)],
        emit: bool,
    ) -> Result<Solution, SolveError> {
        let cert = emit.then(|| self.certificate());
        finish_values(
            model,
            var_bounds,
            self.xval[..self.n].to_vec(),
            self.counters(),
            cert,
        )
    }

    /// Extracts a reusable [`Basis`] snapshot, or `None` when an artificial
    /// column is still basic (redundant row). `m` is the *internal* row
    /// count, so a snapshot taken under range folding only restores into an
    /// engine that folds the same way (others reject it shape-first and
    /// fall back cold).
    fn snapshot(&self) -> Option<Basis> {
        if self.basis.iter().any(|&b| b >= self.art_start) {
            return None;
        }
        Some(Basis {
            state: self.state[..self.art_start].to_vec(),
            rows: self.basis.clone(),
            n: self.n,
            m: self.m,
        })
    }
}

/// Fill-growth refactorization trigger of the LU engine: rebuild once the
/// updates have accumulated twice the stored fill of the factors themselves
/// (eta entries plus net `U` growth), with a floor sized so the certifier's
/// short solves — tens of thousands of LPs that finish within a few hundred
/// pivots — complete entirely on the trivial starting basis plus the update
/// file and never pay a factorization at all. Only genuinely long pivot
/// runs cross the trigger, and for those the cap is growth-relative, so
/// dense-ish bases refresh early instead of dragging an ever-longer
/// representation through every FTRAN/BTRAN.
fn lu_growth_cap(lu: &LuFactors) -> usize {
    (2 * lu.nnz()).max(8192)
}

/// Auto refactorization cadence. The eta engine must refresh frequently —
/// its whole inverse is the file, and refactorization replays the entire
/// basis through it. The LU engine's real trigger is measured update-file
/// fill growth against the factors (`eta_nnz_cap`, re-derived per
/// refactorization), so its pivot budget is only a drift backstop and can be
/// orders of magnitude longer.
fn refactor_budget(opts: &SolveOptions, m: usize, engine: Engine) -> u64 {
    if opts.refactor_interval > 0 {
        opts.refactor_interval
    } else if engine == Engine::Eta {
        ((m as u64) / 2).clamp(64, 256)
    } else {
        (m as u64 * 8).max(2000)
    }
}

/// Builds the initial working state (columns, resting values, slack-or-
/// artificial starting basis) for `model` under `var_bounds` against the
/// compiled `skel`. The arithmetic mirrors the dense engine's setup except
/// that rows are never negated: an artificial covering a negative residual
/// gets a `−1` coefficient, represented exactly in the starting inverse
/// (a seed eta or a `−1` LU diagonal).
fn build_core(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
    skel: Arc<Skeleton>,
) -> (Core, f64) {
    let n = model.cols.len();
    let m = skel.m();
    let tol = opts.tolerances;

    let mut lo = Vec::with_capacity(n + 2 * m);
    let mut hi = Vec::with_capacity(n + 2 * m);
    let mut xval = Vec::with_capacity(n + 2 * m);
    let mut state = Vec::with_capacity(n + 2 * m);
    for &(l, h) in var_bounds {
        let (v, s) = initial_value(l, h);
        lo.push(l);
        hi.push(h);
        xval.push(v);
        state.push(s);
    }
    for k in 0..m {
        lo.push(skel.slack_lo[k]);
        hi.push(skel.slack_hi[k]);
        xval.push(0.0); // placeholder; set below
        state.push(ColState::AtLower); // placeholder
    }

    let mut basis = Vec::with_capacity(m);
    let mut arts: Vec<(usize, f64)> = Vec::new();
    let mut art_values: Vec<f64> = Vec::new();
    let mut art_sum = 0.0;
    for k in 0..m {
        let terms = skel.row_terms(model, k);
        let activity: f64 = terms.iter().map(|&(v, c)| c * xval[v]).sum();
        let v = skel.rhs[k] - activity; // required slack value
        let sc = n + k;
        if v >= lo[sc] && v <= hi[sc] {
            xval[sc] = v;
            state[sc] = ColState::Basic;
            basis.push(sc);
        } else {
            let sv = v.clamp(lo[sc], hi[sc]);
            xval[sc] = sv;
            state[sc] = if sv == lo[sc] {
                ColState::AtLower
            } else {
                ColState::AtUpper
            };
            let resid = v - sv;
            arts.push((k, resid.signum()));
            art_values.push(resid.abs());
            art_sum += resid.abs();
            basis.push(usize::MAX); // fixed up below
        }
    }

    let art_start = n + m;
    let ncols = art_start + arts.len();
    for (k, &(r, _)) in arts.iter().enumerate() {
        lo.push(0.0);
        hi.push(INF);
        xval.push(art_values[k]);
        state.push(ColState::Basic);
        basis[r] = art_start + k;
    }

    // Starting basis B = diag(±1): the −1 artificials are inverted exactly
    // from the first iteration — one entry-free seed eta on the eta engine,
    // a −1 diagonal of the identity LU on the LU engine.
    let neg_rows: Vec<usize> = arts
        .iter()
        .filter(|&&(_, sign)| sign < 0.0)
        .map(|&(r, _)| r)
        .collect();
    let (inverse, eta_nnz_cap, lu_fill) = if opts.engine == Engine::Eta {
        let mut etas = EtaFile::new();
        for &r in &neg_rows {
            etas.push_unit(r, -1.0);
        }
        (Inverse::Eta(etas), 8 * (skel.mat.nnz() + m) + 512, 0u64)
    } else {
        let lu = LuFactors::identity(m, &neg_rows);
        let cap = lu_growth_cap(&lu);
        let fill = lu.nnz() as u64;
        (
            Inverse::Lu {
                lu,
                etas: EtaFile::new(),
            },
            cap,
            fill,
        )
    };

    let refactor_every = refactor_budget(opts, m, opts.engine);
    let core = Core {
        skel,
        lo,
        hi,
        xval,
        state,
        basis,
        inverse,
        arts,
        n,
        m,
        art_start,
        ncols,
        costs: vec![0.0; ncols],
        w: vec![0.0; m],
        y: vec![0.0; m],
        candidates: Vec::new(),
        pricing: opts.pricing,
        devex: vec![1.0; ncols],
        clock: opts.telemetry.clone(),
        pivots: 0,
        refactorizations: 0,
        eta_peak: 0,
        pivots_since_refactor: 0,
        refactor_every,
        eta_nnz_cap,
        needs_refactor: false,
        refactor_ns: 0,
        solve_ns: 0,
        lu_fill,
        feas_tol: tol.feasibility,
        opt_tol: tol.optimality,
        pivot_tol: tol.pivot,
    };
    (core, art_sum)
}

/// Whether `opts.engine` folds range-row pairs into bounded slacks.
fn folds(opts: &SolveOptions) -> bool {
    opts.engine == Engine::Lu
}

/// Cold two-phase solve, returning the terminated [`Core`] for snapshotting
/// or resident reuse.
fn solve_core(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
    skel: Option<Arc<Skeleton>>,
) -> Result<(Solution, Option<Core>), SolveError> {
    let n = model.cols.len();
    debug_assert_eq!(var_bounds.len(), n);

    for &(lo, hi) in var_bounds {
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
    }
    if model.rows.is_empty() {
        return solve_unconstrained(model, var_bounds).map(|s| (s, None));
    }

    let skel = skel.unwrap_or_else(|| Arc::new(Skeleton::build(model, folds(opts))));
    let (mut core, art_sum) = build_core(model, var_bounds, opts, skel);
    let cap = opts.pivot_cap(core.m, core.ncols);

    if art_sum > 0.0 {
        core.set_phase1_costs();
        core.optimize(false, cap)?;
        let remaining: f64 = (core.art_start..core.ncols).map(|j| core.xval[j]).sum();
        if remaining > core.feas_tol.max(1e-7) {
            return Err(SolveError::Infeasible);
        }
        if !core.drive_out_artificials() {
            return Err(SolveError::Numerical(
                "basis became singular or infeasible at refactorization".into(),
            ));
        }
    }
    core.freeze_artificials();

    core.set_phase2_costs(model);
    core.optimize(true, cap)?;

    let emit = opts.emit_certificates;
    let sol = match core.finish(model, var_bounds, emit) {
        Ok(sol) => sol,
        Err(_) => {
            // One repair attempt: refactorizing recomputes the basic values
            // from the original data; if the residual still fails after a
            // fresh reoptimization, the failure is genuine.
            if !core.refactorize() {
                return Err(SolveError::Numerical(
                    "basis became singular or infeasible at refactorization".into(),
                ));
            }
            core.optimize(true, cap)?;
            core.finish(model, var_bounds, emit)?
        }
    };
    Ok((sol, Some(core)))
}

/// Extracts a Farkas-style infeasibility witness: the dual prices of the
/// phase-1 optimum when a positive artificial mass remains. Against a zero
/// objective these prices prove (weak duality) that every point satisfying
/// the variable bounds violates some row — i.e. the LP is infeasible.
/// Returns `None` when the model is in fact feasible, when infeasibility
/// comes from a crossed variable bound (`lo > hi`, no row ray exists), or
/// when phase 1 itself fails to terminate cleanly. Runs unfolded so the
/// witness keeps the legacy one-dual-per-model-row shape.
pub(crate) fn infeasibility_duals(model: &Model, opts: &SolveOptions) -> Option<Vec<f64>> {
    let var_bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    if model.rows.is_empty() || var_bounds.iter().any(|&(lo, hi)| lo > hi) {
        return None;
    }
    let skel = Arc::new(Skeleton::build(model, false));
    let (mut core, art_sum) = build_core(model, &var_bounds, opts, skel);
    if art_sum == 0.0 {
        return None; // starting basis already feasible — nothing to witness
    }
    core.set_phase1_costs();
    let cap = opts.pivot_cap(core.m, core.ncols);
    core.optimize(false, cap).ok()?;
    let remaining: f64 = (core.art_start..core.ncols).map(|j| core.xval[j]).sum();
    if remaining <= core.feas_tol.max(1e-7) {
        return None; // feasible after all
    }
    // `certificate` prices the current costs — still the phase-1 costs here,
    // which is exactly what makes the duals an infeasibility witness.
    Some(core.certificate().row_duals)
}

/// Sparse counterpart of [`crate::simplex`]'s cold LP entry point. A caller
/// holding a compiled [`Skeleton`] for this model (branch-and-bound, batch
/// sweeps) passes it to skip recompilation; it must have been built with
/// this engine's folding mode.
pub(crate) fn solve_bounded(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
    skel: Option<Arc<Skeleton>>,
) -> Result<Solution, SolveError> {
    solve_core(model, var_bounds, opts, skel).map(|(sol, _)| sol)
}

/// Cold solve that also extracts a [`Basis`] snapshot.
pub(crate) fn solve_snapshot(
    model: &Model,
    opts: &SolveOptions,
) -> Result<(Solution, Option<Basis>), SolveError> {
    let bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    let (sol, core) = solve_core(model, &bounds, opts, None)?;
    Ok((sol, core.and_then(|c| c.snapshot())))
}

/// A live factorized sparse engine kept resident between the solves of one
/// objective sweep — the sparse counterpart of the dense resident tableau,
/// minus the dense tableau: reoptimizing in place costs one reduced-cost
/// pass plus the phase-2 pivots, at revised-simplex per-pivot prices.
pub(crate) struct SparseResident {
    core: Core,
    var_bounds: Vec<(f64, f64)>,
}

impl SparseResident {
    /// Flattens the live engine to a restorable [`Basis`] snapshot (`None`
    /// when an artificial column is still basic).
    pub(crate) fn snapshot(&self) -> Option<Basis> {
        self.core.snapshot()
    }

    /// Which engine this resident's inverse belongs to (a resident built
    /// under one engine must not serve a sweep that requested another).
    pub(crate) fn engine(&self) -> Engine {
        match self.core.inverse {
            Inverse::Eta(_) => Engine::Eta,
            Inverse::Lu { .. } => Engine::Lu,
        }
    }

    /// Restores `warm` into the live core — reusing the compiled skeleton
    /// and every working array — then reoptimizes phase 2 under `model`'s
    /// current objective. This is the slot-restore path of a resident sweep:
    /// compared to [`solve_warm_resident`] it skips the `Skeleton` compile
    /// and `Core` construction, paying only the basis refactorization.
    ///
    /// On [`ResolveOutcome::Rejected`] the core's basis state has been
    /// overwritten and may be inconsistent; the caller must discard this
    /// resident and solve cold.
    pub(crate) fn resolve_from(
        &mut self,
        model: &Model,
        opts: &SolveOptions,
        warm: &Basis,
    ) -> Result<ResolveOutcome, SolveError> {
        let c = &mut self.core;
        let nm = c.n + c.m;
        let reject = Ok(ResolveOutcome::Rejected { wasted_pivots: 0 });
        if model.cols.len() != c.n
            || model.rows.len() != c.skel.m_model
            || warm.n != c.n
            || warm.m != c.m
            || warm.state.len() != nm
            || warm.rows.len() != c.m
        {
            return reject;
        }
        // Non-basic columns rest exactly at their recorded bound (the same
        // restore contract as `solve_warm_resident`). A snapshot never
        // records artificial columns, so any the cold solve introduced are
        // parked non-basic at their frozen value 0.
        for j in 0..nm {
            match warm.state[j] {
                ColState::Basic => {}
                ColState::AtLower => {
                    if !c.lo[j].is_finite() {
                        return reject;
                    }
                    c.xval[j] = c.lo[j];
                }
                ColState::AtUpper => {
                    if !c.hi[j].is_finite() {
                        return reject;
                    }
                    c.xval[j] = c.hi[j];
                }
                ColState::Free => c.xval[j] = 0.0,
            }
        }
        if warm
            .rows
            .iter()
            .any(|&b| b >= nm || warm.state[b] != ColState::Basic)
        {
            return reject;
        }
        c.state[..nm].copy_from_slice(&warm.state);
        for j in nm..c.ncols {
            c.state[j] = ColState::AtLower;
            c.xval[j] = 0.0;
        }
        c.basis.clear();
        c.basis.extend_from_slice(&warm.rows);
        // Per-solve counters, as in `resolve`; reset *before* the restore
        // refactorization so its time lands in this solve's telemetry.
        c.pivots = 0;
        c.refactorizations = 0;
        c.refactor_ns = 0;
        c.solve_ns = 0;
        if !c.refactorize() {
            return reject;
        }
        c.refactorizations = 1; // the restore itself, not a cadence refactor
        c.eta_peak = c.inverse.update_len();
        c.lu_fill = match &c.inverse {
            Inverse::Eta(_) => 0,
            Inverse::Lu { lu, .. } => lu.nnz() as u64,
        };
        c.set_phase2_costs(model);
        match c.optimize(true, opts.pivot_cap(c.m, c.ncols)) {
            Ok(()) => {}
            Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
            Err(_) => {
                return Ok(ResolveOutcome::Rejected {
                    wasted_pivots: c.pivots,
                })
            }
        }
        match c.finish(model, &self.var_bounds, opts.emit_certificates) {
            Ok(sol) => Ok(ResolveOutcome::Solved(sol)),
            Err(_) => Ok(ResolveOutcome::Rejected {
                wasted_pivots: c.pivots,
            }),
        }
    }

    /// Reoptimizes under `model`'s current objective (phase 2 only).
    pub(crate) fn resolve(
        &mut self,
        model: &Model,
        opts: &SolveOptions,
    ) -> Result<ResolveOutcome, SolveError> {
        let c = &mut self.core;
        if model.cols.len() != c.n || model.rows.len() != c.skel.m_model {
            return Ok(ResolveOutcome::Rejected { wasted_pivots: 0 });
        }
        c.set_phase2_costs(model);
        c.pivots = 0; // per-solve counters
        c.refactorizations = 0;
        c.eta_peak = c.inverse.update_len();
        c.refactor_ns = 0;
        c.solve_ns = 0;
        c.lu_fill = match &c.inverse {
            Inverse::Eta(_) => 0,
            Inverse::Lu { lu, .. } => lu.nnz() as u64,
        };
        match c.optimize(true, opts.pivot_cap(c.m, c.ncols)) {
            Ok(()) => {}
            Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
            Err(_) => {
                return Ok(ResolveOutcome::Rejected {
                    wasted_pivots: c.pivots,
                })
            }
        }
        match c.finish(model, &self.var_bounds, opts.emit_certificates) {
            Ok(sol) => Ok(ResolveOutcome::Solved(sol)),
            Err(_) => Ok(ResolveOutcome::Rejected {
                wasted_pivots: c.pivots,
            }),
        }
    }
}

/// Cold solve that hands back the live engine for in-place reoptimization.
pub(crate) fn solve_resident(
    model: &Model,
    opts: &SolveOptions,
) -> Result<(Solution, Option<SparseResident>), SolveError> {
    let bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    let (sol, core) = solve_core(model, &bounds, opts, None)?;
    let resident = core.map(|core| SparseResident {
        core,
        var_bounds: bounds,
    });
    Ok((sol, resident))
}

/// Warm-started solve from a [`Basis`] snapshot: refactorize the recorded
/// column set against the original matrix and reoptimize phase 2, then hand
/// back the live engine for in-place reoptimization of later objectives.
/// Anything recoverable reports [`WarmResidentOutcome::Rejected`] so the
/// caller can fall back cold, matching the dense engine's contract.
pub(crate) fn solve_warm_resident(
    model: &Model,
    opts: &SolveOptions,
    warm: &Basis,
) -> Result<WarmResidentOutcome, SolveError> {
    let n = model.cols.len();
    let tol = opts.tolerances;
    if warm.n != n || model.rows.is_empty() {
        return Ok(WarmResidentOutcome::Rejected);
    }
    let skel = Arc::new(Skeleton::build(model, folds(opts)));
    let m = skel.m();
    if warm.m != m || warm.state.len() != n + m || warm.rows.len() != m {
        return Ok(WarmResidentOutcome::Rejected);
    }
    let var_bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    for &(lo, hi) in &var_bounds {
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
    }

    let ncols = n + m;
    let mut lo = Vec::with_capacity(ncols);
    let mut hi = Vec::with_capacity(ncols);
    for &(l, h) in &var_bounds {
        lo.push(l);
        hi.push(h);
    }
    for k in 0..m {
        lo.push(skel.slack_lo[k]);
        hi.push(skel.slack_hi[k]);
    }

    // Non-basic columns rest exactly at their recorded bound; a recorded
    // state that no longer matches a finite bound means the snapshot belongs
    // to a different model.
    let state = warm.state.clone();
    let mut xval = vec![0.0f64; ncols];
    for j in 0..ncols {
        match state[j] {
            ColState::Basic => {}
            ColState::AtLower => {
                if !lo[j].is_finite() {
                    return Ok(WarmResidentOutcome::Rejected);
                }
                xval[j] = lo[j];
            }
            ColState::AtUpper => {
                if !hi[j].is_finite() {
                    return Ok(WarmResidentOutcome::Rejected);
                }
                xval[j] = hi[j];
            }
            ColState::Free => xval[j] = 0.0,
        }
    }
    if warm
        .rows
        .iter()
        .any(|&b| b >= ncols || state[b] != ColState::Basic)
    {
        return Ok(WarmResidentOutcome::Rejected);
    }

    let (inverse, eta_nnz_cap) = if opts.engine == Engine::Eta {
        (Inverse::Eta(EtaFile::new()), 8 * (skel.mat.nnz() + m) + 512)
    } else {
        // Placeholder factors; the restore refactorization below replaces
        // them with the LU of the recorded column set.
        let lu = LuFactors::identity(m, &[]);
        let cap = lu_growth_cap(&lu);
        (
            Inverse::Lu {
                lu,
                etas: EtaFile::new(),
            },
            cap,
        )
    };
    let refactor_every = refactor_budget(opts, m, opts.engine);
    let mut core = Core {
        skel,
        lo,
        hi,
        xval,
        state,
        basis: warm.rows.clone(),
        inverse,
        arts: Vec::new(),
        n,
        m,
        art_start: ncols,
        ncols,
        costs: vec![0.0; ncols],
        w: vec![0.0; m],
        y: vec![0.0; m],
        candidates: Vec::new(),
        pricing: opts.pricing,
        devex: vec![1.0; ncols],
        clock: opts.telemetry.clone(),
        pivots: 0,
        refactorizations: 0,
        eta_peak: 0,
        pivots_since_refactor: 0,
        refactor_every,
        eta_nnz_cap,
        needs_refactor: false,
        refactor_ns: 0,
        solve_ns: 0,
        lu_fill: 0,
        feas_tol: tol.feasibility,
        opt_tol: tol.optimality,
        pivot_tol: tol.pivot,
    };

    // Refactorize the recorded column set; a singular set or a restored
    // point that is no longer primal feasible means the snapshot is stale.
    if !core.refactorize() {
        return Ok(WarmResidentOutcome::Rejected);
    }
    core.pivots = 0;
    core.refactorizations = 1; // the restore itself

    core.set_phase2_costs(model);
    match core.optimize(true, opts.pivot_cap(m, ncols)) {
        Ok(()) => {}
        Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
        Err(_) => return Ok(WarmResidentOutcome::Rejected),
    }
    match core.finish(model, &var_bounds, opts.emit_certificates) {
        Ok(sol) => Ok(WarmResidentOutcome::Solved(
            sol,
            Some(Resident::Sparse(Box::new(SparseResident {
                core,
                var_bounds,
            }))),
        )),
        Err(_) => Ok(WarmResidentOutcome::Rejected),
    }
}

#[cfg(test)]
mod tests {
    use super::Skeleton;
    use crate::{
        BatchSolver, Cmp, Engine, LinExpr, Model, Pricing, Sense, SolveError, SolveOptions,
    };

    /// Both sparse engines, for tests that loop the same property over each.
    const SPARSE_ENGINES: [Engine; 2] = [Engine::Lu, Engine::Eta];

    fn opts(engine: Engine) -> SolveOptions {
        SolveOptions {
            engine,
            ..Default::default()
        }
    }

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    /// Deterministic xorshift64 stream of values in `[-1, 1)`.
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
    }

    /// A band-diagonal LP shaped like one ITNE over-approximation window:
    /// each row touches only `band` consecutive variables plus its slack.
    fn band_lp(n: usize, band: usize, seed: u64) -> (Model, Vec<crate::VarId>) {
        let mut next = rng(seed);
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|_| m.add_var(-1.0, 1.0)).collect();
        for r in 0..n {
            let lo = r.saturating_sub(band / 2);
            let hi = (lo + band).min(n);
            let e = LinExpr::from_terms(vars[lo..hi].iter().map(|&v| (v, next())), 0.0);
            m.add_constraint(e, Cmp::Le, 0.5 + next().abs());
        }
        let obj = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
        m.set_objective(Sense::Maximize, obj);
        (m, vars)
    }

    /// A band LP whose every constraint is a `≤`/`≥` *pair* over identical
    /// terms — the `[A | I]` interval-row shape range folding targets.
    fn range_band_lp(n: usize, band: usize, seed: u64) -> (Model, Vec<crate::VarId>) {
        let mut next = rng(seed);
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|_| m.add_var(-1.0, 1.0)).collect();
        for r in 0..n {
            let lo = r.saturating_sub(band / 2);
            let hi = (lo + band).min(n);
            let terms: Vec<_> = vars[lo..hi].iter().map(|&v| (v, next())).collect();
            let width = 0.5 + next().abs();
            let center = next();
            let e = LinExpr::from_terms(terms.iter().copied(), 0.0);
            m.add_constraint(e, Cmp::Le, center + width);
            let e = LinExpr::from_terms(terms.iter().copied(), 0.0);
            m.add_constraint(e, Cmp::Ge, center - width);
        }
        let obj = LinExpr::from_terms(vars.iter().map(|&v| (v, next())), 0.0);
        m.set_objective(Sense::Maximize, obj);
        (m, vars)
    }

    #[test]
    fn textbook_problems_match_dense_engine() {
        // The dense engine's unit suite distilled into an engine-agreement
        // check: every model solves to the same objective on all engines.
        let build: Vec<fn() -> Model> = vec![
            || {
                let mut m = Model::new();
                let x = m.add_var(0.0, 10.0);
                let y = m.add_var(0.0, 10.0);
                m.add_constraint(x + y, Cmp::Le, 6.0);
                m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
                m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
                m
            },
            || {
                let mut m = Model::new();
                let x = m.add_var(0.0, 100.0);
                let y = m.add_var(0.0, 10.0);
                m.add_constraint(x + y, Cmp::Ge, 4.0);
                m.add_constraint(x, Cmp::Ge, 1.0);
                m.set_objective(Sense::Minimize, 2.0 * x + 3.0 * y);
                m
            },
            || {
                let mut m = Model::new();
                let x = m.add_var(-10.0, 10.0);
                let y = m.add_var(-10.0, 10.0);
                m.add_constraint(x + 2.0 * y, Cmp::Eq, 3.0);
                m.add_constraint(x - y, Cmp::Eq, 0.0);
                m.set_objective(Sense::Minimize, x + y);
                m
            },
            || {
                // Free variable in an equality plus an objective constant.
                let mut m = Model::new();
                let x = m.add_var(0.0, 1.0);
                let y = m.add_var(f64::NEG_INFINITY, f64::INFINITY);
                m.add_constraint(y - 3.0 * x, Cmp::Eq, -1.0);
                m.set_objective(Sense::Maximize, 1.0 * y + 10.0);
                m
            },
            || {
                // Redundant equality rows: a frozen artificial survives.
                let mut m = Model::new();
                let x = m.add_var(0.0, 5.0);
                let y = m.add_var(0.0, 5.0);
                m.add_constraint(x + y, Cmp::Eq, 4.0);
                m.add_constraint(2.0 * x + 2.0 * y, Cmp::Eq, 8.0);
                m.set_objective(Sense::Maximize, 1.0 * x);
                m
            },
            || {
                // Degenerate vertex (several constraints meet near a point).
                let mut m = Model::new();
                let x = m.add_var(0.0, 10.0);
                let y = m.add_var(0.0, 10.0);
                m.add_constraint(x + y, Cmp::Le, 1.0);
                m.add_constraint(x + 2.0 * y, Cmp::Le, 1.0);
                m.add_constraint(2.0 * x + y, Cmp::Le, 1.0);
                m.set_objective(Sense::Maximize, x + y);
                m
            },
            || {
                // An interval pair the LU engine folds into one range row.
                let mut m = Model::new();
                let x = m.add_var(-2.0, 2.0);
                let y = m.add_var(-2.0, 2.0);
                m.add_constraint(x + y, Cmp::Le, 1.5);
                m.add_constraint(x + y, Cmp::Ge, -0.5);
                m.set_objective(Sense::Maximize, 2.0 * x - y);
                m
            },
        ];
        for (i, mk) in build.iter().enumerate() {
            let m = mk();
            let dense = m
                .solve_with(&opts(Engine::Dense))
                .unwrap_or_else(|e| panic!("case {i} dense: {e}"));
            for engine in SPARSE_ENGINES {
                let sparse = m
                    .solve_with(&opts(engine))
                    .unwrap_or_else(|e| panic!("case {i} {engine:?}: {e}"));
                assert!(
                    (sparse.objective - dense.objective).abs() < 1e-6,
                    "case {i}: {engine:?} {} vs dense {}",
                    sparse.objective,
                    dense.objective
                );
            }
        }
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        for engine in SPARSE_ENGINES {
            let mut m = Model::new();
            let x = m.add_var(0.0, 1.0);
            m.add_constraint(2.0 * x, Cmp::Ge, 3.0);
            m.set_objective(Sense::Maximize, 1.0 * x);
            assert_eq!(
                m.solve_with(&opts(engine)).unwrap_err(),
                SolveError::Infeasible,
                "{engine:?}"
            );

            let mut m = Model::new();
            let x = m.add_var(0.0, f64::INFINITY);
            let y = m.add_var(0.0, f64::INFINITY);
            m.add_constraint(x - y, Cmp::Le, 1.0);
            m.set_objective(Sense::Maximize, x + y);
            assert_eq!(
                m.solve_with(&opts(engine)).unwrap_err(),
                SolveError::Unbounded,
                "{engine:?}"
            );
        }
    }

    /// A crossed `≤`/`≥` pair (`rhs_le < rhs_ge`) is trivially infeasible;
    /// folding must leave it alone so phase 1 reports the infeasibility like
    /// every other engine (a folded slack with `hi < lo` would be rejected
    /// for the wrong reason).
    #[test]
    fn crossed_range_pair_stays_infeasible() {
        for engine in [Engine::Lu, Engine::Eta, Engine::Dense] {
            let mut m = Model::new();
            let x = m.add_var(-5.0, 5.0);
            let y = m.add_var(-5.0, 5.0);
            m.add_constraint(x + y, Cmp::Le, 1.0);
            m.add_constraint(x + y, Cmp::Ge, 2.0);
            m.set_objective(Sense::Maximize, 1.0 * x);
            assert_eq!(
                m.solve_with(&opts(engine)).unwrap_err(),
                SolveError::Infeasible,
                "{engine:?}"
            );
        }
    }

    /// The skeleton compiler folds exactly the adjacent identical-term
    /// `≤`/`≥` pairs and nothing else.
    #[test]
    fn skeleton_folds_range_pairs() {
        let (m, _) = range_band_lp(10, 3, 0xF01D);
        let folded = Skeleton::build(&m, true);
        assert_eq!(folded.m(), 10, "every pair folds: {}", folded.m());
        let unfolded = Skeleton::build(&m, false);
        assert_eq!(unfolded.m(), 20);

        // A crossed pair must not fold.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(2.0 * x, Cmp::Le, 0.0);
        m.add_constraint(2.0 * x, Cmp::Ge, 1.0);
        assert_eq!(Skeleton::build(&m, true).m(), 2);

        // Differing terms must not fold.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(0.0, 1.0);
        m.add_constraint(x + y, Cmp::Le, 1.0);
        m.add_constraint(x + 2.0 * y, Cmp::Ge, 0.0);
        assert_eq!(Skeleton::build(&m, true).m(), 2);
    }

    /// Range folding is an internal reformulation: the LU engine must reach
    /// the same optimum as the unfolding engines on interval-row models,
    /// with a working basis that shows the fold actually fired.
    #[test]
    fn range_folding_matches_unfolded_engines() {
        for seed in [0x11u64, 0x22, 0x33] {
            let (m, _) = range_band_lp(24, 4, seed);
            let dense = m.solve_with(&opts(Engine::Dense)).expect("dense solves");
            let eta = m.solve_with(&opts(Engine::Eta)).expect("eta solves");
            let lu = m.solve_with(&opts(Engine::Lu)).expect("lu solves");
            assert_close(eta.objective, dense.objective);
            assert_close(lu.objective, dense.objective);
            for (a, b) in lu.values().iter().zip(dense.values()) {
                assert!(
                    (a - b).abs() < 1e-6,
                    "seed {seed}: values diverged {a} vs {b}"
                );
            }
        }
    }

    /// LU and eta engines must agree exactly on plain band problems too —
    /// same optimum, same returned point.
    #[test]
    fn lu_and_eta_engines_agree_on_band_problems() {
        for seed in [1u64, 0xBEEF, 0xD00D] {
            let (m, _) = band_lp(50, 5, seed);
            let eta = m.solve_with(&opts(Engine::Eta)).expect("eta solves");
            let lu = m.solve_with(&opts(Engine::Lu)).expect("lu solves");
            assert_close(lu.objective, eta.objective);
            for (a, b) in lu.values().iter().zip(eta.values()) {
                assert!(
                    (a - b).abs() < 1e-6,
                    "seed {seed}: values diverged {a} vs {b}"
                );
            }
        }
    }

    /// Devex pricing steers the pivot path, never the optimum.
    #[test]
    fn devex_and_dantzig_reach_same_optimum() {
        for engine in SPARSE_ENGINES {
            for seed in [7u64, 0xACE] {
                let (m, _) = band_lp(40, 5, seed);
                let devex = m
                    .solve_with(&SolveOptions {
                        pricing: Pricing::Devex,
                        ..opts(engine)
                    })
                    .expect("devex solves");
                let dantzig = m
                    .solve_with(&SolveOptions {
                        pricing: Pricing::Dantzig,
                        ..opts(engine)
                    })
                    .expect("dantzig solves");
                assert_close(devex.objective, dantzig.objective);
            }
        }
    }

    /// A problem whose optimum is reached purely by bound-to-bound flips:
    /// the slack row never binds, so no basis change (pivot) is needed —
    /// the bounded-variable method must notice and report zero pivots.
    #[test]
    fn bound_flips_alone_reach_the_optimum() {
        for engine in SPARSE_ENGINES {
            let mut m = Model::new();
            let vars: Vec<_> = (0..12).map(|_| m.add_var(-1.0, 1.0)).collect();
            let e = LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0)), 0.0);
            m.add_constraint(e, Cmp::Le, 1000.0);
            let obj = LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0)), 0.0);
            m.set_objective(Sense::Maximize, obj);
            let sol = m.solve_with(&opts(engine)).expect("solves");
            assert_close(sol.objective, 12.0);
            assert_eq!(sol.stats.pivots, 0, "{engine:?}: {:?}", sol.stats);
        }
    }

    /// The refactorization-equivalence property: rebuilding the
    /// factorization after *every* pivot (`refactor_interval = 1`) must
    /// reach the same optimum as the lazy default — refactorization is a
    /// representation change, never a semantic one.
    #[test]
    fn refactorization_is_equivalence_preserving() {
        for engine in SPARSE_ENGINES {
            let (m, _) = band_lp(40, 5, 0xE7A);
            let lazy = m.solve_with(&opts(engine)).expect("lazy solves");
            let eager = m
                .solve_with(&SolveOptions {
                    refactor_interval: 1,
                    ..opts(engine)
                })
                .expect("eager solves");
            assert_close(eager.objective, lazy.objective);
            assert!(
                eager.stats.refactorizations > 0,
                "{engine:?}: interval 1 never refactorized: {:?}",
                eager.stats
            );
            assert!(
                lazy.stats.refactorizations < eager.stats.refactorizations,
                "{engine:?}: lazy path refactorized as often as eager: {:?} vs {:?}",
                lazy.stats,
                eager.stats
            );
            // Values agree too, not just objectives.
            for (a, b) in eager.values().iter().zip(lazy.values()) {
                assert!(
                    (a - b).abs() < 1e-6,
                    "{engine:?}: values diverged: {a} vs {b}"
                );
            }
        }
    }

    /// Same property across a warm-started sweep: per-pivot refactorization
    /// inside resident reoptimization changes nothing observable.
    #[test]
    fn refactorization_equivalence_across_warm_sweeps() {
        let objectives: Vec<(Sense, Vec<f64>)> = {
            let mut next = rng(77);
            (0..6)
                .map(|i| {
                    let sense = if i % 2 == 0 {
                        Sense::Minimize
                    } else {
                        Sense::Maximize
                    };
                    (sense, (0..30).map(|_| next()).collect())
                })
                .collect()
        };
        for engine in SPARSE_ENGINES {
            let run = |interval: u64| -> Vec<f64> {
                let (mut m, vars) = band_lp(30, 4, 0xBEE);
                let o = SolveOptions {
                    refactor_interval: interval,
                    ..opts(engine)
                };
                let mut batch = BatchSolver::new(&mut m);
                objectives
                    .iter()
                    .map(|(sense, cs)| {
                        let e =
                            LinExpr::from_terms(vars.iter().copied().zip(cs.iter().copied()), 0.0);
                        batch.solve(*sense, e, &o).expect("solves").objective
                    })
                    .collect()
            };
            let lazy = run(0);
            let eager = run(1);
            for (a, b) in eager.iter().zip(&lazy) {
                assert!(
                    (a - b).abs() < 1e-6,
                    "{engine:?}: sweep diverged: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sweep_warm_starts_and_reports_engine_stats() {
        let (mut m, vars) = band_lp(60, 5, 0x5EED);
        let nnz_expected = {
            let mat = super::SparseMatrix::from_model(&m);
            mat.nnz() as u64
        };
        let o = opts(Engine::Lu);
        let mut batch = BatchSolver::new(&mut m);
        let mut last = None;
        for k in 0..8 {
            let e = LinExpr::from_terms(vars.iter().map(|&v| (v, 1.0 + k as f64 * 0.1)), 0.0);
            let sense = if k % 2 == 0 {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            last = Some(batch.solve(sense, e, &o).expect("solves"));
        }
        let stats = batch.stats();
        assert!(stats.warm_hits >= 6, "expected warm hits, got {stats:?}");
        let sol = last.expect("at least one solve");
        assert_eq!(sol.stats.nnz, nnz_expected, "nnz not reported");
        assert!(sol.stats.eta_len > 0, "eta length not reported");
    }

    /// The injected telemetry clock fills the timing counters; without one
    /// they stay zero (the kernel itself is clock-free).
    #[test]
    fn telemetry_clock_fills_timing_counters() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let (m, _) = band_lp(40, 5, 0x71C);
        let ticks = Arc::new(AtomicU64::new(0));
        let t = ticks.clone();
        let o = SolveOptions {
            telemetry: Some(crate::TelemetryClock::new(move || {
                // Deterministic fake clock: one "nanosecond" per read.
                t.fetch_add(1, Ordering::Relaxed)
            })),
            ..opts(Engine::Lu)
        };
        let timed = m.solve_with(&o).expect("solves");
        assert!(
            timed.stats.ftran_btran_time_ns > 0,
            "no solve time recorded: {:?}",
            timed.stats
        );
        assert!(timed.stats.lu_fill_nnz > 0, "no LU fill: {:?}", timed.stats);
        let untimed = m.solve_with(&opts(Engine::Lu)).expect("solves");
        assert_eq!(untimed.stats.ftran_btran_time_ns, 0);
        assert_eq!(untimed.stats.refactor_time_ns, 0);
        assert_close(timed.objective, untimed.objective);
    }

    #[test]
    fn large_band_problem_solves_within_pivot_budget() {
        // A conv-window-sized skeleton: 220 rows, bandwidth 7. The dense
        // engine pays O(m·ncols) per pivot here; the sparse engines must
        // still agree with it exactly.
        let (m, _) = band_lp(220, 7, 0xC06);
        let dense = m.solve_with(&opts(Engine::Dense)).expect("dense solves");
        for engine in SPARSE_ENGINES {
            let sparse = m.solve_with(&opts(engine)).expect("sparse solves");
            assert_close(sparse.objective, dense.objective);
        }
    }
}
