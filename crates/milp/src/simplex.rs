//! Two-phase primal simplex with bounded variables on a dense tableau.
//!
//! Box bounds are handled natively: non-basic variables rest at their lower or
//! upper bound and the ratio test allows bound-to-bound flips, so bounds never
//! become explicit rows. Phase 1 introduces artificial variables only for rows
//! whose slack value would violate the slack's own bounds, and minimizes the
//! total artificial mass; phase 2 optimizes the real objective.
//!
//! Anti-cycling: Dantzig pricing switches to Bland's rule after a run of
//! degenerate steps and switches back on progress.

use crate::error::SolveError;
use crate::model::{Cmp, Model, Sense};
use crate::options::SolveOptions;
use crate::{Solution, Stats, Status};

const INF: f64 = f64::INFINITY;

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ColState {
    Basic,
    AtLower,
    AtUpper,
    /// Non-basic free variable resting at value 0.
    Free,
}

struct Tableau {
    /// Row-major dense tableau, `rows × ncols`; starts as `[A | I_slack | I_art]`
    /// and is kept equal to `B⁻¹·[A | I | I]` by pivoting.
    tab: Vec<f64>,
    /// Reduced costs for the current phase, length `ncols`.
    dj: Vec<f64>,
    /// Current value of every column (basic and non-basic).
    xval: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    state: Vec<ColState>,
    /// Column occupying each basis row.
    basis: Vec<usize>,
    nrows: usize,
    ncols: usize,
    /// First artificial column index (== n_struct + nrows).
    art_start: usize,
    pivots: u64,
    feas_tol: f64,
    opt_tol: f64,
    pivot_tol: f64,
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Progress { degenerate: bool },
}

impl Tableau {
    fn entry(&self, r: usize, c: usize) -> f64 {
        self.tab[r * self.ncols + c]
    }

    /// Chooses an entering column, returning `(col, direction)`.
    fn price(&self, bland: bool, phase2: bool) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, |dj|)
        let limit = if phase2 { self.art_start } else { self.ncols };
        for j in 0..limit {
            let (dir, score) = match self.state[j] {
                ColState::Basic => continue,
                ColState::AtLower => {
                    if self.lo[j] == self.hi[j] {
                        continue; // fixed
                    }
                    (1.0, -self.dj[j])
                }
                ColState::AtUpper => {
                    if self.lo[j] == self.hi[j] {
                        continue; // fixed
                    }
                    (-1.0, self.dj[j])
                }
                ColState::Free => {
                    if self.dj[j] < 0.0 {
                        (1.0, -self.dj[j])
                    } else {
                        (-1.0, self.dj[j])
                    }
                }
            };
            if score <= self.opt_tol {
                continue;
            }
            if bland {
                return Some((j, dir));
            }
            match best {
                Some((_, _, s)) if s >= score => {}
                _ => best = Some((j, dir, score)),
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    /// One simplex iteration: price, ratio test, then bound-flip or pivot.
    fn step(&mut self, bland: bool, phase2: bool) -> StepOutcome {
        let Some((q, dir)) = self.price(bland, phase2) else {
            return StepOutcome::Optimal;
        };

        // Ratio test. `limit` starts at the entering variable's own range
        // (bound-to-bound flip) and shrinks as basic variables hit bounds.
        let mut limit = if self.lo[q].is_finite() && self.hi[q].is_finite() {
            self.hi[q] - self.lo[q]
        } else {
            INF
        };
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_lower)
        let mut leave_piv = 0.0f64;
        for r in 0..self.nrows {
            let a = self.entry(r, q) * dir;
            let b = self.basis[r];
            let (room, to_lower) = if a > self.pivot_tol {
                (self.xval[b] - self.lo[b], true)
            } else if a < -self.pivot_tol {
                (self.hi[b] - self.xval[b], false)
            } else {
                continue;
            };
            if !room.is_finite() {
                continue;
            }
            let ratio = room.max(0.0) / a.abs();
            let a_mag = a.abs();
            // Tight tie-breaking prefers the largest pivot magnitude for
            // numerical stability.
            if ratio < limit - 1e-12 || (ratio < limit + 1e-12 && a_mag > leave_piv) {
                limit = ratio.min(limit);
                leave = Some((r, to_lower));
                leave_piv = a_mag;
            }
        }

        if limit.is_infinite() {
            return StepOutcome::Unbounded;
        }

        let step = dir * limit;
        match leave {
            None => {
                // Bound-to-bound flip: no basis change.
                for r in 0..self.nrows {
                    let a = self.entry(r, q);
                    if a != 0.0 {
                        let b = self.basis[r];
                        self.xval[b] -= step * a;
                    }
                }
                self.state[q] = if dir > 0.0 {
                    ColState::AtUpper
                } else {
                    ColState::AtLower
                };
                self.xval[q] = if dir > 0.0 { self.hi[q] } else { self.lo[q] };
                StepOutcome::Progress { degenerate: false }
            }
            Some((r, to_lower)) => {
                for i in 0..self.nrows {
                    let a = self.entry(i, q);
                    if a != 0.0 {
                        let b = self.basis[i];
                        self.xval[b] -= step * a;
                    }
                }
                self.xval[q] += step;
                let leaving = self.basis[r];
                // Snap the leaving variable exactly to its bound to stop
                // feasibility drift from accumulating.
                self.xval[leaving] = if to_lower {
                    self.lo[leaving]
                } else {
                    self.hi[leaving]
                };
                self.state[leaving] = if to_lower {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
                self.pivot(r, q);
                self.state[q] = ColState::Basic;
                self.basis[r] = q;
                StepOutcome::Progress {
                    degenerate: limit <= 1e-10,
                }
            }
        }
    }

    /// Gaussian elimination step making column `q` the unit vector for row `r`.
    fn pivot(&mut self, r: usize, q: usize) {
        self.pivots += 1;
        let ncols = self.ncols;
        let piv = self.tab[r * ncols + q];
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        let inv = 1.0 / piv;
        let row_start = r * ncols;
        for j in 0..ncols {
            self.tab[row_start + j] *= inv;
        }
        self.tab[row_start + q] = 1.0; // exact unit entry

        // Copy the normalized pivot row so we can stream through the others.
        let prow: Vec<f64> = self.tab[row_start..row_start + ncols].to_vec();
        for i in 0..self.nrows {
            if i == r {
                continue;
            }
            let f = self.tab[i * ncols + q];
            if f != 0.0 {
                let base = i * ncols;
                for (t, &p) in self.tab[base..base + ncols].iter_mut().zip(&prow) {
                    *t -= f * p;
                }
                self.tab[base + q] = 0.0;
            }
        }
        let f = self.dj[q];
        if f != 0.0 {
            for (d, &p) in self.dj.iter_mut().zip(&prow) {
                *d -= f * p;
            }
            self.dj[q] = 0.0;
        }
    }

    /// Runs the simplex loop for one phase until optimality.
    fn optimize(&mut self, phase2: bool, cap: u64) -> Result<(), SolveError> {
        let mut degen_streak = 0u32;
        let mut bland = false;
        loop {
            if self.pivots >= cap {
                return Err(SolveError::IterationLimit);
            }
            match self.step(bland, phase2) {
                StepOutcome::Optimal => return Ok(()),
                StepOutcome::Unbounded => {
                    return if phase2 {
                        Err(SolveError::Unbounded)
                    } else {
                        // Phase 1 minimizes a sum of non-negative variables,
                        // which is bounded below; unboundedness is numerical.
                        Err(SolveError::Numerical("phase-1 objective unbounded".into()))
                    };
                }
                StepOutcome::Progress { degenerate } => {
                    if degenerate {
                        degen_streak += 1;
                        if degen_streak > 50 {
                            bland = true;
                        }
                    } else {
                        degen_streak = 0;
                        bland = false;
                    }
                }
            }
        }
    }

    /// Rebuilds reduced costs `dj = c − c_B·B⁻¹·A` from scratch.
    fn rebuild_dj(&mut self, costs: &[f64]) {
        self.dj.copy_from_slice(costs);
        for r in 0..self.nrows {
            let cb = costs[self.basis[r]];
            if cb != 0.0 {
                let base = r * self.ncols;
                for j in 0..self.ncols {
                    self.dj[j] -= cb * self.tab[base + j];
                }
            }
        }
        // Basic columns have zero reduced cost by construction; zero them to
        // remove round-off noise.
        for r in 0..self.nrows {
            self.dj[self.basis[r]] = 0.0;
        }
    }
}

/// Slack bounds implied by a row's comparison operator.
fn slack_bounds(cmp: Cmp) -> (f64, f64) {
    match cmp {
        Cmp::Le => (0.0, INF),
        Cmp::Ge => (-INF, 0.0),
        Cmp::Eq => (0.0, 0.0),
    }
}

/// Initial resting value for a non-basic column.
fn initial_value(lo: f64, hi: f64) -> (f64, ColState) {
    if lo.is_finite() && hi.is_finite() {
        if lo.abs() <= hi.abs() {
            (lo, ColState::AtLower)
        } else {
            (hi, ColState::AtUpper)
        }
    } else if lo.is_finite() {
        (lo, ColState::AtLower)
    } else if hi.is_finite() {
        (hi, ColState::AtUpper)
    } else {
        (0.0, ColState::Free)
    }
}

/// Solves a continuous model by two-phase simplex.
pub(crate) fn solve_lp(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    let bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    solve_lp_bounded(model, &bounds, opts)
}

/// Solves a continuous relaxation with per-variable bound overrides (used by
/// branch-and-bound so nodes don't clone the constraint matrix).
pub(crate) fn solve_lp_bounded(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
) -> Result<Solution, SolveError> {
    let n = model.cols.len();
    let m = model.rows.len();
    debug_assert_eq!(var_bounds.len(), n);
    let tol = opts.tolerances;

    for &(lo, hi) in var_bounds {
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
    }

    // Trivial case: no constraints — each variable goes to its best bound.
    if m == 0 {
        return solve_unconstrained(model, var_bounds);
    }

    // Internal costs are always "minimize".
    let flip = matches!(model.sense, Some(Sense::Maximize));
    let mut struct_cost = vec![0.0f64; n];
    for &(v, c) in &model.objective {
        struct_cost[v] += if flip { -c } else { c };
    }

    // --- Set up columns: structural, slack, artificial. ---
    let mut lo = Vec::with_capacity(n + 2 * m);
    let mut hi = Vec::with_capacity(n + 2 * m);
    let mut xval = Vec::with_capacity(n + 2 * m);
    let mut state = Vec::with_capacity(n + 2 * m);
    for &(l, h) in var_bounds {
        let (v, s) = initial_value(l, h);
        lo.push(l);
        hi.push(h);
        xval.push(v);
        state.push(s);
    }
    for row in &model.rows {
        let (l, h) = slack_bounds(row.cmp);
        lo.push(l);
        hi.push(h);
        xval.push(0.0); // placeholder; set below
        state.push(ColState::AtLower); // placeholder
    }

    // Row activity at the initial non-basic point decides whether the slack
    // can be basic or an artificial is needed.
    let mut basis = Vec::with_capacity(m);
    let mut art_cols: Vec<(usize, f64)> = Vec::new(); // (row, sign)
    for (r, row) in model.rows.iter().enumerate() {
        let activity: f64 = row.terms.iter().map(|&(v, c)| c * xval[v]).sum();
        let v = row.rhs - activity; // required slack value
        let sc = n + r;
        if v >= lo[sc] && v <= hi[sc] {
            xval[sc] = v;
            state[sc] = ColState::Basic;
            basis.push(sc);
        } else {
            let sv = v.clamp(lo[sc], hi[sc]);
            xval[sc] = sv;
            state[sc] = if sv == lo[sc] {
                ColState::AtLower
            } else {
                ColState::AtUpper
            };
            let resid = v - sv;
            art_cols.push((r, resid.signum()));
            basis.push(usize::MAX); // fixed up below
        }
    }

    let art_start = n + m;
    let ncols = art_start + art_cols.len();
    let mut tab = vec![0.0f64; m * ncols];
    for (r, row) in model.rows.iter().enumerate() {
        let base = r * ncols;
        for &(v, c) in &row.terms {
            tab[base + v] = c;
        }
        tab[base + n + r] = 1.0;
    }
    let mut art_sum = 0.0;
    for (k, &(r, sign)) in art_cols.iter().enumerate() {
        let col = art_start + k;
        // The artificial must be a +1 unit column so the starting basis is the
        // identity; when the residual is negative, negate the whole row
        // instead of giving the artificial a -1 coefficient.
        if sign < 0.0 {
            for e in &mut tab[r * ncols..(r + 1) * ncols] {
                *e = -*e;
            }
        }
        tab[r * ncols + col] = 1.0;
        let activity: f64 = model.rows[r].terms.iter().map(|&(v, c)| c * xval[v]).sum();
        let resid = model.rows[r].rhs - activity - xval[n + r];
        lo.push(0.0);
        hi.push(INF);
        xval.push(resid.abs());
        state.push(ColState::Basic);
        basis[r] = col;
        art_sum += resid.abs();
    }

    let mut t = Tableau {
        tab,
        dj: vec![0.0; ncols],
        xval,
        lo,
        hi,
        state,
        basis,
        nrows: m,
        ncols,
        art_start,
        pivots: 0,
        feas_tol: tol.feasibility,
        opt_tol: tol.optimality,
        pivot_tol: tol.pivot,
    };
    let cap = opts.pivot_cap(m, ncols);

    // --- Phase 1: minimize artificial mass. ---
    if art_sum > 0.0 {
        let mut costs = vec![0.0f64; ncols];
        for c in costs.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        t.rebuild_dj(&costs);
        t.optimize(false, cap)?;
        let remaining: f64 = (art_start..ncols).map(|j| t.xval[j]).sum();
        if remaining > t.feas_tol.max(1e-7) {
            return Err(SolveError::Infeasible);
        }
        drive_out_artificials(&mut t);
    }
    // Freeze artificials so phase 2 cannot reuse them.
    for j in art_start..ncols {
        t.lo[j] = 0.0;
        t.hi[j] = 0.0;
        t.xval[j] = 0.0;
    }

    // --- Phase 2: real objective. ---
    let mut costs = vec![0.0f64; ncols];
    costs[..n].copy_from_slice(&struct_cost);
    t.rebuild_dj(&costs);
    t.optimize(true, cap)?;

    let values: Vec<f64> = t.xval[..n].to_vec();
    let mut objective = model.obj_constant;
    for &(v, c) in &model.objective {
        objective += c * values[v];
    }
    let max_residual = residual(model, var_bounds, &values);
    if max_residual > 1e-5 {
        return Err(SolveError::Numerical(format!(
            "solution residual {max_residual:.3e} exceeds 1e-5"
        )));
    }
    Ok(Solution {
        objective,
        status: Status::Optimal,
        stats: Stats {
            pivots: t.pivots,
            nodes: 0,
            best_bound: objective,
            max_residual,
        },
        values,
    })
}

/// Pivots basic artificial variables (all at value 0) out of the basis; rows
/// that admit no replacement column are redundant and keep their frozen
/// artificial.
fn drive_out_artificials(t: &mut Tableau) {
    for r in 0..t.nrows {
        if t.basis[r] < t.art_start {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for j in 0..t.art_start {
            if t.state[j] == ColState::Basic || t.lo[j] == t.hi[j] {
                continue;
            }
            let a = t.entry(r, j).abs();
            if a > t.pivot_tol && best.is_none_or(|(_, b)| a > b) {
                best = Some((j, a));
            }
        }
        if let Some((j, _)) = best {
            let leaving = t.basis[r];
            t.pivot(r, j);
            t.state[leaving] = ColState::AtLower;
            t.xval[leaving] = 0.0;
            t.state[j] = ColState::Basic;
            t.basis[r] = j;
        }
    }
}

fn solve_unconstrained(model: &Model, var_bounds: &[(f64, f64)]) -> Result<Solution, SolveError> {
    let flip = matches!(model.sense, Some(Sense::Maximize));
    let n = model.cols.len();
    let mut cost = vec![0.0f64; n];
    for &(v, c) in &model.objective {
        cost[v] += if flip { -c } else { c };
    }
    let mut values = vec![0.0f64; n];
    for (j, &(l, h)) in var_bounds.iter().enumerate() {
        let c = cost[j];
        values[j] = if c > 0.0 {
            if l.is_finite() {
                l
            } else {
                return Err(SolveError::Unbounded);
            }
        } else if c < 0.0 {
            if h.is_finite() {
                h
            } else {
                return Err(SolveError::Unbounded);
            }
        } else {
            initial_value(l, h).0
        };
    }
    let mut objective = model.obj_constant;
    for &(v, c) in &model.objective {
        objective += c * values[v];
    }
    Ok(Solution {
        objective,
        status: Status::Optimal,
        stats: Stats {
            best_bound: objective,
            ..Stats::default()
        },
        values,
    })
}

fn residual(model: &Model, var_bounds: &[(f64, f64)], values: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for row in &model.rows {
        let lhs: f64 = row.terms.iter().map(|&(v, c)| c * values[v]).sum();
        let viol = match row.cmp {
            Cmp::Le => (lhs - row.rhs).max(0.0),
            Cmp::Ge => (row.rhs - lhs).max(0.0),
            Cmp::Eq => (lhs - row.rhs).abs(),
        };
        worst = worst.max(viol);
    }
    for (&(l, h), &x) in var_bounds.iter().zip(values) {
        worst = worst.max(l - x).max(x - h);
    }
    worst
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, Model, Sense, SolveError};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 2y  s.t. x + y ≤ 6, 2x + y ≤ 9, x,y ∈ [0,10] → (3,3), 15.
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 6.0);
        m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        let s = m.solve().unwrap();
        assert_close(s.objective, 15.0);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 3.0);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 (as a row), y ∈ [0, 10].
        let mut m = Model::new();
        let x = m.add_var(0.0, 100.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Ge, 4.0);
        m.add_constraint(x, Cmp::Ge, 1.0);
        m.set_objective(Sense::Minimize, 2.0 * x + 3.0 * y);
        let s = m.solve().unwrap();
        // Cheapest: x as large as needed: x=4, y=0 → 8.
        assert_close(s.objective, 8.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 3, x - y = 0 → x = y = 1, obj 2.
        let mut m = Model::new();
        let x = m.add_var(-10.0, 10.0);
        let y = m.add_var(-10.0, 10.0);
        m.add_constraint(x + 2.0 * y, Cmp::Eq, 3.0);
        m.add_constraint(x - y, Cmp::Eq, 0.0);
        m.set_objective(Sense::Minimize, x + y);
        let s = m.solve().unwrap();
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(2.0 * x, Cmp::Ge, 3.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY);
        let y = m.add_var(0.0, f64::INFINITY);
        m.add_constraint(x - y, Cmp::Le, 1.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(m.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_bounds_and_negative_rhs() {
        // min x s.t. x + y ≤ -2, y ∈ [-5, 5], x ∈ [-4, 4] → x = -4 feasible
        // (y ≤ 2). Optimum -4.
        let mut m = Model::new();
        let x = m.add_var(-4.0, 4.0);
        let y = m.add_var(-5.0, 5.0);
        m.add_constraint(x + y, Cmp::Le, -2.0);
        m.set_objective(Sense::Minimize, x);
        let s = m.solve().unwrap();
        assert_close(s.objective, -4.0);
    }

    #[test]
    fn bound_flip_only_problem() {
        // max x + y with a slack-dominated row; optimum at upper bounds.
        let mut m = Model::new();
        let x = m.add_var(-1.0, 2.0);
        let y = m.add_var(-1.0, 3.0);
        m.add_constraint(x + y, Cmp::Le, 100.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = m.solve().unwrap();
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn free_variable_in_equality() {
        // y free, x ∈ [0, 1]: y = 3x - 1, max y → x=1, y=2.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint(y - 3.0 * x, Cmp::Eq, -1.0);
        m.set_objective(Sense::Maximize, 1.0 * y);
        let s = m.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn redundant_rows_are_harmless() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 5.0);
        let y = m.add_var(0.0, 5.0);
        m.add_constraint(x + y, Cmp::Eq, 4.0);
        m.add_constraint(2.0 * x + 2.0 * y, Cmp::Eq, 8.0); // same hyperplane
        m.set_objective(Sense::Maximize, 1.0 * x);
        let s = m.solve().unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn degenerate_vertex_terminates() {
        // Several constraints meet near one vertex; summing the two binding
        // rows shows x + y ≤ 2/3, attained at x = y = 1/3.
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 1.0);
        m.add_constraint(x + 2.0 * y, Cmp::Le, 1.0);
        m.add_constraint(2.0 * x + y, Cmp::Le, 1.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = m.solve().unwrap();
        assert_close(s.objective, 2.0 / 3.0);
    }

    #[test]
    fn objective_constant_is_carried() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(1.0 * x, Cmp::Le, 0.5);
        m.set_objective(Sense::Maximize, 2.0 * x + 10.0);
        let s = m.solve().unwrap();
        assert_close(s.objective, 11.0);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 2.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 5.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = m.solve().unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.value(x), 2.0);
    }

    #[test]
    fn no_constraints_uses_bounds() {
        let mut m = Model::new();
        let x = m.add_var(-3.0, 7.0);
        let y = m.add_var(-2.0, 2.0);
        m.set_objective(Sense::Maximize, x - 5.0 * y);
        let s = m.solve().unwrap();
        assert_close(s.objective, 7.0 + 10.0);
    }
}
