//! Two-phase primal simplex with bounded variables on a dense tableau — the
//! reference engine — plus the entry points that dispatch each solve to the
//! engine selected by [`SolveOptions::engine`] (the sparse revised simplex in
//! [`crate::sparse`] by default; this dense engine via [`Engine::Dense`],
//! kept for differential testing and as a numerical second opinion).
//!
//! Box bounds are handled natively: non-basic variables rest at their lower or
//! upper bound and the ratio test allows bound-to-bound flips, so bounds never
//! become explicit rows. Phase 1 introduces artificial variables only for rows
//! whose slack value would violate the slack's own bounds, and minimizes the
//! total artificial mass; phase 2 optimizes the real objective.
//!
//! Anti-cycling: Dantzig pricing switches to Bland's rule after a run of
//! degenerate steps and switches back on progress.

use crate::error::SolveError;
use crate::model::{Cmp, Model, Sense};
use crate::options::{Engine, SolveOptions};
use crate::sparse;
use crate::{DualCertificate, Solution, Stats, Status};

const INF: f64 = f64::INFINITY;

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum ColState {
    Basic,
    AtLower,
    AtUpper,
    /// Non-basic free variable resting at value 0.
    Free,
}

/// A reusable snapshot of a simplex basis: which column occupies each row
/// plus the resting state of every structural and slack column.
///
/// Produced by [`crate::Model::solve_with_basis`] (and internally by every
/// successful LP solve) and re-injected as the *starting* basis of a later
/// solve over the **same** constraint skeleton — typically with a different
/// objective. Restoring skips phase 1 entirely: the basis is refactorized
/// against the original matrix and phase 2 reoptimizes from there. A snapshot
/// is only meaningful for the model shape that produced it; restoring it
/// elsewhere is detected (shape/feasibility checks) and rejected, at which
/// point callers fall back to a cold solve.
#[derive(Clone, Debug)]
pub struct Basis {
    /// Per-column resting state for the `n + m` structural + slack columns.
    pub(crate) state: Vec<ColState>,
    /// Basic column of each row.
    pub(crate) rows: Vec<usize>,
    /// Structural column count of the originating model.
    pub(crate) n: usize,
    /// Row count of the originating model.
    pub(crate) m: usize,
}

/// Outcome of a warm-started solve attempt (crate-internal: callers decide
/// how to fall back and how to count the attempt). Transient — consumed
/// immediately at each call site, so the size skew between variants never
/// sits in a collection.
#[allow(clippy::large_enum_variant)]
pub(crate) enum WarmOutcome {
    /// The restored basis reoptimized to optimality.
    Solved(Solution, Option<Basis>),
    /// The basis could not be restored (shape mismatch, singular
    /// refactorization, primal infeasibility, or numerical trouble during
    /// reoptimization). The caller should solve cold.
    Rejected,
}

/// [`WarmOutcome`] whose success variant keeps the live engine state instead
/// of flattening it to a [`Basis`] snapshot, so a seeded sweep
/// ([`crate::BatchSolver::with_seed`]) can chain later objectives through
/// in-place reoptimization — paying the snapshot-restore refactorization
/// once per sweep rather than once per solve.
#[allow(clippy::large_enum_variant)]
pub(crate) enum WarmResidentOutcome {
    /// The restored basis reoptimized to optimality; the live engine stays
    /// available for [`Resident::resolve`].
    Solved(Solution, Option<Resident>),
    /// See [`WarmOutcome::Rejected`].
    Rejected,
}

/// A live factorized tableau kept resident between the solves of one
/// objective sweep ([`crate::BatchSolver`]). Unlike a [`Basis`] snapshot —
/// which must refactorize `B⁻¹` from the original matrix on every restore —
/// the resident tableau is already at its final basis when the next
/// objective arrives, so a warm solve costs only a reduced-cost rebuild plus
/// the phase-2 pivots of the reoptimization itself.
///
/// Only valid while the originating model's constraint skeleton and bounds
/// stay unchanged (the batch layer guarantees this by holding the model
/// mutably for the sweep's whole lifetime).
pub(crate) struct DenseResident {
    t: Tableau,
    /// Structural column count of the originating model.
    n: usize,
    /// The bounds the tableau was built with (for residual checks).
    var_bounds: Vec<(f64, f64)>,
}

/// Engine-dispatching resident handle: whichever engine ran the cold solve
/// owns the live factorization for the rest of the sweep.
pub(crate) enum Resident {
    Dense(Box<DenseResident>),
    Sparse(Box<sparse::SparseResident>),
}

impl Resident {
    /// The engine that owns this resident factorization (the one that ran
    /// the cold solve).
    pub(crate) fn engine(&self) -> Engine {
        match self {
            Resident::Dense(_) => Engine::Dense,
            Resident::Sparse(r) => r.engine(),
        }
    }

    /// Reoptimizes the resident factorization under `model`'s current
    /// objective (phase 2 only).
    pub(crate) fn resolve(
        &mut self,
        model: &Model,
        opts: &SolveOptions,
    ) -> Result<ResolveOutcome, SolveError> {
        match self {
            Resident::Dense(r) => r.resolve(model, opts),
            Resident::Sparse(r) => r.resolve(model, opts),
        }
    }

    /// [`Resident::resolve`], but restoring `warm` as the starting basis
    /// instead of continuing from the current one — the slot-restore path of
    /// a resident sweep. Sparse engines reuse the live core (skeleton and
    /// working arrays) and pay only the basis refactorization; the dense
    /// engine rejects, so its callers fall back to a chain or cold solve
    /// (dense exists for differential testing, not throughput).
    ///
    /// After a rejection the engine state may be inconsistent — the caller
    /// must discard this resident.
    pub(crate) fn resolve_from(
        &mut self,
        model: &Model,
        opts: &SolveOptions,
        warm: &Basis,
    ) -> Result<ResolveOutcome, SolveError> {
        match self {
            Resident::Dense(_) => Ok(ResolveOutcome::Rejected { wasted_pivots: 0 }),
            Resident::Sparse(r) => r.resolve_from(model, opts, warm),
        }
    }

    /// Flattens the live factorization to a restorable [`Basis`] snapshot
    /// (`None` when an artificial column is still basic).
    pub(crate) fn snapshot(&self) -> Option<Basis> {
        match self {
            Resident::Dense(r) => r.t.snapshot(r.n),
            Resident::Sparse(r) => r.snapshot(),
        }
    }
}

/// Outcome of reoptimizing a [`Resident`] tableau under a new objective.
pub(crate) enum ResolveOutcome {
    /// Optimal for the new objective; the tableau stays resident.
    Solved(Solution),
    /// Numerical trouble (iteration limit, drifted residuals). The caller
    /// should discard the resident and solve cold. Carries the pivots the
    /// abandoned attempt burned, so callers can keep work counters honest.
    Rejected { wasted_pivots: u64 },
}

impl DenseResident {
    /// Reoptimizes the resident tableau under `model`'s *current* objective
    /// (phase 2 only — the basis is already primal feasible).
    ///
    /// # Errors
    ///
    /// [`SolveError::Unbounded`] when the new objective is genuinely
    /// unbounded over the skeleton; everything recoverable is reported as
    /// [`ResolveOutcome::Rejected`] instead.
    pub(crate) fn resolve(
        &mut self,
        model: &Model,
        opts: &SolveOptions,
    ) -> Result<ResolveOutcome, SolveError> {
        let t = &mut self.t;
        if model.cols.len() != self.n || model.rows.len() != t.nrows {
            return Ok(ResolveOutcome::Rejected { wasted_pivots: 0 });
        }
        let flip = matches!(model.sense, Some(Sense::Maximize));
        let mut costs = vec![0.0f64; t.ncols];
        for &(v, c) in &model.objective {
            costs[v] += if flip { -c } else { c };
        }
        t.rebuild_dj(&costs);
        t.pivots = 0; // per-solve iteration count
        match t.optimize(true, opts.pivot_cap(t.nrows, t.ncols)) {
            Ok(()) => {}
            Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
            Err(_) => {
                return Ok(ResolveOutcome::Rejected {
                    wasted_pivots: t.pivots,
                })
            }
        }
        match finish(model, &self.var_bounds, t, opts.emit_certificates) {
            Ok(sol) => Ok(ResolveOutcome::Solved(sol)),
            Err(_) => Ok(ResolveOutcome::Rejected {
                wasted_pivots: t.pivots,
            }),
        }
    }
}

struct Tableau {
    /// Row-major dense tableau, `rows × ncols`; starts as `[A | I_slack | I_art]`
    /// and is kept equal to `B⁻¹·[A | I | I]` by pivoting.
    tab: Vec<f64>,
    /// `B⁻¹·b`, maintained through pivots. Only populated (non-empty) by the
    /// warm-start path, which needs it to recover basic values from a
    /// restored basis; the cold path tracks values incrementally instead.
    rhs: Vec<f64>,
    /// Reduced costs for the current phase, length `ncols`.
    dj: Vec<f64>,
    /// Current value of every column (basic and non-basic).
    xval: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    state: Vec<ColState>,
    /// Column occupying each basis row.
    basis: Vec<usize>,
    nrows: usize,
    ncols: usize,
    /// First artificial column index (== n_struct + nrows).
    art_start: usize,
    pivots: u64,
    feas_tol: f64,
    opt_tol: f64,
    pivot_tol: f64,
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Progress { degenerate: bool },
}

impl Tableau {
    fn entry(&self, r: usize, c: usize) -> f64 {
        self.tab[r * self.ncols + c]
    }

    /// Chooses an entering column, returning `(col, direction)`.
    fn price(&self, bland: bool, phase2: bool) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, |dj|)
        let limit = if phase2 { self.art_start } else { self.ncols };
        for j in 0..limit {
            let (dir, score) = match self.state[j] {
                ColState::Basic => continue,
                ColState::AtLower => {
                    if self.lo[j] == self.hi[j] {
                        continue; // fixed
                    }
                    (1.0, -self.dj[j])
                }
                ColState::AtUpper => {
                    if self.lo[j] == self.hi[j] {
                        continue; // fixed
                    }
                    (-1.0, self.dj[j])
                }
                ColState::Free => {
                    if self.dj[j] < 0.0 {
                        (1.0, -self.dj[j])
                    } else {
                        (-1.0, self.dj[j])
                    }
                }
            };
            if score <= self.opt_tol {
                continue;
            }
            if bland {
                return Some((j, dir));
            }
            match best {
                Some((_, _, s)) if s >= score => {}
                _ => best = Some((j, dir, score)),
            }
        }
        best.map(|(j, dir, _)| (j, dir))
    }

    /// One simplex iteration: price, ratio test, then bound-flip or pivot.
    fn step(&mut self, bland: bool, phase2: bool) -> StepOutcome {
        let Some((q, dir)) = self.price(bland, phase2) else {
            return StepOutcome::Optimal;
        };

        // Ratio test. `limit` starts at the entering variable's own range
        // (bound-to-bound flip) and shrinks as basic variables hit bounds.
        let mut limit = if self.lo[q].is_finite() && self.hi[q].is_finite() {
            self.hi[q] - self.lo[q]
        } else {
            INF
        };
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_lower)
        let mut leave_piv = 0.0f64;
        for r in 0..self.nrows {
            let a = self.entry(r, q) * dir;
            let b = self.basis[r];
            let (room, to_lower) = if a > self.pivot_tol {
                (self.xval[b] - self.lo[b], true)
            } else if a < -self.pivot_tol {
                (self.hi[b] - self.xval[b], false)
            } else {
                continue;
            };
            if !room.is_finite() {
                continue;
            }
            let ratio = room.max(0.0) / a.abs();
            let a_mag = a.abs();
            // Tight tie-breaking prefers the largest pivot magnitude for
            // numerical stability.
            if ratio < limit - 1e-12 || (ratio < limit + 1e-12 && a_mag > leave_piv) {
                limit = ratio.min(limit);
                leave = Some((r, to_lower));
                leave_piv = a_mag;
            }
        }

        if limit.is_infinite() {
            return StepOutcome::Unbounded;
        }

        let step = dir * limit;
        match leave {
            None => {
                // Bound-to-bound flip: no basis change.
                for r in 0..self.nrows {
                    let a = self.entry(r, q);
                    if a != 0.0 {
                        let b = self.basis[r];
                        self.xval[b] -= step * a;
                    }
                }
                self.state[q] = if dir > 0.0 {
                    ColState::AtUpper
                } else {
                    ColState::AtLower
                };
                self.xval[q] = if dir > 0.0 { self.hi[q] } else { self.lo[q] };
                StepOutcome::Progress { degenerate: false }
            }
            Some((r, to_lower)) => {
                for i in 0..self.nrows {
                    let a = self.entry(i, q);
                    if a != 0.0 {
                        let b = self.basis[i];
                        self.xval[b] -= step * a;
                    }
                }
                self.xval[q] += step;
                let leaving = self.basis[r];
                // Snap the leaving variable exactly to its bound to stop
                // feasibility drift from accumulating.
                self.xval[leaving] = if to_lower {
                    self.lo[leaving]
                } else {
                    self.hi[leaving]
                };
                self.state[leaving] = if to_lower {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
                self.pivot(r, q);
                self.state[q] = ColState::Basic;
                self.basis[r] = q;
                StepOutcome::Progress {
                    degenerate: limit <= 1e-10,
                }
            }
        }
    }

    /// Gaussian elimination step making column `q` the unit vector for row `r`.
    fn pivot(&mut self, r: usize, q: usize) {
        self.pivots += 1;
        let ncols = self.ncols;
        let piv = self.tab[r * ncols + q];
        debug_assert!(piv.abs() > 0.0, "zero pivot");
        let inv = 1.0 / piv;
        let row_start = r * ncols;
        for j in 0..ncols {
            self.tab[row_start + j] *= inv;
        }
        self.tab[row_start + q] = 1.0; // exact unit entry
        let track_rhs = !self.rhs.is_empty();
        if track_rhs {
            self.rhs[r] *= inv;
        }
        let prhs = if track_rhs { self.rhs[r] } else { 0.0 };

        // Copy the normalized pivot row so we can stream through the others.
        let prow: Vec<f64> = self.tab[row_start..row_start + ncols].to_vec();
        for i in 0..self.nrows {
            if i == r {
                continue;
            }
            let f = self.tab[i * ncols + q];
            if f != 0.0 {
                let base = i * ncols;
                for (t, &p) in self.tab[base..base + ncols].iter_mut().zip(&prow) {
                    *t -= f * p;
                }
                self.tab[base + q] = 0.0;
                if track_rhs {
                    self.rhs[i] -= f * prhs;
                }
            }
        }
        let f = self.dj[q];
        if f != 0.0 {
            for (d, &p) in self.dj.iter_mut().zip(&prow) {
                *d -= f * p;
            }
            self.dj[q] = 0.0;
        }
    }

    /// Runs the simplex loop for one phase until optimality.
    fn optimize(&mut self, phase2: bool, cap: u64) -> Result<(), SolveError> {
        let mut degen_streak = 0u32;
        let mut bland = false;
        loop {
            if self.pivots >= cap {
                return Err(SolveError::IterationLimit);
            }
            match self.step(bland, phase2) {
                StepOutcome::Optimal => return Ok(()),
                StepOutcome::Unbounded => {
                    return if phase2 {
                        Err(SolveError::Unbounded)
                    } else {
                        // Phase 1 minimizes a sum of non-negative variables,
                        // which is bounded below; unboundedness is numerical.
                        Err(SolveError::Numerical("phase-1 objective unbounded".into()))
                    };
                }
                StepOutcome::Progress { degenerate } => {
                    if degenerate {
                        degen_streak += 1;
                        if degen_streak > 50 {
                            bland = true;
                        }
                    } else {
                        degen_streak = 0;
                        bland = false;
                    }
                }
            }
        }
    }

    /// Extracts a reusable [`Basis`] snapshot, or `None` when the final basis
    /// still contains an artificial column (a redundant row kept its frozen
    /// artificial) and therefore cannot be restored against `[A | I]` alone.
    fn snapshot(&self, n_struct: usize) -> Option<Basis> {
        if self.basis.iter().any(|&b| b >= self.art_start) {
            return None;
        }
        Some(Basis {
            state: self.state[..self.art_start].to_vec(),
            rows: self.basis.clone(),
            n: n_struct,
            m: self.nrows,
        })
    }

    /// Reads the dual certificate off the maintained reduced-cost row of a
    /// phase-2-terminated tableau. Each slack column `n + r` is a unit vector
    /// with zero cost, so its reduced cost is `−y_r` directly; this holds even
    /// for rows the cold setup negated for artificial bookkeeping, because the
    /// negation flips the slack coefficient and the dual price together.
    fn certificate(&self, n_struct: usize) -> DualCertificate {
        let row_duals = (0..self.nrows).map(|r| -self.dj[n_struct + r]).collect();
        DualCertificate {
            row_duals,
            reduced_costs: self.dj[..n_struct].to_vec(),
        }
    }

    /// Rebuilds reduced costs `dj = c − c_B·B⁻¹·A` from scratch.
    fn rebuild_dj(&mut self, costs: &[f64]) {
        self.dj.copy_from_slice(costs);
        for r in 0..self.nrows {
            let cb = costs[self.basis[r]];
            if cb != 0.0 {
                let base = r * self.ncols;
                for j in 0..self.ncols {
                    self.dj[j] -= cb * self.tab[base + j];
                }
            }
        }
        // Basic columns have zero reduced cost by construction; zero them to
        // remove round-off noise.
        for r in 0..self.nrows {
            self.dj[self.basis[r]] = 0.0;
        }
    }
}

/// Slack bounds implied by a row's comparison operator.
pub(crate) fn slack_bounds(cmp: Cmp) -> (f64, f64) {
    match cmp {
        Cmp::Le => (0.0, INF),
        Cmp::Ge => (-INF, 0.0),
        Cmp::Eq => (0.0, 0.0),
    }
}

/// Initial resting value for a non-basic column.
pub(crate) fn initial_value(lo: f64, hi: f64) -> (f64, ColState) {
    if lo.is_finite() && hi.is_finite() {
        if lo.abs() <= hi.abs() {
            (lo, ColState::AtLower)
        } else {
            (hi, ColState::AtUpper)
        }
    } else if lo.is_finite() {
        (lo, ColState::AtLower)
    } else if hi.is_finite() {
        (hi, ColState::AtUpper)
    } else {
        (0.0, ColState::Free)
    }
}

/// Solves a continuous model with the engine selected by
/// [`SolveOptions::engine`].
pub(crate) fn solve_lp(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    let bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    solve_lp_bounded(model, &bounds, opts)
}

/// [`solve_lp`] that also extracts a [`Basis`] snapshot for warm-starting a
/// later solve over the same skeleton.
pub(crate) fn solve_lp_snapshot(
    model: &Model,
    opts: &SolveOptions,
) -> Result<(Solution, Option<Basis>), SolveError> {
    if opts.engine != Engine::Dense {
        return sparse::solve_snapshot(model, opts);
    }
    let bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    let (sol, t) = solve_lp_core(model, &bounds, opts)?;
    let snapshot = t.and_then(|t| t.snapshot(model.cols.len()));
    Ok((sol, snapshot))
}

/// [`solve_lp`] that also hands back the live factorized engine state for
/// in-place reoptimization under later objectives ([`Resident::resolve`]).
pub(crate) fn solve_lp_resident(
    model: &Model,
    opts: &SolveOptions,
) -> Result<(Solution, Option<Resident>), SolveError> {
    if opts.engine != Engine::Dense {
        let (sol, resident) = sparse::solve_resident(model, opts)?;
        return Ok((sol, resident.map(|r| Resident::Sparse(Box::new(r)))));
    }
    let bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    let (sol, t) = solve_lp_core(model, &bounds, opts)?;
    let resident = t.map(|t| {
        Resident::Dense(Box::new(DenseResident {
            t,
            n: model.cols.len(),
            var_bounds: bounds,
        }))
    });
    Ok((sol, resident))
}

/// Solves a continuous relaxation with per-variable bound overrides (used by
/// branch-and-bound so nodes don't clone the constraint matrix).
pub(crate) fn solve_lp_bounded(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
) -> Result<Solution, SolveError> {
    if opts.engine != Engine::Dense {
        return sparse::solve_bounded(model, var_bounds, opts, None);
    }
    solve_lp_core(model, var_bounds, opts).map(|(sol, _)| sol)
}

fn solve_lp_core(
    model: &Model,
    var_bounds: &[(f64, f64)],
    opts: &SolveOptions,
) -> Result<(Solution, Option<Tableau>), SolveError> {
    let n = model.cols.len();
    let m = model.rows.len();
    debug_assert_eq!(var_bounds.len(), n);
    let tol = opts.tolerances;

    for &(lo, hi) in var_bounds {
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
    }

    // Trivial case: no constraints — each variable goes to its best bound.
    // (No snapshot: there is no basis, and re-solving is already trivial.)
    if m == 0 {
        return solve_unconstrained(model, var_bounds).map(|s| (s, None));
    }

    // Internal costs are always "minimize".
    let flip = matches!(model.sense, Some(Sense::Maximize));
    let mut struct_cost = vec![0.0f64; n];
    for &(v, c) in &model.objective {
        struct_cost[v] += if flip { -c } else { c };
    }

    // --- Set up columns: structural, slack, artificial. ---
    let mut lo = Vec::with_capacity(n + 2 * m);
    let mut hi = Vec::with_capacity(n + 2 * m);
    let mut xval = Vec::with_capacity(n + 2 * m);
    let mut state = Vec::with_capacity(n + 2 * m);
    for &(l, h) in var_bounds {
        let (v, s) = initial_value(l, h);
        lo.push(l);
        hi.push(h);
        xval.push(v);
        state.push(s);
    }
    for row in &model.rows {
        let (l, h) = slack_bounds(row.cmp);
        lo.push(l);
        hi.push(h);
        xval.push(0.0); // placeholder; set below
        state.push(ColState::AtLower); // placeholder
    }

    // Row activity at the initial non-basic point decides whether the slack
    // can be basic or an artificial is needed.
    let mut basis = Vec::with_capacity(m);
    let mut art_cols: Vec<(usize, f64)> = Vec::new(); // (row, sign)
    for (r, row) in model.rows.iter().enumerate() {
        let activity: f64 = row.terms.iter().map(|&(v, c)| c * xval[v]).sum();
        let v = row.rhs - activity; // required slack value
        let sc = n + r;
        if v >= lo[sc] && v <= hi[sc] {
            xval[sc] = v;
            state[sc] = ColState::Basic;
            basis.push(sc);
        } else {
            let sv = v.clamp(lo[sc], hi[sc]);
            xval[sc] = sv;
            state[sc] = if sv == lo[sc] {
                ColState::AtLower
            } else {
                ColState::AtUpper
            };
            let resid = v - sv;
            art_cols.push((r, resid.signum()));
            basis.push(usize::MAX); // fixed up below
        }
    }

    let art_start = n + m;
    let ncols = art_start + art_cols.len();
    let mut tab = vec![0.0f64; m * ncols];
    for (r, row) in model.rows.iter().enumerate() {
        let base = r * ncols;
        for &(v, c) in &row.terms {
            tab[base + v] = c;
        }
        tab[base + n + r] = 1.0;
    }
    let mut art_sum = 0.0;
    for (k, &(r, sign)) in art_cols.iter().enumerate() {
        let col = art_start + k;
        // The artificial must be a +1 unit column so the starting basis is the
        // identity; when the residual is negative, negate the whole row
        // instead of giving the artificial a -1 coefficient.
        if sign < 0.0 {
            for e in &mut tab[r * ncols..(r + 1) * ncols] {
                *e = -*e;
            }
        }
        tab[r * ncols + col] = 1.0;
        let activity: f64 = model.rows[r].terms.iter().map(|&(v, c)| c * xval[v]).sum();
        let resid = model.rows[r].rhs - activity - xval[n + r];
        lo.push(0.0);
        hi.push(INF);
        xval.push(resid.abs());
        state.push(ColState::Basic);
        basis[r] = col;
        art_sum += resid.abs();
    }

    let mut t = Tableau {
        tab,
        rhs: Vec::new(),
        dj: vec![0.0; ncols],
        xval,
        lo,
        hi,
        state,
        basis,
        nrows: m,
        ncols,
        art_start,
        pivots: 0,
        feas_tol: tol.feasibility,
        opt_tol: tol.optimality,
        pivot_tol: tol.pivot,
    };
    let cap = opts.pivot_cap(m, ncols);

    // --- Phase 1: minimize artificial mass. ---
    if art_sum > 0.0 {
        let mut costs = vec![0.0f64; ncols];
        for c in costs.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        t.rebuild_dj(&costs);
        t.optimize(false, cap)?;
        let remaining: f64 = (art_start..ncols).map(|j| t.xval[j]).sum();
        if remaining > t.feas_tol.max(1e-7) {
            return Err(SolveError::Infeasible);
        }
        drive_out_artificials(&mut t);
    }
    // Freeze artificials so phase 2 cannot reuse them.
    for j in art_start..ncols {
        t.lo[j] = 0.0;
        t.hi[j] = 0.0;
        t.xval[j] = 0.0;
    }

    // --- Phase 2: real objective. ---
    let mut costs = vec![0.0f64; ncols];
    costs[..n].copy_from_slice(&struct_cost);
    t.rebuild_dj(&costs);
    t.optimize(true, cap)?;

    let sol = finish(model, var_bounds, &t, opts.emit_certificates)?;
    Ok((sol, Some(t)))
}

/// Reads the optimal point out of a terminated tableau, checking residuals.
fn finish(
    model: &Model,
    var_bounds: &[(f64, f64)],
    t: &Tableau,
    emit: bool,
) -> Result<Solution, SolveError> {
    let n = model.cols.len();
    let certificate = emit.then(|| t.certificate(n));
    finish_values(
        model,
        var_bounds,
        t.xval[..n].to_vec(),
        EngineCounters {
            pivots: t.pivots,
            ..EngineCounters::default()
        },
        certificate,
    )
}

/// The per-engine work counters a terminated solve reports into [`Stats`].
/// The dense engine only has pivots; the sparse engines fill the rest
/// (timing counters only when a [`crate::TelemetryClock`] was injected).
#[derive(Copy, Clone, Debug, Default)]
pub(crate) struct EngineCounters {
    pub(crate) pivots: u64,
    pub(crate) refactorizations: u64,
    pub(crate) eta_len: u64,
    pub(crate) refactor_time_ns: u64,
    pub(crate) ftran_btran_time_ns: u64,
    pub(crate) lu_fill_nnz: u64,
}

/// Builds a checked [`Solution`] from a terminated engine's structural
/// values — shared by the dense and sparse engines so the residual gate and
/// the stats layout stay identical.
pub(crate) fn finish_values(
    model: &Model,
    var_bounds: &[(f64, f64)],
    values: Vec<f64>,
    counters: EngineCounters,
    certificate: Option<DualCertificate>,
) -> Result<Solution, SolveError> {
    let mut objective = model.obj_constant;
    for &(v, c) in &model.objective {
        objective += c * values[v];
    }
    let max_residual = residual(model, var_bounds, &values);
    if max_residual > 1e-5 {
        return Err(SolveError::Numerical(format!(
            "solution residual {max_residual:.3e} exceeds 1e-5"
        )));
    }
    Ok(Solution {
        objective,
        status: Status::Optimal,
        stats: Stats {
            pivots: counters.pivots,
            nodes: 0,
            best_bound: objective,
            max_residual,
            nnz: model.rows.iter().map(|r| r.terms.len() as u64).sum(),
            refactorizations: counters.refactorizations,
            eta_len: counters.eta_len,
            refactor_time_ns: counters.refactor_time_ns,
            ftran_btran_time_ns: counters.ftran_btran_time_ns,
            lu_fill_nnz: counters.lu_fill_nnz,
        },
        values,
        certificate,
    })
}

/// Attempts a warm-started solve: restore `warm`, refactorize it against the
/// original matrix, and reoptimize phase 2 under the model's current
/// objective. Phase 1 is skipped entirely — the restored basis is already
/// primal feasible when the skeleton is unchanged.
///
/// Anything that prevents completing from the restored basis (shape mismatch,
/// a singular refactorization, primal infeasibility after restore, iteration
/// limits, residual failures) yields [`WarmOutcome::Rejected`] so the caller
/// can fall back to a cold solve; only genuine model-level errors
/// ([`SolveError::Unbounded`], invalid bounds) propagate as `Err`.
pub(crate) fn solve_lp_warm(
    model: &Model,
    opts: &SolveOptions,
    warm: &Basis,
) -> Result<WarmOutcome, SolveError> {
    Ok(match solve_lp_warm_resident(model, opts, warm)? {
        WarmResidentOutcome::Solved(sol, res) => {
            WarmOutcome::Solved(sol, res.as_ref().and_then(Resident::snapshot))
        }
        WarmResidentOutcome::Rejected => WarmOutcome::Rejected,
    })
}

/// [`solve_lp_warm`] variant that hands back the live engine state on
/// success (see [`WarmResidentOutcome`]): the seeded batch path
/// ([`crate::BatchSolver::with_seed`]) installs it as the sweep's resident
/// tableau, so the restore refactorization is paid once per sweep instead of
/// once per solve.
pub(crate) fn solve_lp_warm_resident(
    model: &Model,
    opts: &SolveOptions,
    warm: &Basis,
) -> Result<WarmResidentOutcome, SolveError> {
    if opts.engine != Engine::Dense {
        return sparse::solve_warm_resident(model, opts, warm);
    }
    let n = model.cols.len();
    let m = model.rows.len();
    let tol = opts.tolerances;
    if warm.n != n || warm.m != m || m == 0 || warm.state.len() != n + m || warm.rows.len() != m {
        return Ok(WarmResidentOutcome::Rejected);
    }
    let var_bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    for &(lo, hi) in &var_bounds {
        if lo > hi {
            return Err(SolveError::Infeasible);
        }
    }

    let ncols = n + m;
    let mut lo = Vec::with_capacity(ncols);
    let mut hi = Vec::with_capacity(ncols);
    for &(l, h) in &var_bounds {
        lo.push(l);
        hi.push(h);
    }
    for row in &model.rows {
        let (l, h) = slack_bounds(row.cmp);
        lo.push(l);
        hi.push(h);
    }

    // Non-basic columns rest exactly at their recorded bound; a recorded
    // state that no longer matches a finite bound means the snapshot belongs
    // to a different model.
    let state = warm.state.clone();
    let mut xval = vec![0.0f64; ncols];
    for j in 0..ncols {
        match state[j] {
            ColState::Basic => {}
            ColState::AtLower => {
                if !lo[j].is_finite() {
                    return Ok(WarmResidentOutcome::Rejected);
                }
                xval[j] = lo[j];
            }
            ColState::AtUpper => {
                if !hi[j].is_finite() {
                    return Ok(WarmResidentOutcome::Rejected);
                }
                xval[j] = hi[j];
            }
            ColState::Free => xval[j] = 0.0,
        }
    }
    if warm
        .rows
        .iter()
        .any(|&b| b >= ncols || state[b] != ColState::Basic)
    {
        return Ok(WarmResidentOutcome::Rejected);
    }

    let mut tab = vec![0.0f64; m * ncols];
    for (r, row) in model.rows.iter().enumerate() {
        let base = r * ncols;
        for &(v, c) in &row.terms {
            tab[base + v] = c;
        }
        tab[base + n + r] = 1.0;
    }
    let rhs: Vec<f64> = model.rows.iter().map(|row| row.rhs).collect();

    let mut t = Tableau {
        tab,
        rhs,
        dj: vec![0.0; ncols],
        xval,
        lo,
        hi,
        state,
        basis: warm.rows.clone(),
        nrows: m,
        ncols,
        art_start: ncols,
        pivots: 0,
        feas_tol: tol.feasibility,
        opt_tol: tol.optimality,
        pivot_tol: tol.pivot,
    };

    // Refactorize: make each recorded basic column the unit vector of its
    // row. The row ↔ column pairing is fixed by the snapshot, but the
    // *elimination order* is chosen greedily by pivot magnitude — fixed-order
    // elimination hits structurally zero pivots on perfectly good bases
    // whenever a leading sub-permutation is singular. Ties break to the
    // lowest row index, keeping the order (and the arithmetic) deterministic.
    // If the best remaining pivot still vanishes, the recorded basis really
    // is singular with respect to this matrix — reject rather than divide.
    let mut eliminated = vec![false; m];
    for _ in 0..m {
        let mut best: Option<(usize, f64)> = None;
        for (r, &done) in eliminated.iter().enumerate() {
            if done {
                continue;
            }
            let a = t.entry(r, t.basis[r]).abs();
            if best.is_none_or(|(_, mag)| a > mag) {
                best = Some((r, a));
            }
        }
        let (r, mag) = best.expect("one un-eliminated row per pass");
        if mag <= t.pivot_tol {
            return Ok(WarmResidentOutcome::Rejected);
        }
        t.pivot(r, t.basis[r]);
        eliminated[r] = true;
    }
    // Refactorization eliminations are setup, not simplex iterations: report
    // only the reoptimization's own pivots (the convention iteration counts
    // use), so warm and cold pivot counters stay comparable.
    t.pivots = 0;

    // Recover basic values x_B = B⁻¹b − B⁻¹N·x_N and confirm the restored
    // point is still primal feasible (it must be when the skeleton is
    // unchanged; drift beyond tolerance means the snapshot is stale).
    for r in 0..m {
        let b = t.basis[r];
        let mut v = t.rhs[r];
        let base = r * t.ncols;
        for j in 0..t.ncols {
            let a = t.tab[base + j];
            if a != 0.0 && t.state[j] != ColState::Basic {
                v -= a * t.xval[j];
            }
        }
        t.xval[b] = v;
    }
    for r in 0..m {
        let b = t.basis[r];
        let v = t.xval[b];
        if v < t.lo[b] - t.feas_tol || v > t.hi[b] + t.feas_tol {
            return Ok(WarmResidentOutcome::Rejected);
        }
        t.xval[b] = v.clamp(t.lo[b], t.hi[b]);
    }

    // Phase 2 only: reduced costs for the current objective, then reoptimize.
    let flip = matches!(model.sense, Some(Sense::Maximize));
    let mut costs = vec![0.0f64; ncols];
    for &(v, c) in &model.objective {
        costs[v] += if flip { -c } else { c };
    }
    t.rebuild_dj(&costs);
    match t.optimize(true, opts.pivot_cap(m, ncols)) {
        Ok(()) => {}
        Err(SolveError::Unbounded) => return Err(SolveError::Unbounded),
        Err(_) => return Ok(WarmResidentOutcome::Rejected),
    }
    // The restore's greedy elimination is one basis refactorization; report
    // it so warm and cold work counters stay comparable across engines.
    let certificate = opts.emit_certificates.then(|| t.certificate(n));
    match finish_values(
        model,
        &var_bounds,
        t.xval[..n].to_vec(),
        EngineCounters {
            pivots: t.pivots,
            refactorizations: 1,
            ..EngineCounters::default()
        },
        certificate,
    ) {
        Ok(sol) => Ok(WarmResidentOutcome::Solved(
            sol,
            Some(Resident::Dense(Box::new(DenseResident {
                t,
                n,
                var_bounds,
            }))),
        )),
        Err(_) => Ok(WarmResidentOutcome::Rejected),
    }
}

/// Pivots basic artificial variables (all at value 0) out of the basis; rows
/// that admit no replacement column are redundant and keep their frozen
/// artificial.
fn drive_out_artificials(t: &mut Tableau) {
    for r in 0..t.nrows {
        if t.basis[r] < t.art_start {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for j in 0..t.art_start {
            if t.state[j] == ColState::Basic || t.lo[j] == t.hi[j] {
                continue;
            }
            let a = t.entry(r, j).abs();
            if a > t.pivot_tol && best.is_none_or(|(_, b)| a > b) {
                best = Some((j, a));
            }
        }
        if let Some((j, _)) = best {
            let leaving = t.basis[r];
            t.pivot(r, j);
            t.state[leaving] = ColState::AtLower;
            t.xval[leaving] = 0.0;
            t.state[j] = ColState::Basic;
            t.basis[r] = j;
        }
    }
}

pub(crate) fn solve_unconstrained(
    model: &Model,
    var_bounds: &[(f64, f64)],
) -> Result<Solution, SolveError> {
    let flip = matches!(model.sense, Some(Sense::Maximize));
    let n = model.cols.len();
    let mut cost = vec![0.0f64; n];
    for &(v, c) in &model.objective {
        cost[v] += if flip { -c } else { c };
    }
    let mut values = vec![0.0f64; n];
    for (j, &(l, h)) in var_bounds.iter().enumerate() {
        let c = cost[j];
        values[j] = if c > 0.0 {
            if l.is_finite() {
                l
            } else {
                return Err(SolveError::Unbounded);
            }
        } else if c < 0.0 {
            if h.is_finite() {
                h
            } else {
                return Err(SolveError::Unbounded);
            }
        } else {
            initial_value(l, h).0
        };
    }
    let mut objective = model.obj_constant;
    for &(v, c) in &model.objective {
        objective += c * values[v];
    }
    // With no rows the dual vector is empty and the reduced costs are the
    // internal costs themselves; the certificate is trivially checkable
    // (bound terms alone) and free to emit, so it is always attached.
    let certificate = Some(DualCertificate {
        row_duals: Vec::new(),
        reduced_costs: cost,
    });
    Ok(Solution {
        objective,
        status: Status::Optimal,
        stats: Stats {
            best_bound: objective,
            ..Stats::default()
        },
        values,
        certificate,
    })
}

fn residual(model: &Model, var_bounds: &[(f64, f64)], values: &[f64]) -> f64 {
    let mut worst = 0.0f64;
    for row in &model.rows {
        let lhs: f64 = row.terms.iter().map(|&(v, c)| c * values[v]).sum();
        let viol = match row.cmp {
            Cmp::Le => (lhs - row.rhs).max(0.0),
            Cmp::Ge => (row.rhs - lhs).max(0.0),
            Cmp::Eq => (lhs - row.rhs).abs(),
        };
        worst = worst.max(viol);
    }
    for (&(l, h), &x) in var_bounds.iter().zip(values) {
        worst = worst.max(l - x).max(x - h);
    }
    worst
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, Engine, Model, Sense, Solution, SolveError, SolveOptions};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    /// These are the dense engine's unit tests: the default engine is now
    /// sparse, so pin the dense path explicitly (the sparse module carries
    /// its own copies plus cross-engine agreement tests).
    fn dense(m: &Model) -> Result<Solution, SolveError> {
        m.solve_with(&SolveOptions {
            engine: Engine::Dense,
            ..Default::default()
        })
    }

    #[test]
    fn textbook_max_problem() {
        // max 3x + 2y  s.t. x + y ≤ 6, 2x + y ≤ 9, x,y ∈ [0,10] → (3,3), 15.
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 6.0);
        m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        let s = dense(&m).unwrap();
        assert_close(s.objective, 15.0);
        assert_close(s.value(x), 3.0);
        assert_close(s.value(y), 3.0);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 (as a row), y ∈ [0, 10].
        let mut m = Model::new();
        let x = m.add_var(0.0, 100.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Ge, 4.0);
        m.add_constraint(x, Cmp::Ge, 1.0);
        m.set_objective(Sense::Minimize, 2.0 * x + 3.0 * y);
        let s = dense(&m).unwrap();
        // Cheapest: x as large as needed: x=4, y=0 → 8.
        assert_close(s.objective, 8.0);
        assert_close(s.value(x), 4.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 3, x - y = 0 → x = y = 1, obj 2.
        let mut m = Model::new();
        let x = m.add_var(-10.0, 10.0);
        let y = m.add_var(-10.0, 10.0);
        m.add_constraint(x + 2.0 * y, Cmp::Eq, 3.0);
        m.add_constraint(x - y, Cmp::Eq, 0.0);
        m.set_objective(Sense::Minimize, x + y);
        let s = dense(&m).unwrap();
        assert_close(s.value(x), 1.0);
        assert_close(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(2.0 * x, Cmp::Ge, 3.0);
        assert_eq!(dense(&m).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY);
        let y = m.add_var(0.0, f64::INFINITY);
        m.add_constraint(x - y, Cmp::Le, 1.0);
        m.set_objective(Sense::Maximize, x + y);
        assert_eq!(dense(&m).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn negative_bounds_and_negative_rhs() {
        // min x s.t. x + y ≤ -2, y ∈ [-5, 5], x ∈ [-4, 4] → x = -4 feasible
        // (y ≤ 2). Optimum -4.
        let mut m = Model::new();
        let x = m.add_var(-4.0, 4.0);
        let y = m.add_var(-5.0, 5.0);
        m.add_constraint(x + y, Cmp::Le, -2.0);
        m.set_objective(Sense::Minimize, x);
        let s = dense(&m).unwrap();
        assert_close(s.objective, -4.0);
    }

    #[test]
    fn bound_flip_only_problem() {
        // max x + y with a slack-dominated row; optimum at upper bounds.
        let mut m = Model::new();
        let x = m.add_var(-1.0, 2.0);
        let y = m.add_var(-1.0, 3.0);
        m.add_constraint(x + y, Cmp::Le, 100.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = dense(&m).unwrap();
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn free_variable_in_equality() {
        // y free, x ∈ [0, 1]: y = 3x - 1, max y → x=1, y=2.
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        let y = m.add_var(f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint(y - 3.0 * x, Cmp::Eq, -1.0);
        m.set_objective(Sense::Maximize, 1.0 * y);
        let s = dense(&m).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn redundant_rows_are_harmless() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 5.0);
        let y = m.add_var(0.0, 5.0);
        m.add_constraint(x + y, Cmp::Eq, 4.0);
        m.add_constraint(2.0 * x + 2.0 * y, Cmp::Eq, 8.0); // same hyperplane
        m.set_objective(Sense::Maximize, 1.0 * x);
        let s = dense(&m).unwrap();
        assert_close(s.objective, 4.0);
    }

    #[test]
    fn degenerate_vertex_terminates() {
        // Several constraints meet near one vertex; summing the two binding
        // rows shows x + y ≤ 2/3, attained at x = y = 1/3.
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 1.0);
        m.add_constraint(x + 2.0 * y, Cmp::Le, 1.0);
        m.add_constraint(2.0 * x + y, Cmp::Le, 1.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = dense(&m).unwrap();
        assert_close(s.objective, 2.0 / 3.0);
    }

    #[test]
    fn objective_constant_is_carried() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(1.0 * x, Cmp::Le, 0.5);
        m.set_objective(Sense::Maximize, 2.0 * x + 10.0);
        let s = dense(&m).unwrap();
        assert_close(s.objective, 11.0);
    }

    #[test]
    fn fixed_variables_respected() {
        let mut m = Model::new();
        let x = m.add_var(2.0, 2.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 5.0);
        m.set_objective(Sense::Maximize, x + y);
        let s = dense(&m).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.value(x), 2.0);
    }

    #[test]
    fn no_constraints_uses_bounds() {
        let mut m = Model::new();
        let x = m.add_var(-3.0, 7.0);
        let y = m.add_var(-2.0, 2.0);
        m.set_objective(Sense::Maximize, x - 5.0 * y);
        let s = dense(&m).unwrap();
        assert_close(s.objective, 7.0 + 10.0);
    }
}
