//! Sparse LU factorization of the simplex basis, with Forrest–Tomlin
//! column-replacement updates.
//!
//! The [`crate::sparse`] engine's `Engine::Lu` variant represents the basis
//! inverse as `B = L̃·U` maintained by this module: a sparse LU
//! factorization refreshed only occasionally, kept current between
//! refactorizations by replacing one column of `U` per pivot — when the
//! engine judges that cheap ([`LuFactors::replace_cost`]); pivots with long
//! `U`-tails fold in as product-form etas *on top of* the factors instead,
//! managed by the engine. A freshly created factorization
//! ([`LuFactors::identity`]) is the trivial `diag(±1)` slack basis and
//! short-circuits both solves to sign flips until the first real
//! [`LuFactors::factorize`]. The
//! factorization is left-looking over the basis columns in the order the
//! caller supplies (unit columns first, then structural columns by ascending
//! non-zero count — a static Markowitz-style fill-reducing order), with
//! **threshold partial pivoting** for stability: among the unpivoted rows of
//! the eliminated column, any row whose magnitude is at least
//! `PIVOT_THRESHOLD` of the column maximum is acceptable, and the sparsest
//! such row (fewest non-zeros across the basis columns, ties to the lowest
//! row index — the Markowitz tie-break) is chosen. That trades a bounded
//! growth factor for markedly less fill than strict partial pivoting, while
//! never accepting a pivot smaller than a fixed fraction of the best
//! available one.
//!
//! `L` and `U` are stored column-ordered in flat CSC-style arrays. `L` is
//! unit lower triangular *up to the row permutation* and static between
//! refactorizations: column `t` holds the multipliers (in original row
//! indices) produced when elimination position `t` pivoted on row
//! `pivot_row[t]`. `U` column `k` holds the entries at positions `t < k`,
//! with the diagonal kept separate for the divisions FTRAN/BTRAN do per
//! position. `U`'s position ↔ basis-row pairing starts equal to `L`'s
//! (`u_row == pivot_row`) and diverges as updates land.
//!
//! **Forrest–Tomlin update** ([`LuFactors::replace_column`]): when the
//! simplex pivots, the basis changes by one column, so `U` changes by one
//! column — the *spike* `L̃⁻¹·a_q`, captured by [`LuFactors::ftran`] on its
//! way through. The spiked column is moved to the last position (a cyclic
//! permutation of the positions it crossed) and the displaced row of `U` is
//! eliminated against the diagonals it runs over; each elimination is
//! recorded as a row eta applied between `L` and `U`. The eta file grows by
//! the non-zeros of *one row of `U`* per pivot — versus a whole transformed
//! column under product-form updates — which is what keeps FTRAN/BTRAN cost
//! from growing linearly with the pivot count on long runs.
//!
//! Everything is deterministic: pivot choice and update arithmetic are pure
//! functions of the column data and tie-break order, so a factorization is
//! bit-reproducible run to run — the property the golden ε̄ bit-locks rest
//! on.

use crate::kernel;

/// Threshold-pivoting acceptance factor: a pivot candidate must be at least
/// this fraction of the column's maximum unpivoted magnitude.
const PIVOT_THRESHOLD: f64 = 0.1;

/// A sparse LU factorization `B = L̃·U` of the current basis: static `L`
/// factors plus the Forrest–Tomlin row-eta file on the `L` side, and a `U`
/// that updates in place as basis columns are replaced.
#[derive(Clone, Debug)]
pub(crate) struct LuFactors {
    m: usize,
    /// Column `t` of `L`: multipliers at original row indices.
    l_ptr: Vec<usize>,
    l_idx: Vec<usize>,
    l_val: Vec<f64>,
    /// Column `k` of `U`: entries at positions `t < k` (position indices).
    u_ptr: Vec<usize>,
    u_idx: Vec<usize>,
    u_val: Vec<f64>,
    /// `U[k,k]`, the pivot magnitude of position `k`.
    u_diag: Vec<f64>,
    /// `L`'s elimination position → original basis row (static).
    pivot_row: Vec<usize>,
    /// `U`'s position → basis row. Equal to `pivot_row` at refactorization;
    /// cyclically permuted by every Forrest–Tomlin update.
    u_row: Vec<usize>,
    /// Basis row → `U` position (inverse of `u_row`).
    pos_of_row: Vec<usize>,
    /// Forrest–Tomlin row etas, grouped one group per column replacement:
    /// group `g` subtracts `ft_mul[e]·v[ft_src[e]]` from `v[ft_target[g]]`
    /// for `e` in `ft_ptr[g]..ft_ptr[g+1]` (all rows, stable across later
    /// updates).
    ft_target: Vec<usize>,
    ft_ptr: Vec<usize>,
    ft_src: Vec<usize>,
    ft_mul: Vec<f64>,
    /// Column replacements applied since the factorization was built.
    updates: usize,
    /// Stored non-zeros right after factorization — the baseline the
    /// fill-growth refactorization trigger measures against.
    base_nnz: usize,
    /// The `L̃⁻¹`-stage vector of the most recent [`Self::ftran`] (row
    /// space): exactly the Forrest–Tomlin spike when that FTRAN was the
    /// entering column's.
    spike: Vec<f64>,
    /// BTRAN scratch, position-indexed.
    work: Vec<f64>,
    /// Update scratch: stashed tail columns of `U`.
    tail_ptr: Vec<usize>,
    tail_idx: Vec<usize>,
    tail_val: Vec<f64>,
    /// Update scratch: partial row-wise copy of `U` for the eliminations.
    csr_ptr: Vec<usize>,
    csr_idx: Vec<usize>,
    csr_val: Vec<f64>,
    /// Update scratch: dense accumulator for the displaced row (all zeros
    /// between updates).
    acc: Vec<f64>,
    /// `Some(neg_rows)` while the factors are still the pristine
    /// `diag(±1)` starting basis from [`Self::identity`]: both solves
    /// reduce to sign flips at these rows, costing `O(neg_rows)` instead of
    /// two dense position sweeps. Cleared by [`Self::factorize`] and
    /// [`Self::replace_column`].
    trivial: Option<Vec<usize>>,
}

impl LuFactors {
    fn finish_init(&mut self) {
        self.u_row = self.pivot_row.clone();
        self.pos_of_row = vec![0; self.m];
        for (k, &r) in self.u_row.iter().enumerate() {
            self.pos_of_row[r] = k;
        }
        self.spike = vec![0.0; self.m];
        self.acc = vec![0.0; self.m];
        self.base_nnz = self.l_val.len() + self.u_val.len() + self.m;
    }

    /// The factorization of `diag(±1)`: identity permutation, empty `L`/`U`
    /// fill, `-1` diagonals at `neg_rows`. This is the exact starting basis
    /// of a fresh two-phase solve (slacks and signed artificials).
    pub(crate) fn identity(m: usize, neg_rows: &[usize]) -> Self {
        let mut u_diag = vec![1.0f64; m];
        for &r in neg_rows {
            u_diag[r] = -1.0;
        }
        let mut lu = LuFactors {
            m,
            l_ptr: vec![0; m + 1],
            l_idx: Vec::new(),
            l_val: Vec::new(),
            u_ptr: vec![0; m + 1],
            u_idx: Vec::new(),
            u_val: Vec::new(),
            u_diag,
            pivot_row: (0..m).collect(),
            u_row: Vec::new(),
            pos_of_row: Vec::new(),
            ft_target: Vec::new(),
            ft_ptr: vec![0],
            ft_src: Vec::new(),
            ft_mul: Vec::new(),
            updates: 0,
            base_nnz: 0,
            spike: Vec::new(),
            work: vec![0.0; m],
            tail_ptr: Vec::new(),
            tail_idx: Vec::new(),
            tail_val: Vec::new(),
            csr_ptr: Vec::new(),
            csr_idx: Vec::new(),
            csr_val: Vec::new(),
            acc: Vec::new(),
            trivial: Some(neg_rows.to_vec()),
        };
        lu.finish_init();
        lu
    }

    /// Factorizes the `m × m` basis matrix whose column `k` is
    /// `entries[col_ptr[k]..col_ptr[k+1]]` (original row index, value).
    /// `row_weight[r]` is the Markowitz tie-break weight of row `r`
    /// (its non-zero count across the basis columns). Returns `None` when
    /// some column admits no pivot above `pivot_tol` — a singular basis,
    /// which callers treat exactly like a failed refactorization (warm
    /// restores reject, mid-solve callers repair).
    pub(crate) fn factorize(
        m: usize,
        col_ptr: &[usize],
        entries: &[(usize, f64)],
        row_weight: &[usize],
        pivot_tol: f64,
    ) -> Option<Self> {
        let mut lu = LuFactors {
            m,
            l_ptr: Vec::with_capacity(m + 1),
            l_idx: Vec::new(),
            l_val: Vec::new(),
            u_ptr: Vec::with_capacity(m + 1),
            u_idx: Vec::new(),
            u_val: Vec::new(),
            u_diag: Vec::with_capacity(m),
            pivot_row: Vec::with_capacity(m),
            u_row: Vec::new(),
            pos_of_row: Vec::new(),
            ft_target: Vec::new(),
            ft_ptr: vec![0],
            ft_src: Vec::new(),
            ft_mul: Vec::new(),
            updates: 0,
            base_nnz: 0,
            spike: Vec::new(),
            work: vec![0.0; m],
            tail_ptr: Vec::new(),
            tail_idx: Vec::new(),
            tail_val: Vec::new(),
            csr_ptr: Vec::new(),
            csr_idx: Vec::new(),
            csr_val: Vec::new(),
            acc: Vec::new(),
            trivial: None,
        };
        lu.l_ptr.push(0);
        lu.u_ptr.push(0);
        // Original row → elimination position, `usize::MAX` while unpivoted.
        let mut pos_of_row = vec![usize::MAX; m];
        let mut x = vec![0.0f64; m];
        // Gilbert–Peierls work areas. `reach` holds the already-pivoted
        // positions this column's elimination can touch (symbolic closure
        // over the L pattern), `fill` the unpivoted rows that can end up
        // non-zero — together the exact support of the dense sweep, so the
        // loop below performs the *same* floating-point operations in the
        // same order as eliminating over all positions, at sparse cost.
        let mut reach: Vec<usize> = Vec::new();
        let mut fill: Vec<usize> = Vec::new();
        let mut in_reach = vec![false; m];
        let mut in_fill = vec![false; m];
        let mut stack: Vec<(usize, usize)> = Vec::new(); // (position, edge cursor)

        for k in 0..m {
            reach.clear();
            fill.clear();
            for &(r, v) in &entries[col_ptr[k]..col_ptr[k + 1]] {
                x[r] = v;
                let t = pos_of_row[r];
                if t == usize::MAX {
                    if !in_fill[r] {
                        in_fill[r] = true;
                        fill.push(r);
                    }
                    continue;
                }
                if in_reach[t] {
                    continue;
                }
                // Depth-first closure: an L column at position `t` scatters
                // into rows that are either still unpivoted (fill) or were
                // pivoted at some later position `t' > t` (recurse).
                in_reach[t] = true;
                stack.push((t, lu.l_ptr[t]));
                while let Some(top) = stack.last_mut() {
                    let t = top.0;
                    let e1 = lu.l_ptr[t + 1];
                    let mut child: Option<usize> = None;
                    while top.1 < e1 {
                        let rr = lu.l_idx[top.1];
                        top.1 += 1;
                        let tt = pos_of_row[rr];
                        if tt == usize::MAX {
                            if !in_fill[rr] {
                                in_fill[rr] = true;
                                fill.push(rr);
                            }
                        } else if !in_reach[tt] {
                            in_reach[tt] = true;
                            child = Some(tt);
                            break;
                        }
                    }
                    match child {
                        Some(tt) => stack.push((tt, lu.l_ptr[tt])),
                        None => {
                            reach.push(t);
                            stack.pop();
                        }
                    }
                }
            }
            // Ascending position order is a topological order (L columns
            // only scatter into positions pivoted later), and matches the
            // dense sweep's `0..k` order exactly.
            reach.sort_unstable();
            for &t in &reach {
                let xt = x[lu.pivot_row[t]];
                if xt != 0.0 {
                    let (e0, e1) = (lu.l_ptr[t], lu.l_ptr[t + 1]);
                    kernel::scatter_sub(&mut x, &lu.l_idx[e0..e1], &lu.l_val[e0..e1], xt);
                }
            }
            // Threshold partial pivoting over the unpivoted rows: only rows
            // in `fill` can be non-zero, and the ascending scan preserves
            // the dense version's lowest-row tie-break among equal weights.
            fill.sort_unstable();
            let mut max_mag = 0.0f64;
            for &r in &fill {
                max_mag = max_mag.max(x[r].abs());
            }
            if max_mag <= pivot_tol {
                return None;
            }
            let acceptable = PIVOT_THRESHOLD * max_mag;
            let mut best: Option<(usize, usize)> = None; // (weight, row)
            for &r in &fill {
                if x[r].abs() >= acceptable {
                    let w = row_weight[r];
                    if best.is_none_or(|(bw, _)| w < bw) {
                        best = Some((w, r));
                    }
                }
            }
            let (_, piv) = best.expect("max_mag > pivot_tol guarantees a candidate");
            let pd = x[piv];
            // U column: entries at already-pivoted positions.
            for &t in &reach {
                let v = x[lu.pivot_row[t]];
                if v != 0.0 {
                    lu.u_idx.push(t);
                    lu.u_val.push(v);
                }
            }
            lu.u_ptr.push(lu.u_idx.len());
            lu.u_diag.push(pd);
            // L column: multipliers at the remaining unpivoted rows.
            for &r in &fill {
                if r != piv && x[r] != 0.0 {
                    lu.l_idx.push(r);
                    lu.l_val.push(x[r] / pd);
                }
            }
            lu.l_ptr.push(lu.l_idx.len());
            lu.pivot_row.push(piv);
            pos_of_row[piv] = k;
            for &t in &reach {
                x[lu.pivot_row[t]] = 0.0;
                in_reach[t] = false;
            }
            for &r in &fill {
                x[r] = 0.0;
                in_fill[r] = false;
            }
        }
        lu.finish_init();
        Some(lu)
    }

    /// Elimination position → original basis row: `basis[pivot_row[k]]` is
    /// the column this factorization eliminated at position `k`. Only
    /// meaningful right after [`Self::factorize`] (updates re-pair `U`'s
    /// positions but the caller's heading tracks rows, not positions).
    pub(crate) fn pivot_rows(&self) -> &[usize] {
        &self.pivot_row
    }

    /// Stored non-zeros of the factors (`L` fill + `U` fill + diagonal +
    /// update etas) — the fill measure behind `Stats::lu_fill_nnz`.
    pub(crate) fn nnz(&self) -> usize {
        self.l_val.len() + self.u_val.len() + self.m + self.ft_mul.len()
    }

    /// Column replacements applied since the factorization was built.
    pub(crate) fn update_len(&self) -> usize {
        self.updates
    }

    /// Fill accumulated since factorization (update-eta entries plus net `U`
    /// growth) — the measured growth the refactorization trigger watches.
    pub(crate) fn update_fill(&self) -> usize {
        self.nnz().saturating_sub(self.base_nnz)
    }

    /// Stored `U` entries strictly past `leaving_row`'s position — the tail
    /// a [`Self::replace_column`] for that row would have to rewrite, and
    /// therefore its cost (the spike itself is already in hand). `0` when
    /// the leaving column is the last position, the free case.
    pub(crate) fn replace_cost(&self, leaving_row: usize) -> usize {
        let p = self.pos_of_row[leaving_row];
        self.u_idx.len() - self.u_ptr[p + 1]
    }

    /// Whether the factors are still the pristine `diag(±1)` starting basis
    /// — solves are sign flips and no spike is captured, so pivots must
    /// fold into the product-form file, never via [`Self::replace_column`].
    pub(crate) fn is_trivial(&self) -> bool {
        self.trivial.is_some()
    }

    /// `v ← B⁻¹·v` in place, `v` indexed by basis row: forward L-solve in
    /// the pivot order, the Forrest–Tomlin row etas in application order,
    /// then the backward U-solve, writing the coefficient of the column at
    /// position `k` into `v[u_row[k]]`. The intermediate `L̃⁻¹`-stage vector
    /// is saved as the next update's spike.
    pub(crate) fn ftran(&mut self, v: &mut [f64]) {
        if let Some(negs) = &self.trivial {
            for &r in negs {
                v[r] = -v[r];
            }
            return;
        }
        for t in 0..self.m {
            let xt = v[self.pivot_row[t]];
            if xt != 0.0 {
                let (e0, e1) = (self.l_ptr[t], self.l_ptr[t + 1]);
                kernel::scatter_sub(v, &self.l_idx[e0..e1], &self.l_val[e0..e1], xt);
            }
        }
        for g in 0..self.ft_target.len() {
            let (e0, e1) = (self.ft_ptr[g], self.ft_ptr[g + 1]);
            v[self.ft_target[g]] -=
                kernel::dot_gather(v, &self.ft_src[e0..e1], &self.ft_mul[e0..e1]);
        }
        self.spike.copy_from_slice(v);
        for k in (0..self.m).rev() {
            let s = v[self.u_row[k]];
            if s != 0.0 {
                let z = s / self.u_diag[k];
                v[self.u_row[k]] = z;
                let (e0, e1) = (self.u_ptr[k], self.u_ptr[k + 1]);
                kernel::scatter_sub_mapped(
                    v,
                    &self.u_row,
                    &self.u_idx[e0..e1],
                    &self.u_val[e0..e1],
                    z,
                );
            }
        }
    }

    /// `yᵀ ← yᵀ·B⁻¹` in place, `y` indexed by basis row: a forward
    /// `Uᵀ`-solve into position space, the transposed update etas in reverse
    /// order, then the backward `Lᵀ`-solve.
    pub(crate) fn btran(&mut self, y: &mut [f64]) {
        if let Some(negs) = &self.trivial {
            for &r in negs {
                y[r] = -y[r];
            }
            return;
        }
        for k in 0..self.m {
            let (e0, e1) = (self.u_ptr[k], self.u_ptr[k + 1]);
            let s = y[self.u_row[k]]
                - kernel::dot_gather(&self.work, &self.u_idx[e0..e1], &self.u_val[e0..e1]);
            self.work[k] = if s != 0.0 { s / self.u_diag[k] } else { 0.0 };
        }
        for k in 0..self.m {
            y[self.u_row[k]] = self.work[k];
        }
        for g in (0..self.ft_target.len()).rev() {
            let t = y[self.ft_target[g]];
            if t != 0.0 {
                let (e0, e1) = (self.ft_ptr[g], self.ft_ptr[g + 1]);
                kernel::scatter_sub(y, &self.ft_src[e0..e1], &self.ft_mul[e0..e1], t);
            }
        }
        for t in (0..self.m).rev() {
            let (e0, e1) = (self.l_ptr[t], self.l_ptr[t + 1]);
            let s = y[self.pivot_row[t]]
                - kernel::dot_gather(y, &self.l_idx[e0..e1], &self.l_val[e0..e1]);
            y[self.pivot_row[t]] = s;
        }
    }

    /// Forrest–Tomlin column replacement: the basis column currently paired
    /// with `leaving_row` is replaced by the column whose FTRAN just ran
    /// (its `L̃⁻¹`-stage spike was saved by [`Self::ftran`]). The spiked
    /// position is cyclically rotated to the end of `U` and the displaced
    /// `U` row is eliminated against the diagonals it crosses, appending one
    /// row-eta group. Returns `false` when the resulting diagonal is at or
    /// below `pivot_tol` — the factors are then numerically unusable and the
    /// caller must refactorize before the next solve.
    pub(crate) fn replace_column(&mut self, leaving_row: usize, pivot_tol: f64) -> bool {
        debug_assert!(
            !self.is_trivial(),
            "column replacement needs a spike, which trivial solves never capture"
        );
        let m = self.m;
        let p = self.pos_of_row[leaving_row];
        debug_assert_eq!(self.u_row[p], leaving_row);
        self.updates += 1;

        // Stash the tail columns (p+1..m) of U, then truncate to [0, p):
        // the prefix columns reference only positions < p and are untouched.
        self.tail_ptr.clear();
        self.tail_idx.clear();
        self.tail_val.clear();
        self.tail_ptr.push(0);
        for k in p + 1..m {
            for e in self.u_ptr[k]..self.u_ptr[k + 1] {
                self.tail_idx.push(self.u_idx[e]);
                self.tail_val.push(self.u_val[e]);
            }
            self.tail_ptr.push(self.tail_idx.len());
        }
        self.u_idx.truncate(self.u_ptr[p]);
        self.u_val.truncate(self.u_ptr[p]);
        self.u_ptr.truncate(p + 1);

        // Rewrite the tail shifted one position left, diverting the
        // displaced row's entries (old position p) into the accumulator.
        let mut diverted = 0usize;
        for i in 0..m - 1 - p {
            for e in self.tail_ptr[i]..self.tail_ptr[i + 1] {
                let t = self.tail_idx[e];
                if t == p {
                    self.acc[p + i] += self.tail_val[e];
                    diverted += 1;
                } else {
                    self.u_idx.push(if t < p { t } else { t - 1 });
                    self.u_val.push(self.tail_val[e]);
                }
            }
            self.u_ptr.push(self.u_idx.len());
        }
        for k in p + 1..m {
            self.u_diag[k - 1] = self.u_diag[k];
            self.u_row[k - 1] = self.u_row[k];
        }
        self.u_diag.truncate(m - 1);
        self.u_row.truncate(m - 1);
        for (k, &r) in self.u_row.iter().enumerate().skip(p) {
            self.pos_of_row[r] = k;
        }

        // Append the spike as the new last column: its entries at the
        // surviving positions sit above the diagonal; its entry at the
        // leaving row seeds the new diagonal.
        for (k, &r) in self.u_row.iter().enumerate() {
            let z = self.spike[r];
            if z != 0.0 {
                self.u_idx.push(k);
                self.u_val.push(z);
            }
        }
        self.u_ptr.push(self.u_idx.len());
        let mut d = self.spike[leaving_row];

        // The common case on the certifier's slack-heavy bases: the
        // displaced row was empty beyond its diagonal, so the spiked matrix
        // is already upper triangular and no eliminations (or row etas) are
        // needed.
        if diverted == 0 {
            self.u_diag.push(d);
            self.u_row.push(leaving_row);
            self.pos_of_row[leaving_row] = m - 1;
            return d.is_finite() && d.abs() > pivot_tol;
        }

        // Partial row-wise copy of U (rows and columns in [p, m-1), spike
        // column excluded) for the row eliminations below.
        self.csr_ptr.clear();
        self.csr_ptr.resize(m, 0);
        for k in p..m - 1 {
            for e in self.u_ptr[k]..self.u_ptr[k + 1] {
                let t = self.u_idx[e];
                if t >= p {
                    self.csr_ptr[t + 1] += 1;
                }
            }
        }
        for t in p..m - 1 {
            self.csr_ptr[t + 1] += self.csr_ptr[t];
        }
        let row_nnz = self.csr_ptr[m - 1];
        self.csr_idx.clear();
        self.csr_idx.resize(row_nnz, 0);
        self.csr_val.clear();
        self.csr_val.resize(row_nnz, 0.0);
        let mut fill = std::mem::take(&mut self.csr_ptr);
        for k in p..m - 1 {
            for e in self.u_ptr[k]..self.u_ptr[k + 1] {
                let t = self.u_idx[e];
                if t >= p {
                    self.csr_idx[fill[t]] = k;
                    self.csr_val[fill[t]] = self.u_val[e];
                    fill[t] += 1;
                }
            }
        }
        // `fill[t]` now equals the original `csr_ptr[t+1]`; shift it back so
        // row `t` spans `csr_ptr[t]..csr_ptr[t+1]` again.
        for t in (p + 1..m).rev() {
            fill[t] = fill[t - 1];
        }
        fill[p] = 0;
        self.csr_ptr = fill;

        // Eliminate the displaced row left to right. Each non-zero spends
        // one row eta; its fill lands strictly to the right and is consumed
        // by a later iteration, so the row collapses to a single diagonal.
        let eta_start = self.ft_src.len();
        for j in p..m - 1 {
            let a = self.acc[j];
            if a == 0.0 {
                continue;
            }
            self.acc[j] = 0.0;
            let mu = a / self.u_diag[j];
            self.ft_src.push(self.u_row[j]);
            self.ft_mul.push(mu);
            let lo = if j == p { 0 } else { self.csr_ptr[j] };
            for e in lo..self.csr_ptr[j + 1] {
                self.acc[self.csr_idx[e]] -= mu * self.csr_val[e];
            }
            d -= mu * self.spike[self.u_row[j]];
        }
        if self.ft_src.len() > eta_start {
            self.ft_target.push(leaving_row);
            self.ft_ptr.push(self.ft_src.len());
        }

        self.u_diag.push(d);
        self.u_row.push(leaving_row);
        self.pos_of_row[leaving_row] = m - 1;
        d.is_finite() && d.abs() > pivot_tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64 stream of values in `[-1, 1)`.
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        }
    }

    /// Flattens dense columns into the `(col_ptr, entries, row_weight)`
    /// triple `factorize` consumes.
    fn from_dense(cols: &[Vec<f64>]) -> (Vec<usize>, Vec<(usize, f64)>, Vec<usize>) {
        let m = cols.len();
        let mut ptr = vec![0usize];
        let mut entries = Vec::new();
        let mut weight = vec![0usize; m];
        for col in cols {
            for (r, &v) in col.iter().enumerate() {
                if v != 0.0 {
                    entries.push((r, v));
                    weight[r] += 1;
                }
            }
            ptr.push(entries.len());
        }
        (ptr, entries, weight)
    }

    /// `B·w` for dense columns in *row-heading* order: `heading[r]` names
    /// the column paired with row `r`, and `w[r]` is its coefficient.
    fn mul(cols: &[Vec<f64>], heading: &[usize], w: &[f64]) -> Vec<f64> {
        let m = cols.len();
        let mut out = vec![0.0; m];
        for (r, &j) in heading.iter().enumerate() {
            let c = w[r];
            for i in 0..m {
                out[i] += cols[j][i] * c;
            }
        }
        out
    }

    fn random_cols(m: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut next = rng(seed);
        (0..m)
            .map(|j| {
                (0..m)
                    .map(|r| {
                        // Band structure plus a strong-ish diagonal so the
                        // matrix is comfortably non-singular.
                        if r.abs_diff(j) <= 2 {
                            next() + if r == j { 2.0 } else { 0.0 }
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Row `r` → basis column index, straight from the factorization.
    fn heading(lu: &LuFactors, m: usize) -> Vec<usize> {
        let mut h = vec![0usize; m];
        for (k, &r) in lu.pivot_rows().iter().enumerate() {
            h[r] = k;
        }
        h
    }

    #[test]
    fn ftran_solves_against_dense_multiply() {
        for seed in [1u64, 7, 42] {
            let m = 12;
            let cols = random_cols(m, seed);
            let (ptr, entries, weight) = from_dense(&cols);
            let mut lu =
                LuFactors::factorize(m, &ptr, &entries, &weight, 1e-9).expect("non-singular");
            let h = heading(&lu, m);
            let mut next = rng(seed ^ 0xABCD);
            let b: Vec<f64> = (0..m).map(|_| next()).collect();
            let mut w = b.clone();
            lu.ftran(&mut w);
            let back = mul(&cols, &h, &w);
            for (a, e) in back.iter().zip(&b) {
                assert!((a - e).abs() < 1e-9, "seed {seed}: B·w = {a}, want {e}");
            }
        }
    }

    #[test]
    fn btran_solves_transposed_system() {
        for seed in [3u64, 9, 77] {
            let m = 10;
            let cols = random_cols(m, seed);
            let (ptr, entries, weight) = from_dense(&cols);
            let mut lu =
                LuFactors::factorize(m, &ptr, &entries, &weight, 1e-9).expect("non-singular");
            let h = heading(&lu, m);
            let mut next = rng(seed ^ 0x5A5A);
            let c: Vec<f64> = (0..m).map(|_| next()).collect();
            let mut y = c.clone();
            lu.btran(&mut y);
            // yᵀ·B = cᵀ in row-heading order: y·B_col(r) = c[r].
            for (r, &j) in h.iter().enumerate() {
                let dot: f64 = cols[j].iter().zip(&y).map(|(a, b)| a * b).sum();
                let want = c[r];
                assert!(
                    (dot - want).abs() < 1e-9,
                    "seed {seed} row {r}: y·B = {dot}, want {want}"
                );
            }
        }
    }

    #[test]
    fn singular_basis_is_reported() {
        // Column 2 = column 0 + column 1: rank 2 in a 3×3 basis.
        let cols = vec![
            vec![1.0, 2.0, 0.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 3.0, 1.0],
        ];
        let (ptr, entries, weight) = from_dense(&cols);
        assert!(LuFactors::factorize(3, &ptr, &entries, &weight, 1e-9).is_none());
        // The zero matrix is singular from the first column.
        let zero = vec![vec![0.0; 3]; 3];
        let (ptr, entries, weight) = from_dense(&zero);
        assert!(LuFactors::factorize(3, &ptr, &entries, &weight, 1e-9).is_none());
    }

    #[test]
    fn threshold_pivoting_survives_near_degenerate_diagonal() {
        // The classic partial-pivoting stress case: a tiny diagonal entry
        // whose naive use as pivot produces multipliers ~1e12 and destroys
        // every digit. Threshold pivoting must swap away from it.
        let eps = 1e-12;
        let cols = vec![vec![eps, 1.0], vec![1.0, 1.0]];
        let (ptr, entries, weight) = from_dense(&cols);
        let mut lu = LuFactors::factorize(2, &ptr, &entries, &weight, 1e-9).expect("non-singular");
        let h = heading(&lu, 2);
        let b = vec![1.0, 2.0];
        let mut w = b.clone();
        lu.ftran(&mut w);
        let back = mul(&cols, &h, &w);
        for (a, e) in back.iter().zip(&b) {
            assert!((a - e).abs() < 1e-9, "B·w = {a}, want {e}");
        }
        // Exact solution: x ≈ 1, y ≈ 1 (up to O(eps)); an unpivoted
        // elimination would report garbage here.
        let x = w[lu.pivot_row[0]];
        let y = w[lu.pivot_row[1]];
        assert!(
            (x - 1.0).abs() < 1e-6 && (y - 1.0).abs() < 1e-6,
            "({x}, {y})"
        );
    }

    #[test]
    fn identity_with_signs_round_trips() {
        let mut lu = LuFactors::identity(4, &[1, 3]);
        let mut v = vec![2.0, 3.0, -1.0, 5.0];
        lu.ftran(&mut v);
        assert_eq!(v, vec![2.0, -3.0, -1.0, -5.0]);
        let mut y = vec![1.0, 1.0, 1.0, 1.0];
        lu.btran(&mut y);
        assert_eq!(y, vec![1.0, -1.0, 1.0, -1.0]);
    }

    /// Replaces the basis column paired with `row` by `col`, via the same
    /// FTRAN-then-update sequence the simplex engine performs.
    fn ft_replace(lu: &mut LuFactors, cols: &mut [Vec<f64>], h: &[usize], row: usize, col: &[f64]) {
        let mut w = col.to_vec();
        lu.ftran(&mut w);
        assert!(
            lu.replace_column(row, 1e-9),
            "replacement basis stays factorizable"
        );
        cols[h[row]] = col.to_vec();
    }

    #[test]
    fn forrest_tomlin_updates_track_the_exact_basis() {
        for seed in [2u64, 19, 101] {
            let m = 14;
            let mut cols = random_cols(m, seed);
            let (ptr, entries, weight) = from_dense(&cols);
            let mut lu =
                LuFactors::factorize(m, &ptr, &entries, &weight, 1e-9).expect("non-singular");
            let h = heading(&lu, m);
            let mut next = rng(seed ^ 0xC0FFEE);
            // A long run of column replacements with no refactorization:
            // every few updates, check FTRAN and BTRAN against the dense
            // basis the replacements built.
            for step in 0..3 * m {
                let row = (step * 7 + 3) % m;
                let col: Vec<f64> = (0..m)
                    .map(|r| {
                        let band = r.abs_diff((step * 5) % m) <= 3;
                        if band || r == row {
                            next() + if r == row { 2.5 } else { 0.0 }
                        } else {
                            0.0
                        }
                    })
                    .collect();
                ft_replace(&mut lu, &mut cols, &h, row, &col);

                let b: Vec<f64> = (0..m).map(|_| next()).collect();
                let mut w = b.clone();
                lu.ftran(&mut w);
                let back = mul(&cols, &h, &w);
                for (a, e) in back.iter().zip(&b) {
                    assert!(
                        (a - e).abs() < 1e-7,
                        "seed {seed} step {step}: B·w = {a}, want {e}"
                    );
                }
                let c: Vec<f64> = (0..m).map(|_| next()).collect();
                let mut y = c.clone();
                lu.btran(&mut y);
                for (r, &j) in h.iter().enumerate() {
                    let dot: f64 = cols[j].iter().zip(&y).map(|(a, b)| a * b).sum();
                    assert!(
                        (dot - c[r]).abs() < 1e-7,
                        "seed {seed} step {step} row {r}: y·B = {dot}, want {}",
                        c[r]
                    );
                }
            }
            assert_eq!(lu.update_len(), 3 * m);
            assert!(lu.update_fill() > 0, "updates should be measurable");
        }
    }

    #[test]
    fn singular_replacement_is_rejected() {
        let m = 6;
        let cols = random_cols(m, 11);
        let (ptr, entries, weight) = from_dense(&cols);
        let mut lu = LuFactors::factorize(m, &ptr, &entries, &weight, 1e-9).expect("non-singular");
        let h = heading(&lu, m);
        // Replacing the column paired with row 2 by the basis column paired
        // with row 4 duplicates a column: the new basis is exactly singular.
        let dup = cols[h[4]].clone();
        let mut w = dup.clone();
        lu.ftran(&mut w);
        assert!(
            !lu.replace_column(2, 1e-9),
            "duplicate column must be flagged singular"
        );
    }
}
