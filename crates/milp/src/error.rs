//! Error type shared by the LP and MILP solvers.

use std::error::Error;
use std::fmt;

/// Reasons a solve can fail to produce a usable solution.
///
/// Callers that use LP optima as *sound bounds* (as the ITNE certifier does)
/// must treat every variant as "no bound available" and fall back to a sound
/// alternative; a partially-converged LP value is not a valid bound.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The simplex iteration limit was exceeded before reaching optimality.
    IterationLimit,
    /// A deadline expired before any feasible solution was found.
    Timeout,
    /// The model is malformed (e.g. a NaN coefficient, or `lo > hi`).
    InvalidModel(String),
    /// The solver detected numerical breakdown it could not recover from.
    Numerical(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::Timeout => write!(f, "deadline expired with no feasible solution"),
            SolveError::InvalidModel(why) => write!(f, "invalid model: {why}"),
            SolveError::Numerical(why) => write!(f, "numerical breakdown: {why}"),
        }
    }
}

impl Error for SolveError {}
