//! Solver configuration: tolerances, limits, stop signals.

use std::fmt;
use std::sync::Arc;

/// Absolute numerical tolerances used throughout the solver.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Tolerances {
    /// A point is feasible if every row residual and bound violation is below
    /// this value.
    pub feasibility: f64,
    /// A reduced cost smaller in magnitude than this is treated as zero
    /// (optimality test).
    pub optimality: f64,
    /// Tableau entries smaller in magnitude than this are never used as
    /// pivots.
    pub pivot: f64,
    /// An integer variable is integral if within this distance of an integer.
    pub integrality: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            feasibility: 1e-7,
            optimality: 1e-7,
            pivot: 1e-9,
            integrality: 1e-6,
        }
    }
}

/// Which simplex implementation runs LP solves (warm and cold).
///
/// All engines implement the same two-phase bounded-variable method with
/// identical tolerances and termination semantics; they differ only in how
/// the basis inverse is represented, so swapping engines never changes
/// which problems are solvable — only how fast pivots are.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Sparse revised simplex over a real sparse LU factorization of the
    /// basis (static Markowitz ordering, threshold partial pivoting).
    /// Between refactorizations, pivots fold in as Forrest–Tomlin column
    /// replacements while that is cheap (short `U` tail — the factors stay
    /// exact and nothing grows) and as product-form etas on top of the
    /// factors otherwise; refactorization is triggered by *measured* fill
    /// growth, not a fixed pivot cadence. A fresh solve starts from the
    /// trivial `diag(±1)` basis, whose solves are free, and only builds
    /// real factors once the update file outgrows the fill trigger — so
    /// short solves never pay factorization costs at all. Adds range-row
    /// folding: an adjacent `≤`/`≥` pair over identical terms becomes one
    /// row with a box-bounded slack, so the `[A | I]` interval constraints
    /// of the ITNE encoding stop inflating the working basis. The default.
    #[default]
    Lu,
    /// Sparse revised simplex whose basis inverse is a pure
    /// product-form-of-inverse eta file, periodically rebuilt by
    /// Gauss-Jordan refactorization (the PR 5 engine). Kept as a
    /// differential-testing reference; degrades on long pivot runs because
    /// every refactorization replays the whole basis through the file.
    Eta,
    /// Dense tableau (the original engine): every pivot rewrites the full
    /// `B⁻¹·[A | I | I]` tableau. Kept as a differential-testing reference
    /// and numerical second opinion.
    Dense,
}

/// Entering-column pricing rule of the sparse engines ([`Engine::Lu`],
/// [`Engine::Eta`]). The dense engine always uses its Dantzig scan.
///
/// Pricing only ranks *which* eligible column enters next; eligibility and
/// termination are tolerance checks on reduced costs that both rules share,
/// so the rule changes the pivot path, never the optimum.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Pricing {
    /// Devex pricing (Forrest–Goldfarb reference-framework weights,
    /// maintained over the candidate list): ranks columns by
    /// `d_j² / w_j`, approximating steepest edge at eta-update prices.
    /// Takes slightly fewer pivots than the Dantzig scan, but on the
    /// certifier's workload — tens of thousands of small short-run LPs —
    /// the per-pivot weight maintenance costs more than the saved pivots
    /// return (measured ~15% slower end-to-end), so it is the fallback,
    /// not the default.
    Devex,
    /// Candidate-list Dantzig scan: ranks columns by `|d_j|` alone. The
    /// default — cheapest per pivot, and the measured end-to-end winner on
    /// short-run-dominated workloads.
    #[default]
    Dantzig,
}

/// A caller-injected monotonic nanosecond clock for engine telemetry
/// (`Stats::{refactor_time_ns, ftran_btran_time_ns}`).
///
/// The solver itself never reads the wall clock (determinism lint rule
/// `wall-clock`); benches that want timing breakdowns inject one built at an
/// audited clock site (`itne_core::deadline::telemetry_clock`). `None` (the
/// default) keeps the kernel clock-free and the timing counters at zero —
/// the clock is observe-only and never steers a pivot.
#[derive(Clone)]
pub struct TelemetryClock(Arc<dyn Fn() -> u64 + Send + Sync>);

impl TelemetryClock {
    /// Wraps a monotonic nanosecond counter. The closure must be cheap — it
    /// runs twice per FTRAN/BTRAN pass — and monotone non-decreasing.
    pub fn new(f: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        TelemetryClock(Arc::new(f))
    }

    /// Reads the clock.
    pub fn now_ns(&self) -> u64 {
        (self.0)()
    }
}

impl fmt::Debug for TelemetryClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TelemetryClock(..)")
    }
}

/// A caller-supplied cooperative interrupt.
///
/// Branch-and-bound polls it between nodes and gives up with
/// [`crate::Status::TimedOut`] (or [`crate::SolveError::Timeout`] when no
/// incumbent exists) once it fires. The solver itself never reads the wall
/// clock — determinism lint rule `wall-clock` bans `Instant::now` in this
/// crate — so time-based cancellation is built by the *caller* from its own
/// audited clock site (see `itne_core::deadline::stop_at`). Keeping the
/// clock out of the kernel means a solve is a pure function of its inputs
/// and the stop signal, which is what the bit-exactness invariants rest on.
#[derive(Clone)]
pub struct StopWhen(Arc<dyn Fn() -> bool + Send + Sync>);

impl StopWhen {
    /// Wraps an arbitrary predicate. The predicate must be cheap — it runs
    /// once per branch-and-bound node — and should be monotone (once true,
    /// stay true), matching deadline semantics.
    pub fn new(f: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        StopWhen(Arc::new(f))
    }

    /// A signal that is already firing: every poll requests cancellation.
    /// This is the deterministic stand-in for "an expired deadline" in tests.
    pub fn immediately() -> Self {
        StopWhen::new(|| true)
    }

    /// Combines two signals: stop as soon as either fires (the successor of
    /// the old "earlier of two deadlines" merge).
    #[must_use]
    pub fn or(self, other: StopWhen) -> Self {
        StopWhen::new(move || self.should_stop() || other.should_stop())
    }

    /// Polls the signal.
    pub fn should_stop(&self) -> bool {
        (self.0)()
    }
}

impl fmt::Debug for StopWhen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StopWhen(..)")
    }
}

/// Limits and behaviour switches for [`crate::Model::solve_with`].
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Numerical tolerances.
    pub tolerances: Tolerances,
    /// Maximum simplex pivots per LP solve. `0` means "scale with model size"
    /// (`200 · (rows + cols) + 2000`).
    pub max_pivots: u64,
    /// Maximum branch-and-bound nodes before giving up with
    /// [`crate::Status::NodeLimit`].
    pub max_nodes: u64,
    /// Cooperative stop signal (typically a wall-clock deadline built by the
    /// caller — see [`StopWhen`]). When it fires, branch-and-bound returns
    /// the incumbent with [`crate::Status::TimedOut`] (or
    /// [`crate::SolveError::Timeout`] if none exists).
    pub stop: Option<StopWhen>,
    /// Allow [`crate::BatchSolver`] (and [`crate::Model::solve_with_basis`])
    /// to reuse the basis of an earlier solve instead of running phase 1
    /// from scratch. Disabling forces every solve cold — useful to prove
    /// warm-started results are a pure optimization (see the golden
    /// regression tests) and to bisect suspected solver issues.
    pub warm_start: bool,
    /// Problem-size ceiling (rows × worst-case columns, `m·(n + 2m)`) above
    /// which [`crate::BatchSolver`] re-solves cold even when `warm_start` is
    /// on. This gate existed for the dense engine, where a warm
    /// reoptimization always starts from the previous solve's *fully dense*
    /// tableau end state and loses wall-clock on very large sub-problems
    /// despite winning the pivot count. The sparse revised simplex engines
    /// ([`Engine::Lu`], [`Engine::Eta`]) have no dense end state — their
    /// pivots cost the same warm or cold — so the default is now effectively
    /// unlimited (`u64::MAX`). The knob remains as an escape hatch: set a
    /// finite limit to reproduce the old gating (e.g. when forcing
    /// [`Engine::Dense`] for differential runs).
    pub warm_start_cell_limit: u64,
    /// Which simplex engine runs LP solves. See [`Engine`].
    pub engine: Engine,
    /// Entering-column pricing rule of the sparse engines. See [`Pricing`].
    pub pricing: Pricing,
    /// Emit a [`crate::DualCertificate`] on every optimal pure-LP
    /// termination (one BTRAN pass plus a sparse mat-vec per solve — cheap,
    /// so the default is on). Branch-and-bound turns this off for its node
    /// relaxations, whose duals nobody consumes.
    pub emit_certificates: bool,
    /// Sparse-engine refactorization cadence: refactorize the basis after
    /// this many pivots. `0` means "scale with the engine and model size":
    /// the eta engine rebuilds after `(m/2).clamp(64, 256)` pivots (its
    /// refactorization replays the whole basis through the file, so it must
    /// stay frequent to bound FTRAN length); the LU engine after
    /// `(8m).max(2000)` pivots, because its cadence is really governed by
    /// *measured fill growth* — the updates are folded back into fresh
    /// factors whenever their accumulated fill outgrows twice the factors'
    /// own, independent of this knob.
    pub refactor_interval: u64,
    /// Optional monotonic clock for timing telemetry
    /// (`Stats::{refactor_time_ns, ftran_btran_time_ns}`). See
    /// [`TelemetryClock`]; `None` (the default) keeps the counters at zero.
    pub telemetry: Option<TelemetryClock>,
    /// Worker threads for branch-and-bound subtree exploration (`0` or `1` =
    /// the serial depth-first search). With more, the tree is explored in
    /// deterministic *waves*: the frontier's node relaxations are claimed
    /// dynamically by the workers (so a cheap subtree never idles a worker
    /// waiting on an expensive sibling), results merge back **in node index
    /// order**, and all incumbent/pruning/branching decisions happen in that
    /// sequential merge — so the search tree, the returned solution, and
    /// every [`crate::Stats`] counter are bit-identical at any thread count.
    /// Sparse engines only; [`Engine::Dense`] always runs serial. The
    /// default stays serial because the certifier already parallelizes
    /// across neurons — turning both levels on oversubscribes the machine.
    pub steal: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerances: Tolerances::default(),
            max_pivots: 0,
            max_nodes: 20_000_000,
            stop: None,
            warm_start: true,
            warm_start_cell_limit: u64::MAX,
            engine: Engine::default(),
            pricing: Pricing::default(),
            emit_certificates: true,
            refactor_interval: 0,
            telemetry: None,
            steal: 1,
        }
    }
}

impl SolveOptions {
    pub(crate) fn pivot_cap(&self, rows: usize, cols: usize) -> u64 {
        if self.max_pivots > 0 {
            self.max_pivots
        } else {
            200 * (rows as u64 + cols as u64) + 2000
        }
    }
}
