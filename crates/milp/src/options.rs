//! Solver configuration: tolerances, limits, deadlines.

use std::time::Instant;

/// Absolute numerical tolerances used throughout the solver.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Tolerances {
    /// A point is feasible if every row residual and bound violation is below
    /// this value.
    pub feasibility: f64,
    /// A reduced cost smaller in magnitude than this is treated as zero
    /// (optimality test).
    pub optimality: f64,
    /// Tableau entries smaller in magnitude than this are never used as
    /// pivots.
    pub pivot: f64,
    /// An integer variable is integral if within this distance of an integer.
    pub integrality: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            feasibility: 1e-7,
            optimality: 1e-7,
            pivot: 1e-9,
            integrality: 1e-6,
        }
    }
}

/// Limits and behaviour switches for [`crate::Model::solve_with`].
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Numerical tolerances.
    pub tolerances: Tolerances,
    /// Maximum simplex pivots per LP solve. `0` means "scale with model size"
    /// (`200 · (rows + cols) + 2000`).
    pub max_pivots: u64,
    /// Maximum branch-and-bound nodes before giving up with
    /// [`crate::Status::NodeLimit`].
    pub max_nodes: u64,
    /// Wall-clock deadline. When it passes, branch-and-bound returns the
    /// incumbent with [`crate::Status::TimedOut`] (or
    /// [`crate::SolveError::Timeout`] if none exists).
    pub deadline: Option<Instant>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerances: Tolerances::default(),
            max_pivots: 0,
            max_nodes: 20_000_000,
            deadline: None,
        }
    }
}

impl SolveOptions {
    /// Options with a wall-clock budget measured from now.
    pub fn with_budget(budget: std::time::Duration) -> Self {
        SolveOptions {
            deadline: Some(Instant::now() + budget),
            ..Self::default()
        }
    }

    pub(crate) fn pivot_cap(&self, rows: usize, cols: usize) -> u64 {
        if self.max_pivots > 0 {
            self.max_pivots
        } else {
            200 * (rows as u64 + cols as u64) + 2000
        }
    }
}
