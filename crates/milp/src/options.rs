//! Solver configuration: tolerances, limits, deadlines.

use std::time::Instant;

/// Absolute numerical tolerances used throughout the solver.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Tolerances {
    /// A point is feasible if every row residual and bound violation is below
    /// this value.
    pub feasibility: f64,
    /// A reduced cost smaller in magnitude than this is treated as zero
    /// (optimality test).
    pub optimality: f64,
    /// Tableau entries smaller in magnitude than this are never used as
    /// pivots.
    pub pivot: f64,
    /// An integer variable is integral if within this distance of an integer.
    pub integrality: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            feasibility: 1e-7,
            optimality: 1e-7,
            pivot: 1e-9,
            integrality: 1e-6,
        }
    }
}

/// Limits and behaviour switches for [`crate::Model::solve_with`].
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Numerical tolerances.
    pub tolerances: Tolerances,
    /// Maximum simplex pivots per LP solve. `0` means "scale with model size"
    /// (`200 · (rows + cols) + 2000`).
    pub max_pivots: u64,
    /// Maximum branch-and-bound nodes before giving up with
    /// [`crate::Status::NodeLimit`].
    pub max_nodes: u64,
    /// Wall-clock deadline. When it passes, branch-and-bound returns the
    /// incumbent with [`crate::Status::TimedOut`] (or
    /// [`crate::SolveError::Timeout`] if none exists).
    pub deadline: Option<Instant>,
    /// Allow [`crate::BatchSolver`] (and [`crate::Model::solve_with_basis`])
    /// to reuse the basis of an earlier solve instead of running phase 1
    /// from scratch. Disabling forces every solve cold — useful to prove
    /// warm-started results are a pure optimization (see the golden
    /// regression tests) and to bisect suspected solver issues.
    pub warm_start: bool,
    /// Tableau-size ceiling (rows × worst-case columns, `m·(n + 2m)`) above
    /// which [`crate::BatchSolver`] re-solves cold even when `warm_start` is
    /// on. A cold solve's early pivots touch only the rows where the
    /// entering column is non-zero, which on a fresh sparse
    /// `[A | I_slack | I_art]` tableau is few; a warm reoptimization always
    /// starts from the previous solve's *fully dense* end state, so on very
    /// large sub-problems each warm pivot costs several cold ones and warm
    /// starting loses wall-clock despite winning the pivot count. `u64::MAX`
    /// removes the limit. The default (2²⁰ cells ≈ an 8 MB tableau) keeps
    /// warm starts on every fully-connected Table I sub-problem and gates
    /// them off on the large conv-net windows where the inversion was
    /// measured.
    pub warm_start_cell_limit: u64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerances: Tolerances::default(),
            max_pivots: 0,
            max_nodes: 20_000_000,
            deadline: None,
            warm_start: true,
            warm_start_cell_limit: 1 << 20,
        }
    }
}

impl SolveOptions {
    /// Options with a wall-clock budget measured from now.
    pub fn with_budget(budget: std::time::Duration) -> Self {
        SolveOptions {
            deadline: Some(Instant::now() + budget),
            ..Self::default()
        }
    }

    pub(crate) fn pivot_cap(&self, rows: usize, cols: usize) -> u64 {
        if self.max_pivots > 0 {
            self.max_pivots
        } else {
            200 * (rows as u64 + cols as u64) + 2000
        }
    }
}
