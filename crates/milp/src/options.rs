//! Solver configuration: tolerances, limits, deadlines.

use std::time::Instant;

/// Absolute numerical tolerances used throughout the solver.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Tolerances {
    /// A point is feasible if every row residual and bound violation is below
    /// this value.
    pub feasibility: f64,
    /// A reduced cost smaller in magnitude than this is treated as zero
    /// (optimality test).
    pub optimality: f64,
    /// Tableau entries smaller in magnitude than this are never used as
    /// pivots.
    pub pivot: f64,
    /// An integer variable is integral if within this distance of an integer.
    pub integrality: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            feasibility: 1e-7,
            optimality: 1e-7,
            pivot: 1e-9,
            integrality: 1e-6,
        }
    }
}

/// Which simplex implementation runs LP solves (warm and cold).
///
/// Both engines implement the same two-phase bounded-variable method with
/// identical tolerances and termination semantics; they differ only in how
/// the basis inverse is represented, so swapping engines never changes
/// which problems are solvable — only how fast pivots are.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// Sparse revised simplex: CSC constraint storage, FTRAN/BTRAN through a
    /// product-form-of-inverse eta file, candidate-list partial pricing, and
    /// periodic refactorization. The default — per-pivot cost scales with
    /// matrix sparsity, so warm reoptimization pays off at every size.
    #[default]
    Sparse,
    /// Dense tableau (the original engine): every pivot rewrites the full
    /// `B⁻¹·[A | I | I]` tableau. Kept as a differential-testing reference
    /// and numerical second opinion.
    Dense,
}

/// Limits and behaviour switches for [`crate::Model::solve_with`].
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Numerical tolerances.
    pub tolerances: Tolerances,
    /// Maximum simplex pivots per LP solve. `0` means "scale with model size"
    /// (`200 · (rows + cols) + 2000`).
    pub max_pivots: u64,
    /// Maximum branch-and-bound nodes before giving up with
    /// [`crate::Status::NodeLimit`].
    pub max_nodes: u64,
    /// Wall-clock deadline. When it passes, branch-and-bound returns the
    /// incumbent with [`crate::Status::TimedOut`] (or
    /// [`crate::SolveError::Timeout`] if none exists).
    pub deadline: Option<Instant>,
    /// Allow [`crate::BatchSolver`] (and [`crate::Model::solve_with_basis`])
    /// to reuse the basis of an earlier solve instead of running phase 1
    /// from scratch. Disabling forces every solve cold — useful to prove
    /// warm-started results are a pure optimization (see the golden
    /// regression tests) and to bisect suspected solver issues.
    pub warm_start: bool,
    /// Problem-size ceiling (rows × worst-case columns, `m·(n + 2m)`) above
    /// which [`crate::BatchSolver`] re-solves cold even when `warm_start` is
    /// on. This gate existed for the dense engine, where a warm
    /// reoptimization always starts from the previous solve's *fully dense*
    /// tableau end state and loses wall-clock on very large sub-problems
    /// despite winning the pivot count. The sparse revised simplex
    /// ([`Engine::Sparse`], the default) has no dense end state — its pivots
    /// cost the same warm or cold — so the default is now effectively
    /// unlimited (`u64::MAX`). The knob remains as an escape hatch: set a
    /// finite limit to reproduce the old gating (e.g. when forcing
    /// [`Engine::Dense`] for differential runs).
    pub warm_start_cell_limit: u64,
    /// Which simplex engine runs LP solves. See [`Engine`].
    pub engine: Engine,
    /// Sparse-engine refactorization cadence: rebuild the eta file after this
    /// many pivots. `0` means "scale with model size" (`(m/2)` clamped to
    /// `[64, 256]` — short cold solves finish before the budget and pay no
    /// refactorization overhead; long resident sweeps refactorize often
    /// enough to keep FTRAN/BTRAN short). The eta file is also refactorized
    /// early whenever its fill-in outgrows a fixed multiple of the constraint
    /// matrix, independent of this knob.
    pub refactor_interval: u64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerances: Tolerances::default(),
            max_pivots: 0,
            max_nodes: 20_000_000,
            deadline: None,
            warm_start: true,
            warm_start_cell_limit: u64::MAX,
            engine: Engine::default(),
            refactor_interval: 0,
        }
    }
}

impl SolveOptions {
    /// Options with a wall-clock budget measured from now.
    pub fn with_budget(budget: std::time::Duration) -> Self {
        SolveOptions {
            deadline: Some(Instant::now() + budget),
            ..Self::default()
        }
    }

    pub(crate) fn pivot_cap(&self, rows: usize, cols: usize) -> u64 {
        if self.max_pivots > 0 {
            self.max_pivots
        } else {
            200 * (rows as u64 + cols as u64) + 2000
        }
    }
}
