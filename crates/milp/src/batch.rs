//! Warm-started objective sweeps over one constraint skeleton.
//!
//! The certifier's dominant query pattern is "one model, many objectives":
//! each `LpRelaxY`/`LpRelaxX` sub-problem minimizes *and* maximizes several
//! expressions over the identical constraint set. A cold simplex solve pays
//! phase 1 (driving artificial variables out of every equality row) each
//! time, even though feasibility does not depend on the objective at all.
//! [`BatchSolver`] amortizes that: the first solve runs cold and snapshots
//! its final [`Basis`]; each subsequent solve restores the snapshot — already
//! primal feasible — and reoptimizes phase 2 only. Whenever a restore cannot
//! complete (singular refactorization, stale snapshot, numerical trouble),
//! the solve transparently falls back to a cold solve, so results never
//! depend on whether a warm start succeeded.
//!
//! Mixed-integer models are accepted for uniformity but always solved cold
//! through branch-and-bound (warm-starting a B&B tree is out of scope); the
//! continuous/integer dispatch matches [`Model::solve_with`] exactly.

use crate::error::SolveError;
use crate::model::{Model, Sense};
use crate::options::SolveOptions;
use crate::simplex::{self, Basis, Resident, ResolveOutcome, WarmResidentOutcome};
use crate::{branch_bound, LinExpr, Solution};

/// Work counters for one [`BatchSolver`]'s lifetime.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Objectives solved (in any way).
    pub solves: u64,
    /// Solves completed from a restored basis (phase 1 skipped).
    pub warm_hits: u64,
    /// Warm attempts that were rejected and fell back to a cold solve.
    pub warm_misses: u64,
    /// Solves that ran cold because no snapshot was available (the first
    /// solve of every sweep, MILP solves, and everything after a failure).
    pub cold_solves: u64,
    /// Total simplex pivots across all solves, *including* the pivots burned
    /// by warm attempts that were later rejected (that work is real even
    /// though its result was discarded).
    pub pivots: u64,
    /// Estimated pivots avoided by warm-starting: for each warm hit, the
    /// pivot count of the most recent *cold* solve on this skeleton minus
    /// the warm solve's own pivots, saturating at zero. An estimate — the
    /// true counterfactual would require solving cold again.
    pub pivots_saved: u64,
    /// Warm hits whose basis came from a caller-provided cross-sweep slot
    /// ([`BatchSolver::solve_slot`]) rather than this sweep's own previous
    /// solve. Every seed hit is also counted in [`BatchStats::warm_hits`].
    pub seed_hits: u64,
}

impl BatchStats {
    /// Accumulates another counter set.
    pub fn absorb(&mut self, other: BatchStats) {
        self.solves += other.solves;
        self.warm_hits += other.warm_hits;
        self.warm_misses += other.warm_misses;
        self.cold_solves += other.cold_solves;
        self.pivots += other.pivots;
        self.pivots_saved += other.pivots_saved;
        self.seed_hits += other.seed_hits;
    }
}

/// Sweeps a list of objectives over one [`Model`] skeleton, warm-starting
/// each solve from the previous one's optimal basis.
///
/// ```
/// use itne_milp::{BatchSolver, Cmp, Model, Sense, SolveOptions};
///
/// let mut m = Model::new();
/// let x = m.add_var(0.0, 10.0);
/// let y = m.add_var(0.0, 10.0);
/// m.add_constraint(x + y, Cmp::Le, 6.0);
/// m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
///
/// let opts = SolveOptions::default();
/// let mut batch = BatchSolver::new(&mut m);
/// let hi = batch.solve(Sense::Maximize, 3.0 * x + 2.0 * y, &opts).unwrap();
/// let lo = batch.solve(Sense::Minimize, 3.0 * x + 2.0 * y, &opts).unwrap();
/// assert!((hi.objective - 15.0).abs() < 1e-6);
/// assert!((lo.objective - 0.0).abs() < 1e-6);
/// assert_eq!(batch.stats().warm_hits, 1); // the second solve reused the basis
/// ```
pub struct BatchSolver<'m> {
    model: &'m mut Model,
    /// The previous solve's live factorized tableau. Reoptimizing it in
    /// place is strictly cheaper than restoring a [`crate::Basis`] snapshot
    /// (no `B⁻¹` refactorization per solve); the snapshot API remains the
    /// mechanism for warm starts *across* model instances
    /// ([`Model::solve_with_basis`]).
    resident: Option<Resident>,
    /// Pivot count of the most recent cold solve, the baseline for
    /// [`BatchStats::pivots_saved`].
    last_cold_pivots: u64,
    stats: BatchStats,
}

impl<'m> BatchSolver<'m> {
    /// Wraps a model skeleton. The model's constraints and bounds must stay
    /// fixed for the sweep's duration (the borrow enforces exclusivity); the
    /// objective is overwritten by every [`BatchSolver::solve`].
    pub fn new(model: &'m mut Model) -> Self {
        BatchSolver {
            model,
            resident: None,
            last_cold_pivots: 0,
            stats: BatchStats::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Flattens the current resident factorization to a restorable [`Basis`]
    /// snapshot for cross-sweep warm starts ([`BatchSolver::solve_slot`]).
    /// `None` when no resident is held or the final basis still contains an
    /// artificial column (redundant equality rows).
    pub fn snapshot(&self) -> Option<Basis> {
        self.resident.as_ref().and_then(Resident::snapshot)
    }

    /// Read-only view of the model being swept — the exact problem data the
    /// most recent [`BatchSolver::solve`]'s certificate refers to (including
    /// the objective that solve installed).
    pub fn model(&self) -> &Model {
        self.model
    }

    /// Sets `sense expr` as the objective and solves, warm-starting from the
    /// previous solve's basis when one is available (and
    /// [`SolveOptions::warm_start`] is on).
    ///
    /// # Errors
    ///
    /// See [`SolveError`]; identical failure modes to [`Model::solve_with`].
    pub fn solve(
        &mut self,
        sense: Sense,
        expr: impl Into<LinExpr>,
        opts: &SolveOptions,
    ) -> Result<Solution, SolveError> {
        self.model.set_objective(sense, expr);
        self.stats.solves += 1;
        self.model.validate()?;

        if self.model.num_integers() > 0 {
            // Mixed models: no warm start, same dispatch as `solve_with`.
            self.stats.cold_solves += 1;
            let sol = branch_bound::solve_milp(self.model, opts)?;
            self.stats.pivots += sol.stats.pivots;
            return Ok(sol);
        }

        // Problem-size escape hatch (see `SolveOptions::warm_start_cell_limit`
        // — effectively unlimited by default now that the sparse revised
        // simplex makes warm pivots cost the same as cold ones; a finite
        // limit reproduces the old dense-engine gating). The working set is
        // `[A | I_slack | I_art]`, i.e. up to n + 2m columns — one slack per
        // row plus at worst one artificial per row.
        let m = self.model.num_constraints() as u64;
        let cells = m.saturating_mul(2 * m + self.model.num_vars() as u64);
        let warm_allowed = opts.warm_start && cells <= opts.warm_start_cell_limit;

        // A resident factorization belongs to the engine that ran the cold
        // solve; if the caller switches `opts.engine` mid-sweep (e.g. for a
        // differential run), answering from the old engine's resident would
        // silently compare an engine against itself. Drop it and solve cold
        // with the engine actually requested.
        if self
            .resident
            .as_ref()
            .is_some_and(|r| r.engine() != opts.engine)
        {
            self.resident = None;
        }

        if warm_allowed {
            if let Some(resident) = &mut self.resident {
                match resident.resolve(self.model, opts) {
                    Ok(ResolveOutcome::Solved(sol)) => {
                        self.stats.warm_hits += 1;
                        self.stats.pivots += sol.stats.pivots;
                        self.stats.pivots_saved +=
                            self.last_cold_pivots.saturating_sub(sol.stats.pivots);
                        return Ok(sol);
                    }
                    Ok(ResolveOutcome::Rejected { wasted_pivots }) => {
                        // Fall through to a cold solve.
                        self.stats.warm_misses += 1;
                        self.stats.pivots += wasted_pivots;
                        self.resident = None;
                    }
                    Err(e) => {
                        self.resident = None;
                        return Err(e);
                    }
                }
            }
        }

        self.stats.cold_solves += 1;
        match simplex::solve_lp_resident(self.model, opts) {
            Ok((sol, resident)) => {
                self.stats.pivots += sol.stats.pivots;
                self.last_cold_pivots = sol.stats.pivots;
                self.resident = if warm_allowed { resident } else { None };
                Ok(sol)
            }
            Err(e) => {
                self.resident = None;
                Err(e)
            }
        }
    }

    /// [`BatchSolver::solve`] with a persistent per-objective basis `slot`
    /// spanning sweeps: the solve starts from the basis the *previous sweep*
    /// stored for this same objective (a cross-sweep warm start, counted in
    /// [`BatchStats::seed_hits`]) and writes its own final basis back for
    /// the next one.
    ///
    /// With a live resident the restore reuses the compiled skeleton and
    /// working arrays and pays only a basis refactorization
    /// ([`Resident::resolve_from`]); the sweep's first solve rebuilds the
    /// engine from the snapshot. Both restores fall back transparently —
    /// first to the within-sweep chain, then to a cold solve — so the slot
    /// is advisory and never affects results, only the work counters.
    ///
    /// # Errors
    ///
    /// See [`SolveError`]; identical failure modes to [`BatchSolver::solve`].
    pub fn solve_slot(
        &mut self,
        sense: Sense,
        expr: impl Into<LinExpr>,
        opts: &SolveOptions,
        slot: &mut Option<Basis>,
    ) -> Result<Solution, SolveError> {
        self.model.set_objective(sense, expr);
        self.stats.solves += 1;
        self.model.validate()?;

        if self.model.num_integers() > 0 {
            // Mixed models: no warm start, same dispatch as `solve`.
            self.stats.cold_solves += 1;
            let sol = branch_bound::solve_milp(self.model, opts)?;
            self.stats.pivots += sol.stats.pivots;
            return Ok(sol);
        }

        let m = self.model.num_constraints() as u64;
        let cells = m.saturating_mul(2 * m + self.model.num_vars() as u64);
        let warm_allowed = opts.warm_start && cells <= opts.warm_start_cell_limit;

        if self
            .resident
            .as_ref()
            .is_some_and(|r| r.engine() != opts.engine)
        {
            self.resident = None;
        }

        if warm_allowed {
            if let Some(warm) = slot.as_ref() {
                // Slot restore against the live engine: skeleton and working
                // arrays are reused, only the basis is refactorized.
                if let Some(resident) = &mut self.resident {
                    match resident.resolve_from(self.model, opts, warm) {
                        Ok(ResolveOutcome::Solved(sol)) => {
                            self.stats.warm_hits += 1;
                            self.stats.seed_hits += 1;
                            self.stats.pivots += sol.stats.pivots;
                            self.stats.pivots_saved +=
                                self.last_cold_pivots.saturating_sub(sol.stats.pivots);
                            self.store_slot(slot);
                            return Ok(sol);
                        }
                        Ok(ResolveOutcome::Rejected { wasted_pivots }) => {
                            // The failed restore may have left the engine
                            // inconsistent; a full rebuild from the same
                            // snapshot would reject for the same reason, so
                            // go straight to a cold solve.
                            self.stats.warm_misses += 1;
                            self.stats.pivots += wasted_pivots;
                            self.resident = None;
                        }
                        Err(e) => {
                            self.resident = None;
                            return Err(e);
                        }
                    }
                } else {
                    // First solve of the sweep: rebuild the engine once from
                    // the stored snapshot; later slot solves rebase it.
                    match simplex::solve_lp_warm_resident(self.model, opts, warm)? {
                        WarmResidentOutcome::Solved(sol, resident) => {
                            self.stats.warm_hits += 1;
                            self.stats.seed_hits += 1;
                            self.stats.pivots += sol.stats.pivots;
                            self.resident = resident;
                            self.store_slot(slot);
                            return Ok(sol);
                        }
                        WarmResidentOutcome::Rejected => {
                            self.stats.warm_misses += 1;
                        }
                    }
                }
            } else if let Some(resident) = &mut self.resident {
                // Empty slot: chain from the previous solve as `solve` does.
                match resident.resolve(self.model, opts) {
                    Ok(ResolveOutcome::Solved(sol)) => {
                        self.stats.warm_hits += 1;
                        self.stats.pivots += sol.stats.pivots;
                        self.stats.pivots_saved +=
                            self.last_cold_pivots.saturating_sub(sol.stats.pivots);
                        self.store_slot(slot);
                        return Ok(sol);
                    }
                    Ok(ResolveOutcome::Rejected { wasted_pivots }) => {
                        self.stats.warm_misses += 1;
                        self.stats.pivots += wasted_pivots;
                        self.resident = None;
                    }
                    Err(e) => {
                        self.resident = None;
                        return Err(e);
                    }
                }
            }
        }

        self.stats.cold_solves += 1;
        match simplex::solve_lp_resident(self.model, opts) {
            Ok((sol, resident)) => {
                self.stats.pivots += sol.stats.pivots;
                self.last_cold_pivots = sol.stats.pivots;
                self.resident = if warm_allowed { resident } else { None };
                self.store_slot(slot);
                Ok(sol)
            }
            Err(e) => {
                self.resident = None;
                Err(e)
            }
        }
    }

    /// Writes the current resident's final basis into `slot` for the next
    /// sweep. A basis that cannot be snapshotted (artificial still basic)
    /// leaves the previous slot content in place — it is still the best
    /// known start for this objective.
    fn store_slot(&self, slot: &mut Option<Basis>) {
        if let Some(b) = self.snapshot() {
            *slot = Some(b);
        }
    }

    /// Solves every `(sense, expr)` objective in order, returning one result
    /// per objective. Failures are per-objective — a failed solve does not
    /// abort the rest of the sweep (matching the certifier's per-query
    /// fallback semantics).
    pub fn sweep(
        &mut self,
        objectives: impl IntoIterator<Item = (Sense, LinExpr)>,
        opts: &SolveOptions,
    ) -> Vec<Result<Solution, SolveError>> {
        objectives
            .into_iter()
            .map(|(sense, expr)| self.solve(sense, expr, opts))
            .collect()
    }

    /// Minimizes then maximizes `expr`, returning `(min, max)` objective
    /// values — the warm-started counterpart of [`Model::solve_range`].
    ///
    /// # Errors
    ///
    /// See [`SolveError`].
    pub fn solve_range(
        &mut self,
        expr: impl Into<LinExpr>,
        opts: &SolveOptions,
    ) -> Result<(f64, f64), SolveError> {
        let e = expr.into();
        let lo = self.solve(Sense::Minimize, e.clone(), opts)?.objective;
        let hi = self.solve(Sense::Maximize, e, opts)?.objective;
        Ok((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cmp;

    fn skeleton() -> (Model, crate::VarId, crate::VarId) {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 6.0);
        m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
        m.add_constraint(x - y, Cmp::Ge, -5.0);
        (m, x, y)
    }

    #[test]
    fn sweep_matches_cold_solves() {
        let (mut m, x, y) = skeleton();
        let opts = SolveOptions::default();
        let objectives: Vec<(Sense, LinExpr)> = vec![
            (Sense::Maximize, 3.0 * x + 2.0 * y),
            (Sense::Minimize, 3.0 * x + 2.0 * y),
            (Sense::Maximize, 1.0 * y - 1.0 * x),
            (Sense::Minimize, 1.0 * y),
            (Sense::Maximize, 1.0 * x),
        ];

        let cold: Vec<f64> = objectives
            .iter()
            .map(|(s, e)| {
                let mut fresh = m.clone();
                fresh.set_objective(*s, e.clone());
                fresh.solve().expect("cold solves").objective
            })
            .collect();

        let mut batch = BatchSolver::new(&mut m);
        let warm: Vec<f64> = batch
            .sweep(objectives, &opts)
            .into_iter()
            .map(|r| r.expect("warm sweep solves").objective)
            .collect();

        for (w, c) in warm.iter().zip(&cold) {
            assert!((w - c).abs() < 1e-9, "warm {w} vs cold {c}");
        }
        let stats = batch.stats();
        assert_eq!(stats.solves, 5);
        assert_eq!(stats.cold_solves + stats.warm_hits + stats.warm_misses, 5);
        assert!(stats.warm_hits >= 4, "expected warm hits, got {stats:?}");
    }

    #[test]
    fn dense_engine_sweep_still_warm_starts() {
        // The dense resident tableau stays available behind
        // `SolveOptions::engine` for differential testing; its sweep path
        // must keep warm-starting and agreeing with cold solves.
        let (mut m, x, y) = skeleton();
        let opts = SolveOptions {
            engine: crate::Engine::Dense,
            ..Default::default()
        };
        let cold_hi = {
            let mut fresh = m.clone();
            fresh.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
            fresh.solve_with(&opts).expect("cold solves").objective
        };
        let mut batch = BatchSolver::new(&mut m);
        let hi = batch
            .solve(Sense::Maximize, 3.0 * x + 2.0 * y, &opts)
            .unwrap();
        let lo = batch
            .solve(Sense::Minimize, 3.0 * x + 2.0 * y, &opts)
            .unwrap();
        assert!((hi.objective - cold_hi).abs() < 1e-9);
        assert!(lo.objective.abs() < 1e-9);
        assert_eq!(batch.stats().warm_hits, 1);
    }

    #[test]
    fn engine_switch_mid_sweep_discards_resident() {
        // Flipping `opts.engine` between solves must not answer from the
        // previous engine's resident — the differential-testing use case
        // depends on the requested engine actually running.
        let (mut m, x, y) = skeleton();
        let sparse = SolveOptions::default();
        let dense = SolveOptions {
            engine: crate::Engine::Dense,
            ..Default::default()
        };
        let mut batch = BatchSolver::new(&mut m);
        batch.solve(Sense::Maximize, x + y, &sparse).unwrap();
        batch.solve(Sense::Minimize, x + y, &dense).unwrap();
        let stats = batch.stats();
        assert_eq!(stats.cold_solves, 2, "engine switch must re-solve cold");
        assert_eq!(stats.warm_hits, 0);
        // The switched engine's own resident chains from there.
        batch.solve(Sense::Maximize, 1.0 * x, &dense).unwrap();
        assert_eq!(batch.stats().warm_hits, 1);
    }

    #[test]
    fn warm_start_disabled_runs_every_solve_cold() {
        let (mut m, x, y) = skeleton();
        let opts = SolveOptions {
            warm_start: false,
            ..Default::default()
        };
        let mut batch = BatchSolver::new(&mut m);
        batch.solve(Sense::Maximize, x + y, &opts).unwrap();
        batch.solve(Sense::Minimize, x + y, &opts).unwrap();
        let stats = batch.stats();
        assert_eq!(stats.cold_solves, 2);
        assert_eq!(stats.warm_hits, 0);
        assert_eq!(stats.warm_misses, 0);
    }

    #[test]
    fn integer_models_solve_cold_through_branch_and_bound() {
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        m.add_constraint(3.0 * a + 4.0 * b, Cmp::Le, 6.0);
        let opts = SolveOptions::default();
        let mut batch = BatchSolver::new(&mut m);
        let hi = batch
            .solve(Sense::Maximize, 10.0 * a + 13.0 * b, &opts)
            .unwrap();
        assert!((hi.objective - 13.0).abs() < 1e-6);
        let lo = batch
            .solve(Sense::Minimize, 10.0 * a + 13.0 * b, &opts)
            .unwrap();
        assert!(lo.objective.abs() < 1e-9);
        let stats = batch.stats();
        assert_eq!(stats.cold_solves, 2);
        assert_eq!(stats.warm_hits, 0);
    }

    #[test]
    fn redundant_equality_rows_stay_warm() {
        // The duplicated hyperplane keeps a frozen artificial in the final
        // basis. A `Basis` snapshot cannot represent that (see
        // `Model::solve_with_basis`), but the live resident tableau carries
        // the frozen artificial along, so the sweep still warm-starts — and
        // must still agree with `Model::solve`.
        let mut m = Model::new();
        let x = m.add_var(0.0, 5.0);
        let y = m.add_var(0.0, 5.0);
        m.add_constraint(x + y, Cmp::Eq, 4.0);
        m.add_constraint(2.0 * x + 2.0 * y, Cmp::Eq, 8.0);
        let opts = SolveOptions::default();
        let mut batch = BatchSolver::new(&mut m);
        let hi = batch.solve(Sense::Maximize, 1.0 * x, &opts).unwrap();
        let lo = batch.solve(Sense::Minimize, 1.0 * x, &opts).unwrap();
        assert!((hi.objective - 4.0).abs() < 1e-6);
        assert!(lo.objective.abs() < 1e-6);
        let stats = batch.stats();
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.warm_hits, 1);
    }

    #[test]
    fn infeasible_skeleton_errors_on_every_solve() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0);
        m.add_constraint(2.0 * x, Cmp::Ge, 3.0);
        let opts = SolveOptions::default();
        let mut batch = BatchSolver::new(&mut m);
        for _ in 0..2 {
            assert_eq!(
                batch.solve(Sense::Maximize, 1.0 * x, &opts).unwrap_err(),
                SolveError::Infeasible
            );
        }
        assert_eq!(batch.stats().cold_solves, 2);
    }

    #[test]
    fn unbounded_objective_is_reported_warm_or_cold() {
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(y - x, Cmp::Le, 1.0);
        let opts = SolveOptions::default();
        let mut batch = BatchSolver::new(&mut m);
        // Bounded objective first, to install a basis.
        batch.solve(Sense::Maximize, 1.0 * y, &opts).unwrap();
        assert_eq!(
            batch.solve(Sense::Maximize, 1.0 * x, &opts).unwrap_err(),
            SolveError::Unbounded
        );
    }

    #[test]
    fn solve_range_is_warm_on_the_second_leg() {
        let (mut m, x, y) = skeleton();
        let opts = SolveOptions::default();
        let mut batch = BatchSolver::new(&mut m);
        let (lo, hi) = batch.solve_range(x + y, &opts).unwrap();
        assert!(lo.abs() < 1e-9);
        assert!((hi - 6.0).abs() < 1e-6);
        assert_eq!(batch.stats().warm_hits, 1);
    }
}
