//! The optimization model: variables, constraints, objective.

use crate::error::SolveError;
use crate::linexpr::LinExpr;
use crate::options::SolveOptions;
use crate::{branch_bound, simplex, sparse, Solution};

/// Handle to a model variable. Cheap to copy; only valid for the model that
/// created it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Position of the variable in creation order (also its index in
    /// [`Solution::values`](crate::Solution::values)).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Continuous or integer-constrained variable.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VarType {
    /// Ordinary continuous variable.
    Continuous,
    /// Integer-valued variable (branch-and-bound enforces integrality).
    Integer,
}

/// Constraint comparison operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Optimization direction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Result of [`Model::solve_warm`]: the solution, the final basis snapshot
/// for the next solve over this skeleton, and whether the supplied warm
/// basis actually carried the solve (as opposed to a silent cold fallback).
#[derive(Clone, Debug)]
pub struct WarmSolve {
    /// The solve result, identical to what [`Model::solve_with`] returns.
    pub solution: crate::Solution,
    /// Final basis snapshot (continuous models only; `None` after
    /// branch-and-bound or when no basis exists).
    pub basis: Option<crate::Basis>,
    /// `true` iff the supplied warm basis restored successfully and the
    /// solve reoptimized from it rather than starting cold.
    pub warm_used: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct Column {
    pub lo: f64,
    pub hi: f64,
    pub ty: VarType,
}

#[derive(Clone, Debug)]
pub(crate) struct Row {
    /// Compacted sparse terms, sorted by variable index.
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear optimization model over bounded variables.
///
/// See the [crate-level docs](crate) for a complete example. Models containing
/// at least one [`VarType::Integer`] variable are solved by branch-and-bound;
/// purely continuous models by the simplex method directly.
#[derive(Clone, Debug, Default)]
pub struct Model {
    pub(crate) cols: Vec<Column>,
    pub(crate) rows: Vec<Row>,
    pub(crate) objective: Vec<(usize, f64)>,
    pub(crate) obj_constant: f64,
    pub(crate) sense: Option<Sense>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable with inclusive bounds `lo ≤ x ≤ hi`.
    /// Either bound may be infinite.
    pub fn add_var(&mut self, lo: f64, hi: f64) -> VarId {
        self.cols.push(Column {
            lo,
            hi,
            ty: VarType::Continuous,
        });
        VarId(self.cols.len() - 1)
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self) -> VarId {
        self.cols.push(Column {
            lo: 0.0,
            hi: 1.0,
            ty: VarType::Integer,
        });
        VarId(self.cols.len() - 1)
    }

    /// Adds an integer variable with inclusive bounds.
    pub fn add_integer(&mut self, lo: f64, hi: f64) -> VarId {
        self.cols.push(Column {
            lo,
            hi,
            ty: VarType::Integer,
        });
        VarId(self.cols.len() - 1)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.cols.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Number of integer variables.
    pub fn num_integers(&self) -> usize {
        self.cols
            .iter()
            .filter(|c| c.ty == VarType::Integer)
            .count()
    }

    /// Bounds of a variable.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.cols[v.0].lo, self.cols[v.0].hi)
    }

    /// Tightens (or loosens) the bounds of an existing variable.
    pub fn set_bounds(&mut self, v: VarId, lo: f64, hi: f64) {
        self.cols[v.0].lo = lo;
        self.cols[v.0].hi = hi;
    }

    /// Bounds of variable `j` by creation index — the indexing
    /// [`Model::row_terms`] and [`Model::objective_terms`] use.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.num_vars()`.
    pub fn bounds_at(&self, j: usize) -> (f64, f64) {
        (self.cols[j].lo, self.cols[j].hi)
    }

    /// The `(variable index, coefficient)` terms of constraint row `r`.
    ///
    /// Exposed (together with [`Model::row_cmp`], [`Model::row_rhs`],
    /// [`Model::bounds_at`] and the objective accessors) so external
    /// certificate checkers can rebuild the exact problem data a
    /// [`crate::DualCertificate`] refers to.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.num_constraints()`.
    pub fn row_terms(&self, r: usize) -> &[(usize, f64)] {
        &self.rows[r].terms
    }

    /// The comparison operator of constraint row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.num_constraints()`.
    pub fn row_cmp(&self, r: usize) -> Cmp {
        self.rows[r].cmp
    }

    /// The right-hand side of constraint row `r` (after the expression's
    /// constant moved across in [`Model::add_constraint`]).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.num_constraints()`.
    pub fn row_rhs(&self, r: usize) -> f64 {
        self.rows[r].rhs
    }

    /// The `(variable index, coefficient)` terms of the current objective.
    pub fn objective_terms(&self) -> &[(usize, f64)] {
        &self.objective
    }

    /// The objective's constant offset (added to every reported objective
    /// value but invisible to the simplex engines).
    pub fn objective_constant(&self) -> f64 {
        self.obj_constant
    }

    /// The current objective sense, or `None` for a pure feasibility model.
    pub fn objective_sense(&self) -> Option<Sense> {
        self.sense
    }

    /// Adds the constraint `expr cmp rhs`. The expression's constant moves to
    /// the right-hand side.
    pub fn add_constraint(&mut self, expr: impl Into<LinExpr>, cmp: Cmp, rhs: f64) {
        let mut e = expr.into();
        self.add_constraint_buf(&mut e, cmp, rhs);
    }

    /// [`Model::add_constraint`] reading from a caller-owned scratch buffer:
    /// the expression is compacted in place and copied into the row, and the
    /// buffer (with its capacity) stays with the caller for the next
    /// constraint. Hot encoders build each row into one reusable [`LinExpr`]
    /// instead of allocating per constraint.
    pub fn add_constraint_buf(&mut self, expr: &mut LinExpr, cmp: Cmp, rhs: f64) {
        expr.compact_in_place();
        let adjusted = rhs - expr.constant();
        self.rows.push(Row {
            terms: expr.terms().iter().map(|&(v, c)| (v.index(), c)).collect(),
            cmp,
            rhs: adjusted,
        });
    }

    /// Overwrites the right-hand side of constraint row `r`, leaving its
    /// terms and comparison untouched. The cheap re-parameterization behind
    /// encoding reuse: a δ change perturbs bounds and right-hand sides but
    /// not the constraint skeleton.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.num_constraints()`.
    pub fn update_rhs(&mut self, r: usize, rhs: f64) {
        self.rows[r].rhs = rhs;
    }

    /// Re-parameterizes constraint row `r` in place from a scratch buffer:
    /// compacts `expr`, and — when the row's variable-index pattern and
    /// comparison operator match exactly — overwrites the coefficients and
    /// the (constant-adjusted) right-hand side, returning `true`. Any
    /// structural mismatch (different operator, different support) leaves
    /// the row untouched and returns `false`, signalling the caller to fall
    /// back to a fresh build.
    pub fn reparam_row_buf(&mut self, r: usize, expr: &mut LinExpr, cmp: Cmp, rhs: f64) -> bool {
        expr.compact_in_place();
        let Some(row) = self.rows.get_mut(r) else {
            return false;
        };
        if row.cmp != cmp
            || row.terms.len() != expr.terms().len()
            || row
                .terms
                .iter()
                .zip(expr.terms())
                .any(|(&(ri, _), &(v, _))| ri != v.index())
        {
            return false;
        }
        for (slot, &(_, c)) in row.terms.iter_mut().zip(expr.terms()) {
            slot.1 = c;
        }
        row.rhs = rhs - expr.constant();
        true
    }

    /// Re-parameterizes variable `j` (by creation index) in place: when the
    /// stored variable exists and has type `ty`, overwrites its bounds and
    /// returns its handle; otherwise leaves the model untouched and returns
    /// `None` (structural mismatch — the caller rebuilds from scratch).
    pub fn reparam_var(&mut self, j: usize, lo: f64, hi: f64, ty: VarType) -> Option<VarId> {
        let col = self.cols.get_mut(j)?;
        if col.ty != ty {
            return None;
        }
        col.lo = lo;
        col.hi = hi;
        Some(VarId(j))
    }

    /// Sets the objective `sense expr`. A model without an objective is a pure
    /// feasibility problem (objective `0`).
    pub fn set_objective(&mut self, sense: Sense, expr: impl Into<LinExpr>) {
        let e = expr.into().compact();
        self.objective = e.terms().iter().map(|&(v, c)| (v.index(), c)).collect();
        self.obj_constant = e.constant();
        self.sense = Some(sense);
    }

    /// Solves with default options.
    ///
    /// # Errors
    ///
    /// See [`SolveError`]; notably [`SolveError::Infeasible`] and
    /// [`SolveError::Unbounded`].
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Best-effort Farkas-style witness that the model's *continuous
    /// relaxation* is infeasible: the dual prices of a phase-1 optimum left
    /// with positive artificial mass. Checked against a zero objective
    /// (e.g. `itne_certcheck::verify_infeasibility`), the prices prove by
    /// weak duality that no point within the variable bounds satisfies
    /// every row.
    ///
    /// Returns `None` when the relaxation is feasible, when infeasibility
    /// stems from a crossed variable bound (`lo > hi` — trivially checkable,
    /// no row ray exists), when the model has no rows, or when phase 1 does
    /// not terminate within the pivot budget. Always runs the sparse engine
    /// regardless of [`SolveOptions::engine`] — the witness is engine-
    /// independent data.
    pub fn infeasibility_certificate(&self, opts: &SolveOptions) -> Option<Vec<f64>> {
        if self.validate().is_err() {
            return None;
        }
        sparse::infeasibility_duals(self, opts)
    }

    /// Solves with explicit options (tolerances, limits, stop signal).
    ///
    /// # Errors
    ///
    /// See [`SolveError`].
    pub fn solve_with(&self, opts: &SolveOptions) -> Result<Solution, SolveError> {
        self.validate()?;
        if self.num_integers() == 0 {
            simplex::solve_lp(self, opts)
        } else {
            branch_bound::solve_milp(self, opts)
        }
    }

    /// Re-solves the model for both senses of the same objective expression,
    /// returning `(min, max)` objective values. Convenience for range
    /// derivation, which is the certifier's dominant query pattern.
    ///
    /// # Errors
    ///
    /// See [`SolveError`].
    pub fn solve_range(
        &mut self,
        expr: impl Into<LinExpr>,
        opts: &SolveOptions,
    ) -> Result<(f64, f64), SolveError> {
        let e = expr.into();
        self.set_objective(Sense::Minimize, e.clone());
        let lo = self.solve_with(opts)?.objective;
        self.set_objective(Sense::Maximize, e);
        let hi = self.solve_with(opts)?.objective;
        Ok((lo, hi))
    }

    /// Re-solves the model for a new objective, warm-starting from `warm`
    /// (the basis snapshot of an earlier solve over the same constraint
    /// skeleton) when possible, and returns the solution together with a
    /// snapshot of its own final basis for the next solve.
    ///
    /// Warm-starting never changes results: a basis that cannot be restored
    /// (shape mismatch, singularity, infeasibility after restore) silently
    /// falls back to a cold solve. Models with integer variables are solved
    /// by branch-and-bound and return no snapshot. For sweeping many
    /// objectives, prefer [`crate::BatchSolver`], which also tracks
    /// warm-start hit/miss statistics.
    ///
    /// # Errors
    ///
    /// See [`SolveError`]; identical failure modes to [`Model::solve_with`].
    pub fn solve_with_basis(
        &self,
        opts: &SolveOptions,
        warm: Option<&crate::Basis>,
    ) -> Result<(Solution, Option<crate::Basis>), SolveError> {
        let w = self.solve_warm(opts, warm)?;
        Ok((w.solution, w.basis))
    }

    /// [`Model::solve_with_basis`] that also reports whether the warm basis
    /// actually carried the solve (`warm_used`), so callers keeping
    /// cross-query basis stores can count real warm hits instead of
    /// attempts. Identical solving behavior: a basis that cannot be restored
    /// silently falls back to a cold solve with `warm_used == false`.
    ///
    /// # Errors
    ///
    /// See [`SolveError`]; identical failure modes to [`Model::solve_with`].
    pub fn solve_warm(
        &self,
        opts: &SolveOptions,
        warm: Option<&crate::Basis>,
    ) -> Result<WarmSolve, SolveError> {
        self.validate()?;
        if self.num_integers() > 0 {
            return Ok(WarmSolve {
                solution: branch_bound::solve_milp(self, opts)?,
                basis: None,
                warm_used: false,
            });
        }
        if opts.warm_start {
            if let Some(basis) = warm {
                if let simplex::WarmOutcome::Solved(solution, basis) =
                    simplex::solve_lp_warm(self, opts, basis)?
                {
                    return Ok(WarmSolve {
                        solution,
                        basis,
                        warm_used: true,
                    });
                }
            }
        }
        let (solution, basis) = simplex::solve_lp_snapshot(self, opts)?;
        Ok(WarmSolve {
            solution,
            basis,
            warm_used: false,
        })
    }

    pub(crate) fn validate(&self) -> Result<(), SolveError> {
        for (i, c) in self.cols.iter().enumerate() {
            if c.lo.is_nan() || c.hi.is_nan() {
                return Err(SolveError::InvalidModel(format!(
                    "variable {i} has NaN bound"
                )));
            }
            if c.lo > c.hi {
                return Err(SolveError::InvalidModel(format!(
                    "variable {i} has lo {} > hi {}",
                    c.lo, c.hi
                )));
            }
        }
        for (i, r) in self.rows.iter().enumerate() {
            if !r.rhs.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "row {i} has non-finite rhs"
                )));
            }
            for &(v, c) in &r.terms {
                if !c.is_finite() {
                    return Err(SolveError::InvalidModel(format!(
                        "row {i} has non-finite coefficient on variable {v}"
                    )));
                }
            }
        }
        for &(_, c) in &self.objective {
            if !c.is_finite() {
                return Err(SolveError::InvalidModel(
                    "non-finite objective coefficient".into(),
                ));
            }
        }
        Ok(())
    }

    /// Maximum absolute violation of rows and bounds at `values`.
    pub fn violation(&self, values: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for r in &self.rows {
            let lhs: f64 = r.terms.iter().map(|&(v, c)| c * values[v]).sum();
            let viol = match r.cmp {
                Cmp::Le => (lhs - r.rhs).max(0.0),
                Cmp::Ge => (r.rhs - lhs).max(0.0),
                Cmp::Eq => (lhs - r.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        for (c, &x) in self.cols.iter().zip(values) {
            worst = worst.max(c.lo - x).max(x - c.hi);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveOptions;

    fn toy() -> (Model, VarId, VarId) {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0);
        let y = m.add_var(0.0, 10.0);
        m.add_constraint(x + y, Cmp::Le, 6.0);
        m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        (m, x, y)
    }

    #[test]
    fn update_rhs_changes_only_the_rhs() {
        let (mut m, _, _) = toy();
        let before = m.row_terms(0).to_vec();
        m.update_rhs(0, 8.0);
        assert_eq!(m.row_rhs(0), 8.0);
        assert_eq!(m.row_terms(0), &before[..]);
        assert_eq!(m.row_cmp(0), Cmp::Le);
    }

    #[test]
    fn reparam_row_matching_pattern_matches_fresh_build() {
        let (mut reused, x, y) = toy();
        // New coefficients over the same support, plus a constant that must
        // move to the rhs exactly as add_constraint would move it.
        let mut buf: LinExpr = 1.5 * x + 0.5 * y + 2.0;
        assert!(reused.reparam_row_buf(0, &mut buf, Cmp::Le, 7.0));

        let mut fresh = Model::new();
        let fx = fresh.add_var(0.0, 10.0);
        let fy = fresh.add_var(0.0, 10.0);
        fresh.add_constraint(1.5 * fx + 0.5 * fy + 2.0, Cmp::Le, 7.0);
        assert_eq!(reused.row_terms(0), fresh.row_terms(0));
        assert_eq!(reused.row_rhs(0), fresh.row_rhs(0));

        let a = reused.solve().expect("feasible");
        // Same model built cold from scratch must agree bit-for-bit.
        let mut cold = Model::new();
        let cx = cold.add_var(0.0, 10.0);
        let cy = cold.add_var(0.0, 10.0);
        cold.add_constraint(1.5 * cx + 0.5 * cy + 2.0, Cmp::Le, 7.0);
        cold.add_constraint(2.0 * cx + cy, Cmp::Le, 9.0);
        cold.set_objective(Sense::Maximize, 3.0 * cx + 2.0 * cy);
        let b = cold.solve().expect("feasible");
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    }

    #[test]
    fn reparam_row_rejects_structural_mismatch() {
        let (mut m, x, y) = toy();
        let rhs_before = m.row_rhs(0);
        // Different operator.
        let mut buf: LinExpr = 1.0 * x + 1.0 * y;
        assert!(!m.reparam_row_buf(0, &mut buf, Cmp::Ge, 6.0));
        // Different support (x only).
        let mut buf: LinExpr = 1.0 * x;
        assert!(!m.reparam_row_buf(0, &mut buf, Cmp::Le, 6.0));
        // Out-of-range row.
        let mut buf: LinExpr = 1.0 * x + 1.0 * y;
        assert!(!m.reparam_row_buf(99, &mut buf, Cmp::Le, 6.0));
        assert_eq!(m.row_rhs(0), rhs_before);
    }

    #[test]
    fn reparam_var_checks_type_and_range() {
        let (mut m, x, _) = toy();
        assert_eq!(m.reparam_var(0, -1.0, 2.0, VarType::Continuous), Some(x));
        assert_eq!(m.bounds(x), (-1.0, 2.0));
        assert_eq!(m.reparam_var(0, 0.0, 1.0, VarType::Integer), None);
        assert_eq!(m.reparam_var(7, 0.0, 1.0, VarType::Continuous), None);
    }

    #[test]
    fn solve_warm_reports_warm_used_and_preserves_bits() {
        let (mut m, x, y) = toy();
        let opts = SolveOptions::default();
        let cold = m.solve_warm(&opts, None).expect("feasible");
        assert!(!cold.warm_used);
        let basis = cold.basis.clone().expect("continuous model has a basis");

        m.set_objective(Sense::Minimize, 1.0 * x + 4.0 * y);
        let warm = m.solve_warm(&opts, Some(&basis)).expect("feasible");
        let coldagain = m.solve_warm(&opts, None).expect("feasible");
        assert!(warm.warm_used, "restorable basis must carry the solve");
        assert_eq!(
            warm.solution.objective.to_bits(),
            coldagain.solution.objective.to_bits()
        );
    }
}
