//! A pure-Rust linear-programming and mixed-integer-linear-programming solver.
//!
//! This crate is the optimization substrate for the ITNE global-robustness
//! certifier. The paper solves all of its LP/MILP problems with Gurobi; no
//! comparable solver exists as an offline Rust crate, so this crate implements
//! the required subset from scratch:
//!
//! * a **two-phase primal simplex** method with *bounded variables*
//!   ([`Model::solve`] on continuous models). Box bounds are handled directly
//!   in the ratio test instead of as explicit rows, which matters because the
//!   certification encodings bound every variable. Three interchangeable
//!   engines implement it behind [`SolveOptions::engine`]: the default
//!   **sparse LU revised simplex** (CSC storage, real sparse LU
//!   factorization with hybrid Forrest–Tomlin / product-form updates,
//!   range-row folding, fill-growth-triggered refactorization), the pure
//!   **eta-file revised simplex**, and the original **dense tableau** — the
//!   latter two kept as differential-testing references;
//! * a **branch-and-bound** search over integer (in practice binary ReLU
//!   indicator) variables, with cooperative cancellation ([`StopWhen`],
//!   typically a caller-built deadline) and node-limit support
//!   ([`Model::solve`] on mixed models);
//! * **warm-started objective sweeps**: a solve's final simplex [`Basis`] can
//!   be snapshotted and re-injected as the starting basis of the next solve
//!   over the same constraint skeleton ([`Model::solve_with_basis`]), and
//!   [`BatchSolver`] drives whole objective batches that way — skipping
//!   phase 1 on every hit and falling back to a cold solve whenever a
//!   restored basis cannot complete. This is the certifier's hot path: every
//!   `LpRelaxY`/`LpRelaxX` sub-problem is "one skeleton, several objectives".
//!
//! The API is deliberately Gurobi-shaped: build a [`Model`], add variables with
//! bounds, add linear constraints, set a linear objective, and solve.
//!
//! ```
//! use itne_milp::{Model, Sense, Cmp};
//!
//! # fn main() -> Result<(), itne_milp::SolveError> {
//! let mut m = Model::new();
//! let x = m.add_var(0.0, 10.0);
//! let y = m.add_var(0.0, 10.0);
//! m.add_constraint(x + y, Cmp::Le, 6.0);
//! m.add_constraint(2.0 * x + y, Cmp::Le, 9.0);
//! m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
//! let sol = m.solve()?;
//! assert!((sol.objective - 15.0).abs() < 1e-6); // x = 3, y = 3
//! # Ok(())
//! # }
//! ```
//!
//! # Scope and numerics
//!
//! The solver targets the well-scaled, structurally sparse problems produced
//! by neural network verification encodings (equalities defining
//! pre-activations, triangle/distance ReLU relaxations, big-M indicator
//! constraints — each over-approximation window yields a band-diagonal
//! `[A | I]` skeleton). Both engines use Dantzig-style pricing with a Bland
//! anti-cycling fallback and absolute tolerances tuned for coefficients in
//! roughly `1e-6 ..= 1e6`.
//! Solutions report their maximum constraint residual in [`Stats`] so callers
//! can detect numerical trouble and fall back to interval bounds (which the
//! certifier does, keeping its results sound).

#![forbid(unsafe_code)]

mod batch;
mod branch_bound;
mod error;
pub mod kernel;
mod linexpr;
mod lu;
mod model;
mod options;
mod simplex;
mod sparse;

pub use batch::{BatchSolver, BatchStats};
pub use error::SolveError;
pub use linexpr::LinExpr;
pub use model::{Cmp, Model, Sense, VarId, VarType, WarmSolve};
pub use options::{Engine, Pricing, SolveOptions, StopWhen, TelemetryClock, Tolerances};
pub use simplex::Basis;

use serde::{Deserialize, Serialize};

/// Termination status of a successful solve.
///
/// `Optimal` is a proof; the other variants mean the search stopped early but
/// still produced the best solution found so far (MILP only — LP solves are
/// either optimal or an error).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Proven optimal (within tolerances).
    Optimal,
    /// The caller's stop signal fired (typically an expired deadline); the
    /// reported solution is feasible but possibly sub-optimal.
    /// [`Stats::best_bound`] brackets the true optimum.
    TimedOut,
    /// The branch-and-bound node limit was hit before the tree was exhausted.
    NodeLimit,
}

/// Solver work counters and quality diagnostics attached to every [`Solution`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Total simplex pivots performed (across all branch-and-bound nodes).
    pub pivots: u64,
    /// Branch-and-bound nodes explored (`0` for pure LPs).
    pub nodes: u64,
    /// Best dual/relaxation bound on the objective at termination. For an
    /// `Optimal` status this equals `objective` up to tolerances.
    pub best_bound: f64,
    /// Maximum absolute row residual `|a·x - b|` of the returned point,
    /// measured against the *original* model data.
    pub max_residual: f64,
    /// Structural non-zeros of the solved constraint matrix (the sparsity
    /// the revised simplex exploits; `rows × cols` would be the dense cost).
    pub nnz: u64,
    /// Basis refactorizations performed (sparse engines: periodic basis
    /// rebuilds plus warm-restore factorizations; dense engine: one per warm
    /// restore).
    pub refactorizations: u64,
    /// Peak product-form eta-file length during the solve (sparse engines
    /// only; `0` on the dense engine). On [`Engine::Lu`] this counts the
    /// *update* etas layered on top of the LU factors since the last
    /// refactorization.
    pub eta_len: u64,
    /// Nanoseconds spent refactorizing the basis. Requires a caller-injected
    /// [`TelemetryClock`] ([`SolveOptions::telemetry`]); `0` otherwise.
    pub refactor_time_ns: u64,
    /// Nanoseconds spent in FTRAN/BTRAN passes (entering columns, dual
    /// prices). Requires a [`TelemetryClock`]; `0` otherwise.
    pub ftran_btran_time_ns: u64,
    /// Peak stored non-zeros of the LU factors (`L` + `U` fill;
    /// [`Engine::Lu`] only, `0` on the other engines).
    pub lu_fill_nnz: u64,
}

/// The dual certificate of an optimal LP termination: the data an
/// *independent* checker needs to re-derive the reported objective as a
/// machine-checked bound (see the `itne_certcheck` crate).
///
/// Both simplex engines emit one on every optimal pure-LP termination (the
/// sparse engine via a BTRAN pass `yᵀ = c_Bᵀ·B⁻¹`, the dense engine from the
/// maintained reduced-cost row) unless [`SolveOptions::emit_certificates`]
/// is off. The vectors are in the engines' *internal minimize orientation* —
/// costs are negated for a [`Sense::Maximize`] model — which is the
/// orientation `itne_certcheck::verify_bound` expects.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DualCertificate {
    /// One simplex multiplier per constraint row, in model row order.
    pub row_duals: Vec<f64>,
    /// Reduced cost per structural variable, `d = c′ − Aᵀy`. Diagnostic —
    /// checkers recompute this exactly from `row_duals` rather than trust it.
    pub reduced_costs: Vec<f64>,
}

/// The result of a solve: an objective value, a variable assignment, a
/// [`Status`], and work [`Stats`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Solution {
    /// Objective value at the returned point (in the model's own sense).
    pub objective: f64,
    /// Termination status.
    pub status: Status,
    /// Work counters and diagnostics.
    pub stats: Stats,
    values: Vec<f64>,
    certificate: Option<DualCertificate>,
}

impl Solution {
    /// The value assigned to variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to the model that produced this solution.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// The full assignment, indexed by variable creation order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The dual certificate, when one was emitted (optimal pure-LP solves
    /// with [`SolveOptions::emit_certificates`] on; never for
    /// branch-and-bound results, whose bound is a tree property no single
    /// dual vector witnesses).
    pub fn certificate(&self) -> Option<&DualCertificate> {
        self.certificate.as_ref()
    }

    /// The value a caller should use as a directional bound: the optimum
    /// when [`Status::Optimal`], else the search frontier's relaxation bound
    /// (a non-optimal incumbent's own objective is *not* an outer bound).
    pub fn bound_value(&self) -> f64 {
        match self.status {
            Status::Optimal => self.objective,
            Status::TimedOut | Status::NodeLimit => self.stats.best_bound,
        }
    }

    /// Whether [`Solution::bound_value`] is a pure-LP optimum vouched for by
    /// an attached [`DualCertificate`].
    pub fn is_certified(&self) -> bool {
        self.status == Status::Optimal && self.stats.nodes == 0 && self.certificate.is_some()
    }
}
