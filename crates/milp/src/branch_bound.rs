//! Branch-and-bound over integer variables, bounding with LP relaxations.
//!
//! Depth-first search branching on the most fractional integer variable.
//! Nodes carry only bound overrides, so the constraint matrix is shared.
//! Supports cooperative cancellation ([`crate::StopWhen`], typically a
//! caller-built wall-clock deadline, returning the incumbent with
//! [`Status::TimedOut`]) — the mechanism behind the paper's "exact methods
//! cannot certify within 24h" rows of Table I. The solver never reads the
//! clock itself (determinism lint rule `wall-clock`).
//!
//! With [`crate::SolveOptions::steal`] > 1 the tree is instead explored in
//! deterministic **waves**: every surviving frontier node's LP relaxation is
//! solved concurrently (workers claim node indices dynamically, so a cheap
//! subtree never idles a worker behind an expensive sibling), then the
//! results are merged back strictly in node index order and all incumbent,
//! pruning, and branching decisions happen in that sequential merge. The
//! wave content is therefore a pure function of the previous wave — never
//! of the thread count or of which worker solved which node — so the
//! returned solution *and every stats counter* are bit-identical at any
//! `steal` value. What changes versus the serial DFS is only the traversal
//! order (breadth-synchronous instead of depth-first), which can explore a
//! different number of nodes; both orders prove the same optimum.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::SolveError;
use crate::model::{Model, Sense, VarType};
use crate::options::{Engine, SolveOptions, StopWhen};
use crate::sparse::{self, Skeleton};
use crate::{simplex, Solution, Stats, Status};

struct Node {
    /// `(column, lo, hi)` overrides accumulated along the path from the root.
    overrides: Vec<(usize, f64, f64)>,
    /// Objective of the parent's LP relaxation — an optimistic bound for this
    /// node, used to prune before re-solving.
    parent_bound: f64,
}

pub(crate) fn solve_milp(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    if opts.steal > 1 && opts.engine != Engine::Dense {
        return solve_milp_waves(model, opts);
    }
    let sense = model.sense.unwrap_or(Sense::Minimize);
    let int_tol = opts.tolerances.integrality;
    // `better(a, b)`: objective a strictly improves on b.
    let better = |a: f64, b: f64| match sense {
        Sense::Maximize => a > b + 1e-9,
        Sense::Minimize => a < b - 1e-9,
    };

    let int_vars: Vec<usize> = model
        .cols
        .iter()
        .enumerate()
        .filter(|(_, c)| c.ty == VarType::Integer)
        .map(|(i, _)| i)
        .collect();

    let base_bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    let worst = match sense {
        Sense::Maximize => f64::NEG_INFINITY,
        Sense::Minimize => f64::INFINITY,
    };

    let mut incumbent: Option<Solution> = None;
    let mut best_obj = worst;
    let mut best_bound = worst; // tightest relaxation bound seen at the frontier
    let mut stack = vec![Node {
        overrides: Vec::new(),
        parent_bound: -worst,
    }];
    let mut pivots = 0u64;
    let mut nodes = 0u64;
    let mut refactorizations = 0u64;
    let mut eta_len = 0u64;
    let mut refactor_time_ns = 0u64;
    let mut ftran_btran_time_ns = 0u64;
    let mut lu_fill_nnz = 0u64;
    let mut timed_out = false;
    let mut node_limited = false;
    let mut scratch = base_bounds.clone();
    // Node relaxations don't need dual certificates — nobody consumes a
    // node's duals, and the tree's bound is not witnessed by any single one.
    let opts = &SolveOptions {
        emit_certificates: false,
        ..opts.clone()
    };
    // The constraint skeleton is shared by every node; with the sparse
    // engines, compile it once for the whole tree instead of per relaxation
    // (nodes only override variable bounds, never rows).
    let skel = (opts.engine != Engine::Dense)
        .then(|| Arc::new(Skeleton::build(model, opts.engine == Engine::Lu)));

    while let Some(node) = stack.pop() {
        if opts.stop.as_ref().is_some_and(StopWhen::should_stop) {
            timed_out = true;
            break;
        }
        if nodes >= opts.max_nodes {
            node_limited = true;
            break;
        }
        // Prune on the parent's relaxation before paying for an LP solve.
        if incumbent.is_some() && !better(node.parent_bound, best_obj) {
            continue;
        }
        nodes += 1;

        scratch.copy_from_slice(&base_bounds);
        for &(c, lo, hi) in &node.overrides {
            let cur = scratch[c];
            scratch[c] = (cur.0.max(lo), cur.1.min(hi));
        }

        let relaxed = match &skel {
            Some(skel) => sparse::solve_bounded(model, &scratch, opts, Some(skel.clone())),
            None => simplex::solve_lp_bounded(model, &scratch, opts),
        };
        let relax = match relaxed {
            Ok(s) => s,
            Err(SolveError::Infeasible) => continue,
            Err(e) => return Err(e),
        };
        pivots += relax.stats.pivots;
        refactorizations += relax.stats.refactorizations;
        eta_len = eta_len.max(relax.stats.eta_len);
        refactor_time_ns = refactor_time_ns.saturating_add(relax.stats.refactor_time_ns);
        ftran_btran_time_ns = ftran_btran_time_ns.saturating_add(relax.stats.ftran_btran_time_ns);
        lu_fill_nnz = lu_fill_nnz.max(relax.stats.lu_fill_nnz);
        if incumbent.is_some() && !better(relax.objective, best_obj) {
            continue; // relaxation can't beat incumbent
        }

        // Find the most fractional integer variable.
        let mut branch: Option<(usize, f64, f64)> = None; // (col, value, frac dist)
        for &c in &int_vars {
            let v = relax.values()[c];
            let frac = (v - v.round()).abs();
            if frac > int_tol {
                let dist = (v - v.floor() - 0.5).abs(); // 0 = perfectly fractional
                if branch.is_none_or(|(_, _, d)| dist < d) {
                    branch = Some((c, v, dist));
                }
            }
        }

        match branch {
            None => {
                // Integral: candidate incumbent. Snap integer values exactly.
                let mut vals = relax.values().to_vec();
                for &c in &int_vars {
                    vals[c] = vals[c].round();
                }
                if incumbent.is_none() || better(relax.objective, best_obj) {
                    best_obj = relax.objective;
                    incumbent = Some(Solution {
                        objective: relax.objective,
                        status: Status::Optimal,
                        stats: Stats::default(),
                        values: vals,
                        certificate: None,
                    });
                }
            }
            Some((c, v, _)) => {
                let floor = v.floor();
                let up = Node {
                    overrides: with_override(&node.overrides, (c, floor + 1.0, f64::INFINITY)),
                    parent_bound: relax.objective,
                };
                let down = Node {
                    overrides: with_override(&node.overrides, (c, f64::NEG_INFINITY, floor)),
                    parent_bound: relax.objective,
                };
                // Explore the child nearer the LP value first (DFS: push last).
                if v - floor > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
                if incumbent.is_none() || better(relax.objective, best_bound) {
                    best_bound = relax.objective;
                }
            }
        }
    }

    let status = if timed_out {
        Status::TimedOut
    } else if node_limited {
        Status::NodeLimit
    } else {
        Status::Optimal
    };
    match incumbent {
        Some(mut sol) => {
            sol.status = status;
            let frontier: f64 = stack
                .iter()
                .map(|n| n.parent_bound)
                .fold(best_obj, |acc, b| match sense {
                    Sense::Maximize => acc.max(b),
                    Sense::Minimize => acc.min(b),
                });
            sol.stats = Stats {
                pivots,
                nodes,
                best_bound: if status == Status::Optimal {
                    sol.objective
                } else {
                    frontier
                },
                max_residual: model.violation(sol.values()),
                nnz: model.rows.iter().map(|r| r.terms.len() as u64).sum(),
                refactorizations,
                eta_len,
                refactor_time_ns,
                ftran_btran_time_ns,
                lu_fill_nnz,
            };
            sol.objective = {
                // Recompute from the snapped integer point for exactness.
                let mut obj = model.obj_constant;
                for &(v, c) in &model.objective {
                    obj += c * sol.values()[v];
                }
                obj
            };
            Ok(sol)
        }
        None if timed_out => Err(SolveError::Timeout),
        None if node_limited => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}

/// Wave-synchronous parallel branch-and-bound (see the module docs): solve
/// every surviving frontier relaxation concurrently, then make all search
/// decisions in a sequential index-order merge. Deterministic at any
/// [`SolveOptions::steal`] ≥ 2 by construction.
fn solve_milp_waves(model: &Model, opts: &SolveOptions) -> Result<Solution, SolveError> {
    let sense = model.sense.unwrap_or(Sense::Minimize);
    let int_tol = opts.tolerances.integrality;
    let better = |a: f64, b: f64| match sense {
        Sense::Maximize => a > b + 1e-9,
        Sense::Minimize => a < b - 1e-9,
    };
    let int_vars: Vec<usize> = model
        .cols
        .iter()
        .enumerate()
        .filter(|(_, c)| c.ty == VarType::Integer)
        .map(|(i, _)| i)
        .collect();
    let base_bounds: Vec<(f64, f64)> = model.cols.iter().map(|c| (c.lo, c.hi)).collect();
    let worst = match sense {
        Sense::Maximize => f64::NEG_INFINITY,
        Sense::Minimize => f64::INFINITY,
    };
    let threads = opts.steal;

    let mut incumbent: Option<Solution> = None;
    let mut best_obj = worst;
    let mut best_bound = worst;
    // Unexplored nodes. Within a wave, earlier indices merge first, so the
    // child nearer its parent's LP value is pushed first — the same
    // "explore the likelier side before its sibling" heuristic as the DFS.
    let mut frontier = vec![Node {
        overrides: Vec::new(),
        parent_bound: -worst,
    }];
    let mut pivots = 0u64;
    let mut nodes = 0u64;
    let mut refactorizations = 0u64;
    let mut eta_len = 0u64;
    let mut refactor_time_ns = 0u64;
    let mut ftran_btran_time_ns = 0u64;
    let mut lu_fill_nnz = 0u64;
    let mut timed_out = false;
    let mut node_limited = false;
    let opts = &SolveOptions {
        emit_certificates: false,
        ..opts.clone()
    };
    let skel = Arc::new(Skeleton::build(model, opts.engine == Engine::Lu));

    while !frontier.is_empty() {
        if opts.stop.as_ref().is_some_and(StopWhen::should_stop) {
            timed_out = true;
            break;
        }
        // Deterministic pre-prune in index order against the incumbent of
        // the *previous* waves — never against results racing in this one.
        let mut wave: Vec<Node> = Vec::with_capacity(frontier.len());
        for node in frontier.drain(..) {
            if incumbent.is_none() || better(node.parent_bound, best_obj) {
                wave.push(node);
            }
        }
        if wave.is_empty() {
            break;
        }
        let budget = opts.max_nodes.saturating_sub(nodes);
        if wave.len() as u64 > budget {
            node_limited = true;
            frontier = wave.split_off(budget as usize);
            if wave.is_empty() {
                break;
            }
        }
        nodes += wave.len() as u64;

        let results = solve_wave(model, &skel, &base_bounds, &wave, opts, threads);

        let mut next: Vec<Node> = Vec::new();
        for (node, res) in wave.iter().zip(results) {
            let relax = match res {
                Ok(s) => s,
                Err(SolveError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            pivots += relax.stats.pivots;
            refactorizations += relax.stats.refactorizations;
            eta_len = eta_len.max(relax.stats.eta_len);
            refactor_time_ns = refactor_time_ns.saturating_add(relax.stats.refactor_time_ns);
            ftran_btran_time_ns =
                ftran_btran_time_ns.saturating_add(relax.stats.ftran_btran_time_ns);
            lu_fill_nnz = lu_fill_nnz.max(relax.stats.lu_fill_nnz);
            if incumbent.is_some() && !better(relax.objective, best_obj) {
                continue; // relaxation can't beat incumbent
            }

            let mut branch: Option<(usize, f64, f64)> = None;
            for &c in &int_vars {
                let v = relax.values()[c];
                let frac = (v - v.round()).abs();
                if frac > int_tol {
                    let dist = (v - v.floor() - 0.5).abs();
                    if branch.is_none_or(|(_, _, d)| dist < d) {
                        branch = Some((c, v, dist));
                    }
                }
            }

            match branch {
                None => {
                    let mut vals = relax.values().to_vec();
                    for &c in &int_vars {
                        vals[c] = vals[c].round();
                    }
                    if incumbent.is_none() || better(relax.objective, best_obj) {
                        best_obj = relax.objective;
                        incumbent = Some(Solution {
                            objective: relax.objective,
                            status: Status::Optimal,
                            stats: Stats::default(),
                            values: vals,
                            certificate: None,
                        });
                    }
                }
                Some((c, v, _)) => {
                    let floor = v.floor();
                    let up = Node {
                        overrides: with_override(&node.overrides, (c, floor + 1.0, f64::INFINITY)),
                        parent_bound: relax.objective,
                    };
                    let down = Node {
                        overrides: with_override(&node.overrides, (c, f64::NEG_INFINITY, floor)),
                        parent_bound: relax.objective,
                    };
                    if v - floor > 0.5 {
                        next.push(up);
                        next.push(down);
                    } else {
                        next.push(down);
                        next.push(up);
                    }
                    if incumbent.is_none() || better(relax.objective, best_bound) {
                        best_bound = relax.objective;
                    }
                }
            }
        }
        if node_limited {
            // `frontier` already holds the unexplored wave tail; the solved
            // nodes' children join it so the frontier bound stays honest.
            frontier.append(&mut next);
            break;
        }
        frontier = next;
    }

    let status = if timed_out {
        Status::TimedOut
    } else if node_limited {
        Status::NodeLimit
    } else {
        Status::Optimal
    };
    match incumbent {
        Some(mut sol) => {
            sol.status = status;
            let frontier_bound: f64 =
                frontier
                    .iter()
                    .map(|n| n.parent_bound)
                    .fold(best_obj, |acc, b| match sense {
                        Sense::Maximize => acc.max(b),
                        Sense::Minimize => acc.min(b),
                    });
            sol.stats = Stats {
                pivots,
                nodes,
                best_bound: if status == Status::Optimal {
                    sol.objective
                } else {
                    frontier_bound
                },
                max_residual: model.violation(sol.values()),
                nnz: model.rows.iter().map(|r| r.terms.len() as u64).sum(),
                refactorizations,
                eta_len,
                refactor_time_ns,
                ftran_btran_time_ns,
                lu_fill_nnz,
            };
            sol.objective = {
                let mut obj = model.obj_constant;
                for &(v, c) in &model.objective {
                    obj += c * sol.values()[v];
                }
                obj
            };
            Ok(sol)
        }
        None if timed_out => Err(SolveError::Timeout),
        None if node_limited => Err(SolveError::IterationLimit),
        None => Err(SolveError::Infeasible),
    }
}

/// Solves every node relaxation of one wave concurrently. Workers claim
/// node indices from a shared counter — dynamic assignment, so a wave of
/// wildly uneven subtrees still keeps every thread busy — and results land
/// in per-index slots, making the returned vector independent of which
/// worker solved what.
fn solve_wave(
    model: &Model,
    skel: &Arc<Skeleton>,
    base_bounds: &[(f64, f64)],
    wave: &[Node],
    opts: &SolveOptions,
    threads: usize,
) -> Vec<Result<Solution, SolveError>> {
    let next = AtomicUsize::new(0);
    let out = Mutex::new({
        let mut slots: Vec<Option<Result<Solution, SolveError>>> = Vec::new();
        slots.resize_with(wave.len(), || None);
        slots
    });
    std::thread::scope(|s| {
        for _ in 0..threads.min(wave.len()) {
            s.spawn(|| {
                let mut scratch = base_bounds.to_vec();
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= wave.len() {
                        break;
                    }
                    scratch.copy_from_slice(base_bounds);
                    for &(c, lo, hi) in &wave[i].overrides {
                        let cur = scratch[c];
                        scratch[c] = (cur.0.max(lo), cur.1.min(hi));
                    }
                    local.push((
                        i,
                        sparse::solve_bounded(model, &scratch, opts, Some(skel.clone())),
                    ));
                }
                let mut out = out.lock().expect("no panics hold this lock");
                for (i, r) in local {
                    out[i] = Some(r);
                }
            });
        }
    });
    out.into_inner()
        .expect("scope joined all threads")
        .into_iter()
        .map(|r| r.expect("every wave index was claimed"))
        .collect()
}

fn with_override(base: &[(usize, f64, f64)], extra: (usize, f64, f64)) -> Vec<(usize, f64, f64)> {
    let mut v = Vec::with_capacity(base.len() + 1);
    v.extend_from_slice(base);
    v.push(extra);
    v
}

#[cfg(test)]
mod tests {
    use crate::{Cmp, LinExpr, Model, Sense, SolveError, Status};

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c  s.t. 3a + 4b + 2c ≤ 6, binary → a + c (17)? check:
        // a+b: weight 7 no. b+c: 6 → 20. Optimal is b + c = 20.
        let mut m = Model::new();
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.add_constraint(3.0 * a + 4.0 * b + 2.0 * c, Cmp::Le, 6.0);
        m.set_objective(Sense::Maximize, 10.0 * a + 13.0 * b + 7.0 * c);
        let s = m.solve().unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert!((s.value(b) - 1.0).abs() < 1e-9);
        assert!((s.value(c) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x s.t. 2x ≤ 5, x integer in [0, 10] → 2 (LP gives 2.5).
        let mut m = Model::new();
        let x = m.add_integer(0.0, 10.0);
        m.add_constraint(2.0 * x, Cmp::Le, 5.0);
        m.set_objective(Sense::Maximize, 1.0 * x);
        let s = m.solve().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_continuous_integer() {
        // max 2z + y  s.t. y ≤ 1.5 + 10(1-z), y ≤ 3, z binary, y ≥ 0.
        // z=1 → y ≤ 1.5 → obj 3.5; z=0 → y ≤ 3 → obj 3. Optimal 3.5.
        let mut m = Model::new();
        let z = m.add_binary();
        let y = m.add_var(0.0, 3.0);
        m.add_constraint(y + 10.0 * z, Cmp::Le, 11.5);
        m.set_objective(Sense::Maximize, 2.0 * z + y);
        let s = m.solve().unwrap();
        assert!((s.objective - 3.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x = 1 with x binary is infeasible.
        let mut m = Model::new();
        let x = m.add_binary();
        m.add_constraint(2.0 * x, Cmp::Eq, 1.0);
        assert_eq!(m.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn equality_partition() {
        // Choose exactly 2 of 4 items minimizing cost.
        let mut m = Model::new();
        let xs: Vec<_> = (0..4).map(|_| m.add_binary()).collect();
        let sum = xs.iter().fold(LinExpr::new(), |acc, &x| acc + x);
        m.add_constraint(sum, Cmp::Eq, 2.0);
        let costs = [5.0, 1.0, 3.0, 2.0];
        let obj = xs
            .iter()
            .zip(costs)
            .fold(LinExpr::new(), |acc, (&x, c)| acc + c * x);
        m.set_objective(Sense::Minimize, obj);
        let s = m.solve().unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6); // items 1 and 3
    }

    #[test]
    fn fired_stop_signal_yields_timeout_error_or_incumbent() {
        // A deliberately hard little MILP with an already-firing stop signal
        // (the deterministic equivalent of an expired deadline): we either
        // get TimedOut with an incumbent or a Timeout error — never a panic.
        let mut m = Model::new();
        let xs: Vec<_> = (0..18).map(|_| m.add_binary()).collect();
        let mut w = LinExpr::new();
        for (i, &x) in xs.iter().enumerate() {
            w = w + ((i % 7 + 1) as f64) * x;
        }
        m.add_constraint(w.clone(), Cmp::Le, 31.0);
        m.set_objective(Sense::Maximize, w);
        let opts = crate::SolveOptions {
            stop: Some(crate::StopWhen::immediately()),
            ..Default::default()
        };
        match m.solve_with(&opts) {
            Ok(s) => assert_eq!(s.status, Status::TimedOut),
            Err(e) => assert_eq!(e, SolveError::Timeout),
        }
    }

    /// Wave-parallel subtree exploration is bit-deterministic: every
    /// `steal` thread count returns the same objective bits, values, and
    /// node/pivot counters (the wave content never depends on the
    /// schedule), and agrees with the serial DFS on the proven optimum.
    #[test]
    fn steal_thread_count_is_invisible() {
        let mk = || {
            let mut m = crate::Model::new();
            let xs: Vec<_> = (0..12).map(|_| m.add_binary()).collect();
            let mut w = LinExpr::new();
            let mut v = LinExpr::new();
            for (i, &x) in xs.iter().enumerate() {
                w = w + ((i % 5 + 1) as f64) * x;
                v = v + ((i % 7 + 2) as f64) * x;
            }
            m.add_constraint(w, Cmp::Le, 17.0);
            m.set_objective(Sense::Maximize, v);
            m
        };
        let serial = mk().solve().unwrap();
        let runs: Vec<_> = [2usize, 3, 8]
            .iter()
            .map(|&steal| {
                let opts = crate::SolveOptions {
                    steal,
                    ..Default::default()
                };
                mk().solve_with(&opts).unwrap()
            })
            .collect();
        for s in &runs {
            assert_eq!(s.status, Status::Optimal);
            // Same proven optimum as the DFS (objective is recomputed from
            // the snapped integer point, so value-equality is exact here).
            assert_eq!(s.objective.to_bits(), serial.objective.to_bits());
        }
        for pair in runs.windows(2) {
            assert_eq!(pair[0].objective.to_bits(), pair[1].objective.to_bits());
            assert_eq!(pair[0].values(), pair[1].values());
            assert_eq!(pair[0].stats.nodes, pair[1].stats.nodes);
            assert_eq!(pair[0].stats.pivots, pair[1].stats.pivots);
        }
    }

    /// The wave scheduler honors infeasibility and integrality exactly like
    /// the serial search.
    #[test]
    fn steal_handles_infeasible_and_mixed() {
        let opts = crate::SolveOptions {
            steal: 4,
            ..Default::default()
        };
        let mut m = crate::Model::new();
        let x = m.add_binary();
        m.add_constraint(2.0 * x, Cmp::Eq, 1.0);
        assert_eq!(m.solve_with(&opts).unwrap_err(), SolveError::Infeasible);

        let mut m = crate::Model::new();
        let z = m.add_binary();
        let y = m.add_var(0.0, 3.0);
        m.add_constraint(y + 10.0 * z, Cmp::Le, 11.5);
        m.set_objective(Sense::Maximize, 2.0 * z + y);
        let s = m.solve_with(&opts).unwrap();
        assert!((s.objective - 3.5).abs() < 1e-6);
    }

    #[test]
    fn brute_force_agreement_random_knapsacks() {
        // Cross-check B&B against exhaustive enumeration on random instances.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..25 {
            let n = 8;
            let values: Vec<f64> = (0..n).map(|_| 1.0 + 9.0 * next()).collect();
            let weights: Vec<f64> = (0..n).map(|_| 1.0 + 4.0 * next()).collect();
            let cap = 0.4 * weights.iter().sum::<f64>();

            let mut m = Model::new();
            let xs: Vec<_> = (0..n).map(|_| m.add_binary()).collect();
            let w = xs
                .iter()
                .zip(&weights)
                .fold(LinExpr::new(), |acc, (&x, &wi)| acc + wi * x);
            m.add_constraint(w, Cmp::Le, cap);
            let v = xs
                .iter()
                .zip(&values)
                .fold(LinExpr::new(), |acc, (&x, &vi)| acc + vi * x);
            m.set_objective(Sense::Maximize, v);
            let got = m.solve().unwrap().objective;

            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let (mut wv, mut vv) = (0.0, 0.0);
                for i in 0..n {
                    if mask & (1 << i) != 0 {
                        wv += weights[i];
                        vv += values[i];
                    }
                }
                if wv <= cap + 1e-9 {
                    best = best.max(vv);
                }
            }
            assert!((got - best).abs() < 1e-6, "B&B {got} vs brute force {best}");
        }
    }
}
