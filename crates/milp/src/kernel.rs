//! Fixed-width chunked kernels for the FTRAN/BTRAN/pricing inner loops.
//!
//! The sparse engines spend almost all of their time in three loop shapes:
//! scatter updates `v[idx[e]] -= val[e]·t` (eta application, the L/U
//! triangular solves of [`crate::lu`]), gather reductions
//! `s -= Σ x[idx[e]]·val[e]` (BTRAN, the transposed solves, reduced-cost
//! pricing), and the left-looking elimination of a refactorization. This
//! module provides those loops chunked to a fixed width of [`LANES`] = 4
//! with hand-rolled unrolling — the safe-Rust, `#![forbid(unsafe_code)]`
//! equivalent of a 4-lane SIMD kernel: the independent lane statements give
//! the backend straight-line code it can keep in registers and vectorize,
//! without intrinsics.
//!
//! # Determinism contract
//!
//! * **No FMA, no transcendentals** — only IEEE-754 `+ − × ÷`, each exactly
//!   rounded and identical on every conforming platform, so the itne-lint
//!   `platform-fp` rule holds and golden ε̄ bits are platform-stable.
//! * **Fixed-order reduction tree** — a gather reduction accumulates into 4
//!   lane sums (`acc[l]` takes entries `l, l+4, l+8, …`) and combines them as
//!   `(acc0 + acc1) + (acc2 + acc3)`, then folds the `< 4` remainder in
//!   sequentially. The order is a pure function of the entry count — never
//!   of thread count, steal schedule, or target CPU — so a result is
//!   bit-reproducible anywhere, even though it may differ by ulps from the
//!   strictly sequential sum (an intentional, re-recorded semantic change;
//!   the certifier's outward 2⁻³⁰ grid snap absorbs ulp-level path noise).
//! * **Scatter updates are bitwise order-free** — every target element
//!   receives exactly one update per call (column indices are distinct), so
//!   chunking a scatter is pure unrolling and cannot change results.

/// Chunk width of every kernel in this module. Four 64-bit lanes = one
/// 256-bit vector register on the common targets, and a reduction tree
/// shallow enough that short sparse columns still win.
pub const LANES: usize = 4;

/// `Σ x[idx[e]]·val[e]` over the parallel slices `idx`/`val`, chunked
/// [`LANES`] wide with the fixed-order reduction tree documented in the
/// module header.
///
/// # Panics
///
/// Panics if `val` is shorter than `idx` or an index is out of bounds.
#[inline]
pub fn dot_gather(x: &[f64], idx: &[usize], val: &[f64]) -> f64 {
    debug_assert_eq!(idx.len(), val.len());
    let mut acc = [0.0f64; LANES];
    let mut ic = idx.chunks_exact(LANES);
    let mut vc = val.chunks_exact(LANES);
    for (i4, v4) in ic.by_ref().zip(vc.by_ref()) {
        acc[0] += x[i4[0]] * v4[0];
        acc[1] += x[i4[1]] * v4[1];
        acc[2] += x[i4[2]] * v4[2];
        acc[3] += x[i4[3]] * v4[3];
    }
    let mut s = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&i, &v) in ic.remainder().iter().zip(vc.remainder()) {
        s += x[i] * v;
    }
    s
}

/// `v[idx[e]] -= val[e]·t` for every entry, unrolled [`LANES`] wide.
/// Bit-identical to the scalar loop for distinct indices (each target is
/// written once); see the module header.
///
/// # Panics
///
/// Panics if `val` is shorter than `idx` or an index is out of bounds.
#[inline]
pub fn scatter_sub(v: &mut [f64], idx: &[usize], val: &[f64], t: f64) {
    debug_assert_eq!(idx.len(), val.len());
    let mut ic = idx.chunks_exact(LANES);
    let mut vc = val.chunks_exact(LANES);
    for (i4, v4) in ic.by_ref().zip(vc.by_ref()) {
        v[i4[0]] -= v4[0] * t;
        v[i4[1]] -= v4[1] * t;
        v[i4[2]] -= v4[2] * t;
        v[i4[3]] -= v4[3] * t;
    }
    for (&i, &x) in ic.remainder().iter().zip(vc.remainder()) {
        v[i] -= x * t;
    }
}

/// [`scatter_sub`] through an index map: `v[map[idx[e]]] -= val[e]·t`.
/// The extra indirection is the `U`-solve of [`crate::lu`], whose stored
/// column indices are elimination positions that the Forrest–Tomlin
/// permutation `u_row` maps back to basis rows.
///
/// # Panics
///
/// Panics if `val` is shorter than `idx` or an index is out of bounds in
/// `map` or (mapped) in `v`.
#[inline]
pub fn scatter_sub_mapped(v: &mut [f64], map: &[usize], idx: &[usize], val: &[f64], t: f64) {
    debug_assert_eq!(idx.len(), val.len());
    let mut ic = idx.chunks_exact(LANES);
    let mut vc = val.chunks_exact(LANES);
    for (i4, v4) in ic.by_ref().zip(vc.by_ref()) {
        v[map[i4[0]]] -= v4[0] * t;
        v[map[i4[1]]] -= v4[1] * t;
        v[map[i4[2]]] -= v4[2] * t;
        v[map[i4[3]]] -= v4[3] * t;
    }
    for (&i, &x) in ic.remainder().iter().zip(vc.remainder()) {
        v[map[i]] -= x * t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.max(1);
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }
    }

    fn gather_data(n: usize, nnz: usize, seed: u64) -> (Vec<f64>, Vec<usize>, Vec<f64>) {
        let mut r = rng(seed);
        let x: Vec<f64> = (0..n).map(|_| r()).collect();
        let idx: Vec<usize> = (0..nnz)
            .map(|e| {
                ((r().abs() * 2.0 * n as f64) as usize)
                    .min(n - 1)
                    .max(e % n)
            })
            .collect();
        let val: Vec<f64> = (0..nnz).map(|_| r()).collect();
        (x, idx, val)
    }

    /// The reduction follows the documented tree exactly: lane sums over the
    /// strided entries, `(acc0 + acc1) + (acc2 + acc3)`, then the remainder
    /// appended sequentially.
    #[test]
    fn dot_matches_reduction_tree_spec() {
        for nnz in [0usize, 1, 3, 4, 5, 8, 11, 64, 257] {
            let (x, idx, val) = gather_data(97, nnz, 0x5eed + nnz as u64);
            let mut acc = [0.0f64; LANES];
            let full = nnz / LANES * LANES;
            for e in 0..full {
                acc[e % LANES] += x[idx[e]] * val[e];
            }
            let mut want = (acc[0] + acc[1]) + (acc[2] + acc[3]);
            for e in full..nnz {
                want += x[idx[e]] * val[e];
            }
            let got = dot_gather(&x, &idx, &val);
            assert_eq!(got.to_bits(), want.to_bits(), "nnz = {nnz}");
        }
    }

    /// Short gathers (< LANES entries) reduce to the plain sequential sum —
    /// the common case on the certifier's very sparse columns.
    #[test]
    fn short_dot_equals_sequential() {
        let (x, idx, val) = gather_data(11, 3, 7);
        let seq = x[idx[0]] * val[0] + x[idx[1]] * val[1] + x[idx[2]] * val[2];
        assert_eq!(dot_gather(&x, &idx, &val).to_bits(), seq.to_bits());
        assert_eq!(dot_gather(&x, &[], &[]).to_bits(), 0.0f64.to_bits());
    }

    /// The chunked dot agrees with the sequential sum to relative ulp noise
    /// — the tree changes grouping, not magnitude.
    #[test]
    fn dot_close_to_sequential() {
        for seed in 1..20u64 {
            let (x, idx, val) = gather_data(203, 150, seed);
            let seq: f64 = idx.iter().zip(&val).map(|(&i, &v)| x[i] * v).sum();
            let tree = dot_gather(&x, &idx, &val);
            let tol = 1e-13 * (1.0 + seq.abs());
            assert!((tree - seq).abs() <= tol, "{tree} vs {seq}");
        }
    }

    /// Determinism: same inputs, same bits, every call.
    #[test]
    fn dot_is_bit_deterministic() {
        let (x, idx, val) = gather_data(59, 37, 99);
        let a = dot_gather(&x, &idx, &val);
        let b = dot_gather(&x, &idx, &val);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    /// Scatter with distinct indices is bit-identical to the scalar loop —
    /// unrolling must be invisible.
    #[test]
    fn scatter_bitwise_equals_scalar() {
        for nnz in [0usize, 1, 2, 5, 8, 13, 40] {
            let n = 64;
            let mut r = rng(31 + nnz as u64);
            // Distinct indices: a shuffled prefix of 0..n.
            let mut perm: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = ((r().abs() * 2.0 * (i + 1) as f64) as usize).min(i);
                perm.swap(i, j);
            }
            let idx = &perm[..nnz];
            let val: Vec<f64> = (0..nnz).map(|_| r()).collect();
            let base: Vec<f64> = (0..n).map(|_| r()).collect();
            let t = r();

            let mut want = base.clone();
            for (&i, &x) in idx.iter().zip(&val) {
                want[i] -= x * t;
            }
            let mut got = base.clone();
            scatter_sub(&mut got, idx, &val, t);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "nnz = {nnz}"
            );

            // Mapped variant through a nontrivial permutation.
            let map: Vec<usize> = (0..n).map(|i| (i + 17) % n).collect();
            let mut want = base.clone();
            for (&i, &x) in idx.iter().zip(&val) {
                want[map[i]] -= x * t;
            }
            let mut got = base.clone();
            scatter_sub_mapped(&mut got, &map, idx, &val, t);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "mapped nnz = {nnz}"
            );
        }
    }
}
